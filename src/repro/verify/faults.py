"""Fault injection against synthesized netlists (dynamic Theorem-2 tests).

Theorem 2 promises that an implementation built from monotonous covers
is speed-independent: hazard-free under the pure (unbounded) gate delay
model.  This module attacks that promise from three directions:

* **delay storms** (:func:`delay_storm`) -- every gate gets its own
  randomly drawn delay range per run.  Speed independence quantifies
  over *all* delay assignments, so an MC circuit must stay clean under
  every storm; a single :class:`~repro.netlist.simulate.Disabling`
  falsifies the synthesis.
* **single-event upsets** (:func:`glitch_campaign`) -- a random gate
  output is forcibly flipped at a random time (``injections`` support in
  :func:`repro.netlist.simulate.simulate`).  SI circuits are *not*
  required to mask SEUs; the campaign instead characterises how faults
  surface: a spec-violating output (``conformance``), a disabled gate
  (``disabling``), a stalled handshake (``stall``), or full masking.
* **stuck-at faults** (:func:`stuck_at`, :func:`stuck_campaign`) --
  netlist surgery replaces one gate by a constant-0/1
  :class:`~repro.netlist.gates.GateKind.COMPLEX` gate; the broken
  circuit is then simulated against the specification mirror.

The negative control (:func:`non_mc_cover_check`) closes the loop on
Theorem 2's *premise*: a functionally correct but non-monotonous cover
(the Figure-4 baseline of :mod:`repro.core.baseline`) must be caught as
hazardous by the static verifier.  If the oracle ever stops catching it,
the verifier -- not the circuit -- is broken.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.boolean.cover import Cover
from repro.boolean.cube import Cube
from repro.netlist.circuit_sg import CompositionError
from repro.netlist.gates import Gate, GateKind
from repro.netlist.netlist import Netlist
from repro.netlist.simulate import SimulationReport, simulate
from repro.sg.graph import StateGraph
from repro.verify.budget import Budget, BudgetExceeded

#: how a fault surfaced during simulation (``None`` = fully masked)
DETECTION_KINDS = ("conformance", "disabling", "stall")


@dataclass
class FaultOutcome:
    """One injected fault and how (whether) it was detected."""

    model: str  # "glitch" | "stuck"
    detail: str  # e.g. "and_b_0@t=37.2" or "S_b stuck-at-1"
    detected_by: Optional[str]  # one of DETECTION_KINDS, or None
    fired_events: int
    clean_events: int
    #: None when the fault was detected before simulation could start
    #: (the faulty circuit's settled initial state contradicts the spec)
    report: Optional[SimulationReport]

    @property
    def detected(self) -> bool:
        return self.detected_by is not None

    def __str__(self) -> str:
        verdict = f"detected ({self.detected_by})" if self.detected else "masked"
        return (
            f"{self.model} {self.detail}: {verdict}, "
            f"{self.fired_events}/{self.clean_events} events"
        )


@dataclass
class FaultReport:
    """Aggregate outcome of one fault-injection run."""

    netlist_name: str
    spec_name: str
    #: clean-circuit runs under randomized per-gate delay ranges; an MC
    #: implementation must keep every one of these hazard-free
    delay_reports: List[SimulationReport] = field(default_factory=list)
    outcomes: List[FaultOutcome] = field(default_factory=list)
    #: budget reason when the run stopped early (results are partial)
    truncated: Optional[str] = None

    @property
    def mc_robust(self) -> bool:
        """All delay-storm runs hazard-free (vacuously true with none)."""
        return all(r.hazard_free for r in self.delay_reports)

    @property
    def detected(self) -> List[FaultOutcome]:
        return [o for o in self.outcomes if o.detected]

    @property
    def masked(self) -> List[FaultOutcome]:
        return [o for o in self.outcomes if not o.detected]

    def describe(self) -> str:
        lines = [
            f"fault injection: {self.netlist_name} vs {self.spec_name}: "
            f"{len(self.delay_reports)} delay storm(s) "
            f"({'all clean' if self.mc_robust else 'HAZARDOUS'}), "
            f"{len(self.outcomes)} fault(s) injected, "
            f"{len(self.detected)} detected / {len(self.masked)} masked"
        ]
        by_kind: Dict[str, int] = {}
        for outcome in self.detected:
            by_kind[outcome.detected_by] = by_kind.get(outcome.detected_by, 0) + 1
        if by_kind:
            lines.append(
                "  detections: "
                + ", ".join(f"{k}={v}" for k, v in sorted(by_kind.items()))
            )
        for report in self.delay_reports:
            if not report.hazard_free:
                lines.append("  " + report.describe().replace("\n", "\n  "))
        if self.truncated:
            lines.append(f"  TRUNCATED: {self.truncated} (partial results)")
        return "\n".join(lines)


def random_delay_overrides(
    netlist: Netlist,
    rng: random.Random,
    spread: Tuple[float, float] = (0.1, 40.0),
) -> Dict[str, Tuple[float, float]]:
    """A fresh random delay range per gate (one point in delay space).

    Speed independence quantifies over all delay assignments; each call
    samples one adversarial corner -- some gates glacial, some nearly
    instantaneous -- instead of the default uniform range shared by all
    gates.
    """
    overrides: Dict[str, Tuple[float, float]] = {}
    for name in netlist.gates:
        lo = rng.uniform(*spread)
        overrides[name] = (lo, lo * rng.uniform(1.0, 4.0))
    return overrides


def delay_storm(
    netlist: Netlist,
    spec: StateGraph,
    runs: int = 25,
    max_events: int = 600,
    seed: int = 0,
    budget: Optional[Budget] = None,
) -> List[SimulationReport]:
    """Monte-Carlo runs, each under a fresh per-gate delay assignment."""
    budget = budget or Budget()
    rng = random.Random(seed)
    reports = []
    for run in range(runs):
        budget.check_time(f"delay storm run {run}", partial=reports)
        reports.append(
            simulate(
                netlist,
                spec,
                max_events=max_events,
                seed=seed + run,
                delay_overrides=random_delay_overrides(netlist, rng),
            )
        )
    return reports


def _classify(
    report: SimulationReport,
    clean: SimulationReport,
    model: str,
    detail: str,
) -> FaultOutcome:
    """Triage one faulty run against its fault-free twin (same seed)."""
    if report.conformance_failures:
        detected: Optional[str] = "conformance"
    elif report.disablings:
        detected = "disabling"
    elif report.fired_events < max(4, clean.fired_events // 2):
        # the handshake wedged: the fault deadlocked the closed loop
        detected = "stall"
    else:
        detected = None
    return FaultOutcome(
        model=model,
        detail=detail,
        detected_by=detected,
        fired_events=report.fired_events,
        clean_events=clean.fired_events,
        report=report,
    )


def glitch_campaign(
    netlist: Netlist,
    spec: StateGraph,
    runs: int = 20,
    max_events: int = 400,
    seed: int = 0,
    window: Tuple[float, float] = (5.0, 150.0),
    budget: Optional[Budget] = None,
    injections: Optional[Sequence[Tuple[float, str]]] = None,
) -> List[FaultOutcome]:
    """Inject one single-event upset per run and triage the fallout.

    Each run flips one randomly chosen gate output at a random time in
    ``window``, then compares against a fault-free run with the same
    delay seed so a stalled handshake is distinguishable from a short
    trace.  Pass ``injections`` (``[(at, gate), ...]``, e.g. from
    :func:`repro.verify.hazard_free.suggest_glitch_injections`) to aim
    one upset per scenario at specific gates instead of sampling them;
    ``runs`` then caps how many scenarios are used.
    """
    budget = budget or Budget()
    rng = random.Random(seed)
    targets = sorted(netlist.gates)
    if injections is not None:
        for at, target in injections:
            if target not in netlist.gates:
                raise ValueError(f"no gate drives {target!r}")
        injections = list(injections)[:runs]
    outcomes = []
    for run in range(len(injections) if injections is not None else runs):
        budget.check_time(f"glitch run {run}", partial=outcomes)
        if injections is not None:
            at, target = injections[run]
        else:
            target = rng.choice(targets)
            at = rng.uniform(*window)
        run_seed = seed + 7919 * run
        clean = simulate(netlist, spec, max_events=max_events, seed=run_seed)
        faulty = simulate(
            netlist,
            spec,
            max_events=max_events,
            seed=run_seed,
            injections=[(at, target)],
        )
        outcomes.append(
            _classify(faulty, clean, "glitch", f"{target}@t={at:.1f}")
        )
    return outcomes


def stuck_at(netlist: Netlist, gate_name: str, value: int) -> Netlist:
    """A copy of ``netlist`` with one gate forced to a constant output.

    The faulty gate keeps its fan-in pins (the wiring is intact; only
    the function died), realised as a :class:`GateKind.COMPLEX` gate
    whose cover is the empty cover (constant 0) or the single empty cube
    (tautology, constant 1).
    """
    if gate_name not in netlist.gates:
        raise ValueError(f"no gate drives {gate_name!r}")
    if value not in (0, 1):
        raise ValueError("stuck-at value must be 0 or 1")
    forced = Netlist(
        name=f"{netlist.name}__{gate_name}_sa{value}",
        inputs=netlist.inputs,
        interface_outputs=netlist.interface_outputs,
        initial_hints=dict(netlist.initial_hints),
        declared_state_holding=set(netlist.declared_state_holding),
    )
    constant = Cover([Cube()]) if value else Cover([])
    for name, gate in netlist.gates.items():
        if name == gate_name:
            forced.gates[name] = Gate(
                name, GateKind.COMPLEX, gate.inputs, function=constant
            )
        else:
            forced.gates[name] = gate
    return forced


def stuck_campaign(
    netlist: Netlist,
    spec: StateGraph,
    runs: int = 10,
    max_events: int = 400,
    seed: int = 0,
    budget: Optional[Budget] = None,
) -> List[FaultOutcome]:
    """Simulate randomly chosen single stuck-at faults against the spec."""
    budget = budget or Budget()
    rng = random.Random(seed)
    targets = sorted(netlist.gates)
    outcomes = []
    for run in range(runs):
        budget.check_time(f"stuck-at run {run}", partial=outcomes)
        target = rng.choice(targets)
        value = rng.randint(0, 1)
        run_seed = seed + 104_729 * run
        clean = simulate(netlist, spec, max_events=max_events, seed=run_seed)
        detail = f"{target} stuck-at-{value}"
        try:
            faulty = simulate(
                stuck_at(netlist, target, value),
                spec,
                max_events=max_events,
                seed=run_seed,
            )
        except CompositionError:
            # the forced constant already contradicts the specification's
            # initial state: detected before the first event can fire
            outcomes.append(
                FaultOutcome(
                    model="stuck",
                    detail=f"{detail} (initial state)",
                    detected_by="conformance",
                    fired_events=0,
                    clean_events=clean.fired_events,
                    report=None,
                )
            )
            continue
        outcomes.append(_classify(faulty, clean, "stuck", detail))
    return outcomes


def non_mc_cover_check(sg: Optional[StateGraph] = None, max_states: int = 200_000):
    """Negative control: a correct non-MC cover must be caught (Thm. 2).

    Builds the Beerel-style baseline implementation -- functionally
    correct covers without the monotonicity requirement -- and runs it
    through the static speed-independence verifier.  On the paper's
    Figure-4 graph (the default) this is exactly Example 2's hazard: AND
    gate ``t = c'd`` starts switching in ER(+b_2) and loses its
    excitation when input ``a`` overtakes it.  Returns the
    :class:`~repro.netlist.hazards.HazardReport`; callers assert
    ``not hazard_free``.
    """
    from repro.bench.figures import figure4_sg
    from repro.core.baseline import baseline_synthesize
    from repro.netlist.hazards import verify_speed_independence
    from repro.netlist.netlist import netlist_from_implementation

    sg = sg or figure4_sg()
    impl = baseline_synthesize(sg)
    baseline = netlist_from_implementation(impl, style="C")
    return verify_speed_independence(baseline, sg, max_states=max_states)


def run_fault_injection(
    netlist: Netlist,
    spec: StateGraph,
    models: Sequence[str] = ("delay", "glitch", "stuck"),
    runs: int = 20,
    max_events: int = 400,
    seed: int = 0,
    budget: Optional[Budget] = None,
    context=None,
) -> FaultReport:
    """Run the selected fault models; blown budgets truncate gracefully.

    Pass an :class:`repro.pipeline.AnalysisContext` to charge this
    campaign against the same budget the synthesis pipeline already
    used (an explicit ``budget`` wins over the context's).
    """
    known = {"delay", "glitch", "stuck"}
    unknown = set(models) - known
    if unknown:
        raise ValueError(
            f"unknown fault model(s) {sorted(unknown)}; choose from {sorted(known)}"
        )
    if budget is None and context is not None:
        budget = context.budget
    budget = budget or Budget()
    report = FaultReport(netlist_name=netlist.name, spec_name=spec.name)
    try:
        if "delay" in models:
            report.delay_reports = delay_storm(
                netlist, spec, runs=runs, max_events=max_events,
                seed=seed, budget=budget,
            )
        if "glitch" in models:
            report.outcomes += glitch_campaign(
                netlist, spec, runs=runs, max_events=max_events,
                seed=seed, budget=budget,
            )
        if "stuck" in models:
            report.outcomes += stuck_campaign(
                netlist, spec, runs=max(1, runs // 2), max_events=max_events,
                seed=seed, budget=budget,
            )
    except BudgetExceeded as exc:
        report.truncated = exc.reason
        partial = exc.partial
        if isinstance(partial, list) and partial:
            if isinstance(partial[0], FaultOutcome):
                report.outcomes += [o for o in partial if o not in report.outcomes]
            elif isinstance(partial[0], SimulationReport) and not report.delay_reports:
                report.delay_reports = partial
    return report
