"""Graceful-degradation guards for exponential state-space blowups.

Region analysis, circuit-level composition and the differential oracle
all walk state spaces that can explode exponentially (``concurrent_fork``
doubles per branch).  A :class:`Budget` bounds a verification run by
state count and wall clock; when a bound trips, work stops with a
:class:`BudgetExceeded` carrying whatever partial result was computed,
instead of hanging CI or dying on memory.

The guard is cooperative: long-running phases call
:meth:`Budget.charge_states` / :meth:`Budget.check_time` at their
natural checkpoints (after elaboration, between designs, between fault
runs).  ``Budget(None, None)`` is a no-op guard, so callers never need
an ``if budget`` dance.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional


class BudgetExceeded(RuntimeError):
    """A verification budget tripped; the run is *inconclusive*.

    Distinct from a hazard verdict: the circuit was neither proven
    hazard-free nor shown hazardous.  ``partial`` carries whatever
    result object the interrupted phase had already produced (may be
    ``None``).
    """

    def __init__(self, reason: str, partial: object = None):
        super().__init__(reason)
        self.reason = reason
        self.partial = partial


@dataclass
class Budget:
    """State-count and wall-clock bounds for one verification run.

    ``max_states`` bounds the *total* number of states charged via
    :meth:`charge_states` across the run; ``max_seconds`` bounds wall
    time since construction (or the last :meth:`restart`).  Either may
    be ``None`` for unlimited.
    """

    max_states: Optional[int] = None
    max_seconds: Optional[float] = None
    charged_states: int = 0
    _started: float = field(default_factory=time.monotonic, repr=False)

    def restart(self) -> "Budget":
        """Reset the clock and the state meter (for per-item budgets)."""
        self._started = time.monotonic()
        self.charged_states = 0
        return self

    @property
    def elapsed(self) -> float:
        return time.monotonic() - self._started

    @property
    def exhausted(self) -> bool:
        """True when either bound is already over, without raising."""
        if self.max_states is not None and self.charged_states > self.max_states:
            return True
        return self.max_seconds is not None and self.elapsed > self.max_seconds

    def charge_states(self, count: int, what: str, partial: object = None) -> None:
        """Account ``count`` states to the run; raise when over budget."""
        self.charged_states += count
        if self.max_states is not None and self.charged_states > self.max_states:
            raise BudgetExceeded(
                f"state budget exceeded: {self.charged_states} > "
                f"{self.max_states} states after {what}",
                partial=partial,
            )

    def check_time(self, what: str, partial: object = None) -> None:
        """Raise when the wall clock ran out."""
        if self.max_seconds is not None and self.elapsed > self.max_seconds:
            raise BudgetExceeded(
                f"wall-clock budget exceeded: {self.elapsed:.1f}s > "
                f"{self.max_seconds:.1f}s during {what}",
                partial=partial,
            )

    @property
    def seconds_left(self) -> Optional[float]:
        """Wall-clock remaining (never negative), or None when unbounded."""
        if self.max_seconds is None:
            return None
        return max(0.0, self.max_seconds - self.elapsed)

    def remaining_states(self, default: int) -> int:
        """States left to spend, for passing down as a ``max_states`` cap."""
        if self.max_states is None:
            return default
        return max(1, self.max_states - self.charged_states)
