"""Deprecated alias: the reference analysis moved into the pipeline.

The pure dict-based region/cover/MC oracle now lives at
:mod:`repro.pipeline.backends.reference`, where it is registered as the
``reference`` analysis backend -- run it by building a pipeline over
``AnalysisContext(backend="reference")`` rather than calling its
functions directly.  This module forwards the old import path and will
be removed in a future release.
"""

import warnings as _warnings

from repro.pipeline.backends.reference import *  # noqa: F401,F403
from repro.pipeline.backends.reference import __all__  # noqa: F401
from repro.pipeline.backends import reference as _reference

# forward the real module's docstring after the deprecation notice, so
# ``help(repro.verify.reference)`` documents the API it re-exports
if _reference.__doc__:
    __doc__ = f"{__doc__}\n{_reference.__doc__}"

_warnings.warn(
    "repro.verify.reference is deprecated; the reference analysis moved to "
    "repro.pipeline.backends.reference (registered as the 'reference' "
    "analysis backend)",
    DeprecationWarning,
    stacklevel=2,
)
