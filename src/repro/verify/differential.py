"""Differential oracle: the bitengine fast path vs the reference path.

Every region/cover/MC analysis in the synthesis pipeline runs through
the bitmask engine.  The oracle runs the *same pipeline* twice -- once
per registered analysis backend (``bitengine`` and ``reference``, see
:mod:`repro.pipeline.backends`) -- and diffs the typed stage artifacts
*claim for claim*:

* per-region verdicts (MC satisfiable or not, unique entry),
* the chosen cube for every satisfied region, including whether it is
  private or a Theorem-5 sharing group (and with whom),
* the stuck-state diagnostics of every failed region (these drive the
  insertion engine, so a silent divergence here would corrupt repairs),
* after repairing a violated graph, the inserted-signal count and the
  reference path's independent confirmation that the repaired graph now
  satisfies MC.

A campaign (:func:`differential_campaign`) sweeps randomized STGs drawn
from the unified corpus subsystem (:mod:`repro.corpus`) under a
per-design :class:`~repro.verify.budget.Budget`; designs that blow the
budget are reported as *skipped*, never silently dropped.  Pass a
``corpus=CorpusSpec(...)`` to sweep a structurally-admitted corpus
stream instead of the legacy ``fuzz_specs`` mix.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Tuple

from repro.core.mc import MCReport, RegionVerdict
from repro.pipeline import AnalysisContext, Pipeline
from repro.sg.graph import StateGraph
from repro.stg.reachability import stg_to_state_graph
from repro.stg.stg import STG
from repro.verify.budget import Budget, BudgetExceeded


def _fingerprint(verdict: RegionVerdict) -> Tuple:
    """Everything a verdict claims, in comparable (stringified) form."""
    return (
        verdict.er.signal,
        verdict.er.direction,
        verdict.er.index,
        repr(verdict.mc_cube),
        verdict.private,
        tuple(sorted(e.transition_name for e in verdict.group)),
        verdict.unique_entry,
        tuple(sorted(map(str, verdict.stuck_stable))),
        tuple(sorted(map(str, verdict.stuck_opposite))),
    )


def diff_reports(fast: MCReport, reference: MCReport, label: str = "") -> List[str]:
    """Human-readable divergences between two MC reports (empty = agree)."""
    prefix = f"{label}: " if label else ""
    mismatches: List[str] = []
    if fast.satisfied != reference.satisfied:
        mismatches.append(
            f"{prefix}overall verdict: engine says "
            f"{'SATISFIED' if fast.satisfied else 'VIOLATED'}, reference says "
            f"{'SATISFIED' if reference.satisfied else 'VIOLATED'}"
        )
    fast_prints = {f[:3]: f for f in map(_fingerprint, fast.verdicts)}
    ref_prints = {f[:3]: f for f in map(_fingerprint, reference.verdicts)}
    for key in sorted(set(fast_prints) | set(ref_prints)):
        mine, theirs = fast_prints.get(key), ref_prints.get(key)
        if mine == theirs:
            continue
        region = f"ER({'+' if key[1] == 1 else '-'}{key[0]}_{key[2]})"
        if mine is None or theirs is None:
            mismatches.append(
                f"{prefix}{region} only found by "
                f"{'engine' if theirs is None else 'reference'}"
            )
        else:
            mismatches.append(
                f"{prefix}{region}: engine {mine[3:]} vs reference {theirs[3:]}"
            )
    return mismatches


@dataclass
class DiffRecord:
    """Outcome of the oracle on one specification."""

    name: str
    states: int
    mismatches: List[str] = field(default_factory=list)
    #: budget reason when the design was skipped mid-analysis
    skipped: Optional[str] = None
    #: the (agreed) MC verdict of the unrepaired graph
    satisfied: Optional[bool] = None
    #: signals the repair inserted (None when no repair ran)
    inserted_signals: Optional[int] = None
    #: why the repair cross-check was abandoned (deadline, no labelling)
    repair_note: Optional[str] = None
    elapsed_seconds: float = 0.0

    @property
    def agree(self) -> bool:
        return not self.mismatches and self.skipped is None

    def describe(self) -> str:
        if self.skipped:
            return f"{self.name}: SKIPPED ({self.skipped})"
        status = "agree" if not self.mismatches else "DIVERGED"
        extra = ""
        if self.inserted_signals is not None:
            extra = f", {self.inserted_signals} signal(s) inserted"
        elif self.repair_note is not None:
            extra = f", repair skipped: {self.repair_note}"
        lines = [
            f"{self.name}: {status} ({self.states} states, "
            f"MC {'satisfied' if self.satisfied else 'violated'}{extra}, "
            f"{self.elapsed_seconds * 1000:.0f}ms)"
        ]
        lines += [f"  {m}" for m in self.mismatches]
        return "\n".join(lines)


def diff_state_graph(
    fast_sg: StateGraph,
    reference_sg: Optional[StateGraph] = None,
    name: Optional[str] = None,
    repair: bool = True,
    budget: Optional[Budget] = None,
    repair_seconds: Optional[float] = 5.0,
    repair_max_states: int = 2_000,
    jobs: Optional[int] = None,
    store=None,
    backend: str = "bitengine",
) -> DiffRecord:
    """Run both analysis paths over one state graph and diff the claims.

    ``backend`` names the fast path's engine (``"bitengine"`` by
    default, ``"wordlane"`` for the lane engine); the reference path is
    always the retained dictionary semantics, so every registered fast
    engine is diffed against the same independent baseline.

    ``reference_sg`` may be a *separate* elaboration of the same
    specification so the two paths share no per-graph caches; it
    defaults to the fast path's graph (the reference path never reads
    the bitengine caches either way).

    ``store`` optionally backs both contexts with a persistent
    :class:`~repro.pipeline.store.ArtifactStore` (MC entries are keyed
    per backend, so the paths stay independent on disk too).  Note that
    a *warm* store serves previously-persisted verdicts instead of
    re-running the analyses -- point it at a fresh directory when the
    point of the sweep is to exercise both engines.

    With ``repair=True`` a violated graph is additionally run through
    the insertion engine, and the repaired graph's reports are diffed
    again -- including the reference path's independent confirmation
    that the repair actually established MC (Theorem 2's premise).  The
    SAT-driven insertion search can dwarf the analyses themselves, so it
    runs under a ``repair_seconds`` deadline (further clipped by the
    remaining budget); an expired deadline skips the cross-check for
    that design (noted on the record) rather than blowing the budget.
    Graphs above ``repair_max_states`` skip the cross-check outright --
    even *constructing* the insertion SAT encodings is super-linear in
    state count, so a deadline alone cannot bound them usefully.
    """
    budget = budget or Budget()
    # Two analysis worlds over ONE budget: nesting the pipelines inside
    # this campaign shares the campaign's clock/state meter, so each
    # wall-clock second and each elaborated state is charged exactly once.
    fast_pipeline = Pipeline(
        AnalysisContext(backend=backend, budget=budget, jobs=jobs, store=store)
    )
    reference_pipeline = Pipeline(
        AnalysisContext(backend="reference", budget=budget, jobs=jobs, store=store)
    )
    record = DiffRecord(name=name or fast_sg.name, states=len(fast_sg.state_list))
    started = time.monotonic()
    try:
        budget.charge_states(len(fast_sg.state_list), "elaboration", partial=record)
        fast = fast_pipeline.run(fast_sg, until="mc").report
        budget.check_time("engine analysis", partial=record)
        reference = reference_pipeline.run(reference_sg or fast_sg, until="mc").report
        budget.check_time("reference analysis", partial=record)
        record.mismatches += diff_reports(fast, reference)
        record.satisfied = fast.satisfied
        if (
            repair
            and not record.mismatches
            and not fast.satisfied
            and len(fast_sg.state_list) > repair_max_states
        ):
            record.repair_note = (
                f"{len(fast_sg.state_list)} states > "
                f"repair_max_states={repair_max_states}"
            )
        elif repair and not record.mismatches and not fast.satisfied:
            from repro.core.insertion import InsertionError, insert_state_signals

            allowances = [
                s for s in (repair_seconds, budget.seconds_left) if s is not None
            ]
            deadline = (
                time.monotonic() + max(0.1, min(allowances))
                if allowances
                else None
            )
            try:
                insertion = insert_state_signals(fast_sg, deadline=deadline)
            except InsertionError as exc:
                # not a divergence: both paths agreed the graph violates
                # MC and the repair engine gave up within its budgets
                record.inserted_signals = None
                record.repair_note = str(exc)
                tolerated = ("no labelling", "MC violations", "deadline expired")
                record.mismatches += (
                    []
                    if any(token in str(exc) for token in tolerated)
                    else [f"repair: {exc}"]
                )
            else:
                record.inserted_signals = len(insertion.added_signals)
                budget.charge_states(
                    len(insertion.sg.state_list), "repair", partial=record
                )
                budget.check_time("repair", partial=record)
                repaired_ref = reference_pipeline.run(
                    insertion.sg, until="mc"
                ).report
                record.mismatches += diff_reports(
                    insertion.report, repaired_ref, label="after repair"
                )
                if not repaired_ref.satisfied:
                    record.mismatches.append(
                        "after repair: reference path rejects the repaired graph"
                    )
    except BudgetExceeded as exc:
        record.skipped = exc.reason
    record.elapsed_seconds = time.monotonic() - started
    return record


def diff_stg(
    stg: STG,
    name: Optional[str] = None,
    repair: bool = True,
    budget: Optional[Budget] = None,
    repair_seconds: Optional[float] = 5.0,
    jobs: Optional[int] = None,
    store=None,
    backend: str = "bitengine",
) -> DiffRecord:
    """Elaborate a specification twice -- once per path -- and diff."""
    from repro.stg.reachability import ReachabilityError

    budget = budget or Budget()
    try:
        cap = budget.remaining_states(200_000)
        fast_sg = stg_to_state_graph(stg, max_states=cap)
        reference_sg = stg_to_state_graph(stg, max_states=cap)
    except ReachabilityError as exc:
        record = DiffRecord(name=name or stg.name, states=0)
        record.skipped = f"elaboration: {exc}"
        return record
    return diff_state_graph(
        fast_sg,
        reference_sg,
        name=name or stg.name,
        repair=repair,
        budget=budget,
        repair_seconds=repair_seconds,
        jobs=jobs,
        store=store,
        backend=backend,
    )


@dataclass
class CampaignReport:
    """Aggregate outcome of a differential sweep."""

    records: List[DiffRecord] = field(default_factory=list)
    #: the seed the sweep's design stream was grown from (None when the
    #: caller supplied explicit specs), recorded so any campaign is
    #: reproducible from its report alone
    seed: Optional[int] = None

    @property
    def divergent(self) -> List[DiffRecord]:
        return [r for r in self.records if r.mismatches]

    @property
    def skipped(self) -> List[DiffRecord]:
        return [r for r in self.records if r.skipped is not None]

    @property
    def checked(self) -> int:
        return len(self.records) - len(self.skipped)

    @property
    def ok(self) -> bool:
        """Zero divergences and at least one conclusively checked design."""
        return not self.divergent and self.checked > 0

    def describe(self) -> str:
        seeded = f" [seed {self.seed}]" if self.seed is not None else ""
        lines = [
            f"differential oracle: {len(self.records)} design(s), "
            f"{self.checked} checked, {len(self.skipped)} skipped, "
            f"{len(self.divergent)} DIVERGENT{seeded}"
        ]
        repaired = [r for r in self.records if r.inserted_signals]
        if repaired:
            lines.append(
                f"  {len(repaired)} design(s) repaired "
                f"({sum(r.inserted_signals for r in repaired)} signals inserted, "
                f"all confirmed by the reference path)"
            )
        timeouts = [
            r
            for r in self.records
            if r.repair_note is not None and "deadline" in r.repair_note
        ]
        if timeouts:
            lines.append(
                f"  {len(timeouts)} repair cross-check(s) skipped "
                f"(insertion deadline)"
            )
        for record in self.divergent:
            lines.append(record.describe())
        for record in self.skipped[:5]:
            lines.append(f"  {record.name}: skipped ({record.skipped})")
        return "\n".join(lines)


def differential_campaign(
    count: int = 200,
    seed: int = 0,
    specs: Optional[Iterable[Tuple[str, STG]]] = None,
    corpus=None,
    repair: bool = True,
    max_states: Optional[int] = 20_000,
    max_seconds_each: Optional[float] = 30.0,
    repair_seconds: Optional[float] = 5.0,
    progress: Optional[Callable[[DiffRecord], None]] = None,
    jobs: Optional[int] = None,
    store=None,
    backend: str = "bitengine",
) -> CampaignReport:
    """Sweep ``count`` randomized specifications through the oracle.

    ``backend`` selects the fast path diffed against the reference
    semantics (any name registered with
    :mod:`repro.pipeline.backends`, e.g. ``"wordlane"``).

    The design source, in priority order: explicit ``specs`` (an
    iterable of ``(name, stg)`` pairs); a ``corpus``
    (:class:`~repro.corpus.CorpusSpec`, streamed through the
    structurally-admitted factory — ``count``/``seed`` arguments are
    ignored in favour of the spec's own); else the legacy
    :func:`repro.corpus.fuzz_specs` mix, a deterministic stream
    dominated by random series-parallel controllers with the parametric
    families (rings, forks, alternators) blended in.
    Each design gets a fresh budget of ``max_states`` states and
    ``max_seconds_each`` seconds; blown budgets become *skipped* records.
    ``repair_seconds`` bounds the per-design insertion cross-check (the
    SAT search can take minutes on adversarial fuzz designs; an expired
    repair deadline skips that design's cross-check, it does not skip
    the design).
    """
    report_seed: Optional[int] = None
    if specs is not None and corpus is not None:
        raise ValueError("pass either specs or corpus, not both")
    if specs is None:
        if corpus is not None:
            from repro.corpus import corpus_stream

            report_seed = corpus.seed
            specs = ((d.name, d.stg) for d in corpus_stream(corpus))
        else:
            from repro.corpus import fuzz_specs

            report_seed = seed
            specs = fuzz_specs(count, seed=seed)
    report = CampaignReport(seed=report_seed)
    for name, stg in specs:
        budget = Budget(max_states=max_states, max_seconds=max_seconds_each)
        record = diff_stg(
            stg,
            name=name,
            repair=repair,
            budget=budget,
            repair_seconds=repair_seconds,
            jobs=jobs,
            store=store,
            backend=backend,
        )
        report.records.append(record)
        if progress is not None:
            progress(record)
    return report
