"""Verification-of-the-verifier: oracle, fault injection, budgets.

Three pillars, none imported by the synthesis pipeline itself:

* :mod:`repro.verify.differential` -- runs the staged pipeline once per
  registered analysis backend (``bitengine`` vs ``reference``, see
  :mod:`repro.pipeline.backends`) and diffs the claims over randomized
  specifications;
* :mod:`repro.verify.faults` -- delay storms, single-event upsets and
  stuck-at faults against synthesized netlists, plus the Figure-4
  negative control for Theorem 2;
* :mod:`repro.verify.budget` -- cooperative state-count / wall-clock
  guards turning exponential blowups into *inconclusive* partial
  results instead of hung runs;
* :mod:`repro.verify.hazard_free` -- the DeMorgan/Eichelberger ternary
  oracle over SOP covers: a derivation-independent second opinion on
  hazard freedom, cross-checked claim-for-claim against the
  circuit-level verdicts.

The pure dict-based reference analysis itself lives at
:mod:`repro.pipeline.backends.reference`; its old names under
``repro.verify`` keep working through a deprecation forwarder.
"""

import warnings as _warnings

from repro.verify.budget import Budget, BudgetExceeded
from repro.verify.differential import (
    CampaignReport,
    DiffRecord,
    diff_reports,
    diff_state_graph,
    diff_stg,
    differential_campaign,
)
from repro.verify.hazard_free import (
    DeMorganClaim,
    DeMorganReport,
    cross_check_verdicts,
    demorgan_check,
    suggest_glitch_injections,
    ternary_cover,
    ternary_cube,
)
from repro.verify.faults import (
    FaultOutcome,
    FaultReport,
    delay_storm,
    glitch_campaign,
    non_mc_cover_check,
    run_fault_injection,
    stuck_at,
    stuck_campaign,
)

__all__ = [
    "Budget",
    "BudgetExceeded",
    "CampaignReport",
    "DeMorganClaim",
    "DeMorganReport",
    "DiffRecord",
    "FaultOutcome",
    "FaultReport",
    "cross_check_verdicts",
    "delay_storm",
    "demorgan_check",
    "diff_reports",
    "diff_state_graph",
    "diff_stg",
    "differential_campaign",
    "glitch_campaign",
    "non_mc_cover_check",
    "run_fault_injection",
    "stuck_at",
    "stuck_campaign",
    "suggest_glitch_injections",
    "ternary_cover",
    "ternary_cube",
]


def __getattr__(name):
    """Forward the reference-analysis names that used to live here.

    Kept generic on purpose: the moved surface is whatever
    :mod:`repro.pipeline.backends.reference` exports, and each access
    warns once so callers migrate to the ``reference`` backend.
    """
    from repro.pipeline.backends import reference as _reference

    if name in _reference.__all__:
        _warnings.warn(
            f"repro.verify.{name} is deprecated; the reference analysis "
            "moved to repro.pipeline.backends.reference (registered as "
            "the 'reference' analysis backend)",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(_reference, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
