"""Verification-of-the-verifier: oracle, fault injection, budgets.

Three pillars, none imported by the synthesis pipeline itself:

* :mod:`repro.verify.reference` -- the retained pure dict-based
  region/cover/MC analysis (pre-bitengine semantics), used as the
  ground truth of the differential oracle;
* :mod:`repro.verify.differential` -- runs every analysis through both
  the bitengine fast path and the reference path and diffs the claims
  over randomized specifications;
* :mod:`repro.verify.faults` -- delay storms, single-event upsets and
  stuck-at faults against synthesized netlists, plus the Figure-4
  negative control for Theorem 2;
* :mod:`repro.verify.budget` -- cooperative state-count / wall-clock
  guards turning exponential blowups into *inconclusive* partial
  results instead of hung runs.
"""

from repro.verify.budget import Budget, BudgetExceeded
from repro.verify.differential import (
    CampaignReport,
    DiffRecord,
    diff_reports,
    diff_state_graph,
    diff_stg,
    differential_campaign,
)
from repro.verify.faults import (
    FaultOutcome,
    FaultReport,
    delay_storm,
    glitch_campaign,
    non_mc_cover_check,
    run_fault_injection,
    stuck_at,
    stuck_campaign,
)
from repro.verify.reference import analyze_mc_reference

__all__ = [
    "Budget",
    "BudgetExceeded",
    "CampaignReport",
    "DiffRecord",
    "FaultOutcome",
    "FaultReport",
    "analyze_mc_reference",
    "delay_storm",
    "diff_reports",
    "diff_state_graph",
    "diff_stg",
    "differential_campaign",
    "glitch_campaign",
    "non_mc_cover_check",
    "run_fault_injection",
    "stuck_at",
    "stuck_campaign",
]
