"""DeMorgan hazard-freedom: an independent ternary oracle over SOP covers.

Jukna's *Notes on Hazard-Free Circuits* recalls the classical
correspondence (Eichelberger): evaluate a DeMorgan circuit over the
Kleene ternary algebra ``{0, u, 1}`` and it is hazard-free on a
(partial) input vector iff the ternary value is definite whenever the
Boolean function is constant on the corresponding subcube.  Our
standard implementation (Fig. 2) is a two-level SOP network per
excitation function feeding a C element, so the criterion is directly
checkable on the *literal dicts* of the synthesized covers — no
compiled IR, no bitengine, no reachability replay: a second derivation
path for the paper's central hazard-freedom claim.

Per reachable state ``s`` the excited signals ``U(s)`` are the inputs
in flight; the oracle forms the ternary vector fixing every stable
signal to its code and every signal of ``U(s)`` to ``u``, then makes
three checks per non-input signal ``a``:

* **excitation persistence** — for ``s ∈ ER(a+)`` the set cover must
  ternary-evaluate to a definite 1 with the *other* excited signals
  unknown (symmetrically the reset cover on ``ER(a-)``).  A monotonous
  cover satisfies this by construction: the region's cube cannot
  constrain a concurrently excited signal, so no in-flight order of
  arrivals can drop the function.
* **cube monotonicity** — each cube is one AND gate, and in a
  speed-independent circuit every gate, once excited, must stay
  excited until it fires.  Along every spec arc (``u`` fires, ``u ≠
  a``): a cube supporting an active excitation must not drop while
  ``a`` is still pending (the gate would lose its excitation
  mid-flight), and a cube must not *rise* after ``a`` has already
  fired past it (a pointless rise whose later withdrawal can only
  glitch).  The Figure-4 baseline of Example 2 fails exactly here:
  ``t = c'd`` rises while ``b`` is already set, then input ``d``
  overtakes it.  Monotonous covers never rise or fall against the
  region structure, so the check is vacuous on them.
* **static (Eichelberger)** — while ``a`` is stable, the cover that
  could flip it (set cover at ``a = 0``, reset cover at ``a = 1``; the
  C element masks the other side) must not go ternary-``u`` when the
  Boolean function is constant across every corner of the transition
  subcube.  Corner enumeration is exponential in ``|U(s)|`` and only
  runs when the ternary value is already ``u``; above
  ``max_corner_signals`` the state is recorded as truncated instead.

The oracle's verdict is cross-checked claim-for-claim against the
derivation path's own hazard verdicts (:func:`cross_check_verdicts`)
over corpus sweeps; where the two disagree on non-MC controls,
:func:`suggest_glitch_injections` turns each DeMorgan claim into a
targeted single-event-upset scenario for the fault engine
(:func:`repro.verify.faults.glitch_campaign`'s ``injections`` form).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.boolean.cover import Cover
from repro.core.synthesis import Implementation

#: ternary values: 0, 1, or None for Kleene's "u" (unknown / in flight)
Ternary = Optional[int]


def ternary_cube(cube, values: Dict[str, Ternary]) -> Ternary:
    """Kleene AND of the cube's literals under a partial assignment."""
    unknown = False
    for signal, required in cube.literals:
        value = values.get(signal)
        if value is None:
            unknown = True
        elif value != required:
            return 0
    return None if unknown else 1


def ternary_cover(cover: Cover, values: Dict[str, Ternary]) -> Ternary:
    """Kleene OR over the cover's cubes under a partial assignment."""
    unknown = False
    for cube in cover:
        result = ternary_cube(cube, values)
        if result == 1:
            return 1
        if result is None:
            unknown = True
    return None if unknown else 0


def _constant_over_corners(
    cover: Cover, values: Dict[str, Ternary], unknowns: Sequence[str]
) -> Optional[int]:
    """The cover's Boolean value if constant over all 2^k corners, else None."""
    corner = dict(values)
    first: Optional[bool] = None
    for bits in range(1 << len(unknowns)):
        for i, signal in enumerate(unknowns):
            corner[signal] = (bits >> i) & 1
        value = cover.covers(corner)
        if first is None:
            first = value
        elif value != first:
            return None
    return int(first) if first is not None else None


@dataclass(frozen=True)
class DeMorganClaim:
    """One hazard found by the ternary oracle."""

    signal: str
    cover: str  # "set" | "reset"
    state: str
    kind: str  # "excitation" | "monotonicity" | "static"
    detail: str

    def __str__(self) -> str:
        side = "S" if self.cover == "set" else "R"
        return f"{self.kind} hazard on {side}{self.signal} at {self.state}: {self.detail}"


@dataclass
class DeMorganReport:
    """Outcome of the DeMorgan oracle on one implementation."""

    name: str
    claims: List[DeMorganClaim] = field(default_factory=list)
    states_checked: int = 0
    signals_checked: int = 0
    #: states whose corner enumeration was skipped (too many signals in
    #: flight); a non-empty list makes the verdict *inconclusive*, not
    #: hazard-free
    truncated_states: List[str] = field(default_factory=list)

    @property
    def hazard_free(self) -> bool:
        return not self.claims and not self.truncated_states

    @property
    def conclusive(self) -> bool:
        return not self.truncated_states

    def describe(self) -> str:
        verdict = (
            "HAZARD-FREE (DeMorgan)"
            if self.hazard_free
            else ("INCONCLUSIVE" if not self.claims else "HAZARDOUS")
        )
        lines = [
            f"demorgan oracle: {self.name}: {verdict} "
            f"({self.states_checked} states x {self.signals_checked} signals)"
        ]
        for claim in self.claims:
            lines.append(f"  {claim}")
        if self.truncated_states:
            lines.append(
                f"  {len(self.truncated_states)} state(s) above the corner cap: "
                + ", ".join(self.truncated_states[:5])
            )
        return "\n".join(lines)


def _check_cube_monotonicity(impl: Implementation, report: DeMorganReport) -> None:
    """Every AND gate must switch monotonically through each episode.

    Walks every spec arc once per cube (cheap: arcs x cubes with dict
    lookups) and flags the two ways a cube can move against the region
    structure while its gate output may still be in flight:

    * the cube *drops* on a foreign firing while its signal is still
      excited in the direction the cube serves — the supporting gate is
      disabled mid-excitation;
    * the cube *rises* after its signal already sits past the fired
      value — a pointless rise whose later withdrawal can only glitch
      (Example 2's ``t = c'd`` rising while ``b`` is already 1).

    A monotonous cover does neither: the region cube holds constant
    over the excitation closure and falls exactly once afterwards.
    """
    sg = impl.sg
    for signal in sorted(impl.networks):
        network = impl.networks[signal]
        for label, cover, pre_value in (
            ("set", network.set_cover, 0),
            ("reset", network.reset_cover, 1),
        ):
            for cube in cover:
                for state in sg.state_list:
                    code = sg.code_dict(state)
                    before = cube.covers(code)
                    for event, target in sg.arcs_from(state):
                        if event.signal == signal:
                            continue
                        after = cube.covers(sg.code_dict(target))
                        if before == after:
                            continue
                        if (
                            before
                            and not after
                            and code[signal] == pre_value
                            and sg.is_excited(state, signal)
                        ):
                            report.claims.append(
                                DeMorganClaim(
                                    signal=signal,
                                    cover=label,
                                    state=state,
                                    kind="monotonicity",
                                    detail=(
                                        f"cube {cube!r} dropped by "
                                        f"{event.signal}{'+' if event.direction == 1 else '-'} while "
                                        f"{signal} is still excited"
                                    ),
                                )
                            )
                        elif (
                            not before
                            and after
                            and sg.code_dict(target)[signal] == 1 - pre_value
                        ):
                            report.claims.append(
                                DeMorganClaim(
                                    signal=signal,
                                    cover=label,
                                    state=target,
                                    kind="monotonicity",
                                    detail=(
                                        f"cube {cube!r} rises on "
                                        f"{event.signal}{'+' if event.direction == 1 else '-'} after "
                                        f"{signal} already fired"
                                    ),
                                )
                            )


def demorgan_check(
    impl: Implementation, max_corner_signals: int = 12
) -> DeMorganReport:
    """Run the ternary criterion over every state x non-input signal.

    Works entirely on the literal-dict form of the synthesized covers
    and the state graph's codes/excitations — independent of the
    bitengine/wordlane derivation path by construction.
    """
    sg = impl.sg
    report = DeMorganReport(name=sg.name)
    signals = sorted(impl.networks)
    report.signals_checked = len(signals)
    _check_cube_monotonicity(impl, report)
    for state in sg.state_list:
        report.states_checked += 1
        code = sg.code_dict(state)
        excited: FrozenSet[str] = sg.excited_signals(state)
        if not excited:
            continue
        for signal in signals:
            network = impl.networks[signal]
            others = [u for u in excited if u != signal]
            values: Dict[str, Ternary] = dict(code)
            for u in others:
                values[u] = None
            if signal in excited:
                # excitation persistence: the active cover must stay
                # definitely on while concurrent signals fire
                rising = code[signal] == 0
                cover = network.set_cover if rising else network.reset_cover
                label = "set" if rising else "reset"
                result = ternary_cover(cover, values)
                if result != 1:
                    report.claims.append(
                        DeMorganClaim(
                            signal=signal,
                            cover=label,
                            state=state,
                            kind="excitation",
                            detail=(
                                f"ternary value {'u' if result is None else result} "
                                f"with {sorted(others)} in flight "
                                f"(must hold 1 until {signal} fires)"
                            ),
                        )
                    )
                continue
            if not others:
                continue
            # static check on the cover the C element would listen to
            stable_value = code[signal]
            cover = network.set_cover if stable_value == 0 else network.reset_cover
            label = "set" if stable_value == 0 else "reset"
            if ternary_cover(cover, values) is not None:
                continue
            if len(others) > max_corner_signals:
                if state not in report.truncated_states:
                    report.truncated_states.append(state)
                continue
            constant = _constant_over_corners(cover, values, others)
            if constant is not None:
                report.claims.append(
                    DeMorganClaim(
                        signal=signal,
                        cover=label,
                        state=state,
                        kind="static",
                        detail=(
                            f"function constant {constant} over the "
                            f"{sorted(others)} subcube but ternary value u "
                            f"(static-{constant} hazard)"
                        ),
                    )
                )
    return report


def cross_check_verdicts(
    name: str,
    demorgan: DeMorganReport,
    si_hazard_free: Optional[bool],
) -> Optional[str]:
    """Compare the two oracles' verdicts on one design (None = agree).

    ``si_hazard_free`` is the derivation path's verdict (the static
    speed-independence check / hazard sim); ``None`` (inconclusive)
    never counts as a disagreement, and neither does a truncated
    DeMorgan run — only two *conclusive*, *opposite* verdicts do.
    """
    if si_hazard_free is None or not demorgan.conclusive:
        return None
    if bool(demorgan.hazard_free) == bool(si_hazard_free):
        return None
    if demorgan.hazard_free:
        return (
            f"{name}: speed-independence check reports hazards but the "
            f"DeMorgan oracle finds the covers hazard-free"
        )
    kinds = sorted({claim.kind for claim in demorgan.claims})
    return (
        f"{name}: DeMorgan oracle claims {len(demorgan.claims)} hazard(s) "
        f"({', '.join(kinds)}) but the speed-independence check reports "
        f"hazard-free"
    )


def suggest_glitch_injections(
    netlist,
    report: DeMorganReport,
    window: Tuple[float, float] = (5.0, 150.0),
    per_claim: int = 2,
) -> List[Tuple[float, str]]:
    """Turn DeMorgan claims into targeted SEU scenarios for the fault engine.

    Each claim names the cover (hence the gate neighbourhood) the
    ternary analysis says can glitch; the suggestions aim the
    single-event upsets of :func:`repro.verify.faults.glitch_campaign`
    at exactly those gates (``injections=[(at, gate)]`` form) instead
    of uniformly random ones.  Injection times are spread
    deterministically across ``window`` so campaigns stay reproducible.
    """
    suggestions: List[Tuple[float, str]] = []
    if not report.claims or per_claim < 1:
        return suggestions
    lo, hi = window
    total = len(report.claims) * per_claim
    step = (hi - lo) / max(total, 1)
    tick = 0
    for claim in report.claims:
        prefix = "S" if claim.cover == "set" else "R"
        target = f"{prefix}_{claim.signal}"
        if target not in netlist.gates:
            ands = sorted(
                g for g in netlist.gates if g.startswith(f"and_{claim.signal}_")
            )
            target = ands[0] if ands else claim.signal
        if target not in netlist.gates:
            continue
        for _ in range(per_claim):
            suggestions.append((lo + step * (tick + 0.5), target))
            tick += 1
    return suggestions


__all__ = [
    "DeMorganClaim",
    "DeMorganReport",
    "cross_check_verdicts",
    "demorgan_check",
    "suggest_glitch_injections",
    "ternary_cover",
    "ternary_cube",
]
