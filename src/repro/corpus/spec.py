"""Corpus specifications: the seeded recipe a design stream is grown from.

A :class:`CorpusSpec` names *what* to generate (a weighted mix of STG
families with parameter ranges), *how much* (an admitted-design count),
and *under which admission bar* (structural checks from
``repro.stg.structural`` / ``repro.stg.invariants`` with a state-space
cap).  Fixed spec + seed ⇒ a byte-identical design stream, wherever it
is evaluated — that determinism is the contract everything downstream
(batch manifests, resume, CI gates) leans on.

Specs round-trip through a small JSON dialect (``repro-corpus-spec/1``,
documented in docs/FORMATS.md) so sweeps can be launched from files via
``repro-si batch --corpus spec.json`` or posted to the service.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence, Tuple, Union

from repro.corpus.families import FAMILIES

CORPUS_SPEC_SCHEMA = "repro-corpus-spec/1"

ParamValue = Union[int, Tuple[int, int]]


class CorpusSpecError(ValueError):
    """A corpus specification is malformed."""


def _check_param(family: str, key: str, value: object) -> ParamValue:
    if isinstance(value, bool):
        raise CorpusSpecError(f"{family}.{key}: expected an int or [lo, hi] range")
    if isinstance(value, int):
        return value
    if isinstance(value, (list, tuple)) and len(value) == 2:
        lo, hi = value
        if (
            isinstance(lo, int)
            and isinstance(hi, int)
            and not isinstance(lo, bool)
            and not isinstance(hi, bool)
        ):
            if lo > hi:
                raise CorpusSpecError(f"{family}.{key}: empty range [{lo}, {hi}]")
            return (lo, hi)
    raise CorpusSpecError(f"{family}.{key}: expected an int or [lo, hi] range")


@dataclass(frozen=True)
class FamilySpec:
    """One family's slice of the mix: name, relative weight, parameters.

    ``params`` overrides the registry defaults per parameter; each value
    is either a fixed int or an inclusive ``(lo, hi)`` range sampled per
    candidate.  Unmentioned parameters keep their registry defaults.
    """

    family: str
    weight: int = 1
    params: Mapping[str, ParamValue] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.family not in FAMILIES:
            known = ", ".join(sorted(FAMILIES))
            raise CorpusSpecError(f"unknown family {self.family!r} (known: {known})")
        if not isinstance(self.weight, int) or isinstance(self.weight, bool) or self.weight < 1:
            raise CorpusSpecError(f"{self.family}: weight must be a positive int")
        checked = {
            key: _check_param(self.family, key, value) for key, value in self.params.items()
        }
        allowed = set(FAMILIES[self.family].defaults)
        unknown = set(checked) - allowed
        if unknown:
            raise CorpusSpecError(
                f"{self.family}: unknown parameter(s) {sorted(unknown)} "
                f"(allowed: {sorted(allowed)})"
            )
        object.__setattr__(self, "params", dict(sorted(checked.items())))

    def resolved_params(self) -> Mapping[str, ParamValue]:
        """Registry defaults overlaid with this spec's overrides."""
        merged = dict(FAMILIES[self.family].defaults)
        merged.update(self.params)
        return merged


@dataclass(frozen=True)
class AdmissionSpec:
    """The structural bar every candidate must clear before admission.

    Checks run in cost order: signal/consistency (T-invariants), free
    choice, then bounded live-and-safe exploration capped at
    ``max_states``.  Each can be disabled for targeted corpora; the
    factory counts rejections by reason either way.
    """

    max_states: int = 20_000
    require_free_choice: bool = True
    require_consistent: bool = True
    require_live_safe: bool = True

    def __post_init__(self) -> None:
        if (
            not isinstance(self.max_states, int)
            or isinstance(self.max_states, bool)
            or self.max_states < 1
        ):
            raise CorpusSpecError("admission.max_states must be a positive int")


def default_families() -> Tuple[FamilySpec, ...]:
    """The stock mix: every registered family, seeded fuzzers weighted up.

    ``modulo_counter`` is excluded: its state cycles repeat codes with
    nothing to distinguish them, which makes the CSC insertion search
    pathologically hard — it is a deliberate stress family for the
    insertion engine, opted into explicitly rather than blended into
    synthesis sweeps by default.
    """
    specs = []
    for name, family in sorted(FAMILIES.items()):
        if name == "modulo_counter":
            continue
        specs.append(FamilySpec(name, weight=3 if family.seeded else 1))
    return tuple(specs)


@dataclass(frozen=True)
class CorpusSpec:
    """A complete corpus recipe: count, seed, family mix, admission bar.

    ``count`` is the number of *admitted* designs the stream yields;
    ``max_attempts`` (default ``20 * count``) bounds how many candidates
    may be tried before the factory gives up, so an over-strict
    admission bar fails loudly instead of spinning forever.
    """

    count: int
    seed: int = 0
    families: Sequence[FamilySpec] = field(default_factory=default_families)
    admission: AdmissionSpec = field(default_factory=AdmissionSpec)
    name_prefix: str = "corpus"
    max_attempts: int = 0  # 0 ⇒ 20 * count

    def __post_init__(self) -> None:
        if not isinstance(self.count, int) or isinstance(self.count, bool) or self.count < 0:
            raise CorpusSpecError("count must be a non-negative int")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool) or self.seed < 0:
            raise CorpusSpecError("seed must be a non-negative int")
        if (
            not isinstance(self.max_attempts, int)
            or isinstance(self.max_attempts, bool)
            or self.max_attempts < 0
        ):
            raise CorpusSpecError("max_attempts must be a non-negative int")
        families = tuple(self.families)
        if not families:
            raise CorpusSpecError("families must be non-empty")
        for entry in families:
            if not isinstance(entry, FamilySpec):
                raise CorpusSpecError("families entries must be FamilySpec instances")
        if not self.name_prefix or not all(
            ch.isalnum() or ch in "_-" for ch in self.name_prefix
        ):
            raise CorpusSpecError(
                "name_prefix must be non-empty and use only [A-Za-z0-9_-]"
            )
        object.__setattr__(self, "families", families)

    @property
    def attempts_cap(self) -> int:
        return self.max_attempts if self.max_attempts else max(20 * self.count, 1)

    def with_seed(self, seed: int) -> "CorpusSpec":
        """The same recipe re-seeded (e.g. by ``repro-si batch --seed``)."""
        return CorpusSpec(
            count=self.count,
            seed=seed,
            families=self.families,
            admission=self.admission,
            name_prefix=self.name_prefix,
            max_attempts=self.max_attempts,
        )

    # ------------------------------------------------------------------
    # JSON dialect (repro-corpus-spec/1)
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        return {
            "schema": CORPUS_SPEC_SCHEMA,
            "count": self.count,
            "seed": self.seed,
            "name_prefix": self.name_prefix,
            "max_attempts": self.max_attempts,
            "admission": {
                "max_states": self.admission.max_states,
                "require_free_choice": self.admission.require_free_choice,
                "require_consistent": self.admission.require_consistent,
                "require_live_safe": self.admission.require_live_safe,
            },
            "families": [
                {
                    "family": entry.family,
                    "weight": entry.weight,
                    "params": {
                        key: list(value) if isinstance(value, tuple) else value
                        for key, value in entry.params.items()
                    },
                }
                for entry in self.families
            ],
        }

    @classmethod
    def from_json(cls, document: object) -> "CorpusSpec":
        if not isinstance(document, dict):
            raise CorpusSpecError("corpus spec must be a JSON object")
        schema = document.get("schema")
        if schema != CORPUS_SPEC_SCHEMA:
            raise CorpusSpecError(
                f"unsupported corpus spec schema {schema!r} (want {CORPUS_SPEC_SCHEMA!r})"
            )
        known = {
            "schema",
            "count",
            "seed",
            "name_prefix",
            "max_attempts",
            "admission",
            "families",
        }
        unknown = set(document) - known
        if unknown:
            raise CorpusSpecError(f"unknown corpus spec field(s): {sorted(unknown)}")
        if "count" not in document:
            raise CorpusSpecError("corpus spec needs a count")
        admission_doc = document.get("admission", {})
        if not isinstance(admission_doc, dict):
            raise CorpusSpecError("admission must be a JSON object")
        admission_known = {
            "max_states",
            "require_free_choice",
            "require_consistent",
            "require_live_safe",
        }
        admission_unknown = set(admission_doc) - admission_known
        if admission_unknown:
            raise CorpusSpecError(
                f"unknown admission field(s): {sorted(admission_unknown)}"
            )
        admission = AdmissionSpec(**admission_doc)
        families_doc = document.get("families")
        if families_doc is None:
            families: Sequence[FamilySpec] = default_families()
        else:
            if not isinstance(families_doc, list) or not families_doc:
                raise CorpusSpecError("families must be a non-empty JSON array")
            families = []
            for entry in families_doc:
                if not isinstance(entry, dict) or "family" not in entry:
                    raise CorpusSpecError("each family entry needs a 'family' name")
                entry_unknown = set(entry) - {"family", "weight", "params"}
                if entry_unknown:
                    raise CorpusSpecError(
                        f"unknown family field(s): {sorted(entry_unknown)}"
                    )
                params = entry.get("params", {})
                if not isinstance(params, dict):
                    raise CorpusSpecError(f"{entry['family']}: params must be an object")
                families.append(
                    FamilySpec(
                        family=entry["family"],
                        weight=entry.get("weight", 1),
                        params={
                            key: tuple(value) if isinstance(value, list) else value
                            for key, value in params.items()
                        },
                    )
                )
        return cls(
            count=document["count"],
            seed=document.get("seed", 0),
            families=families,
            admission=admission,
            name_prefix=document.get("name_prefix", "corpus"),
            max_attempts=document.get("max_attempts", 0),
        )


def dumps_corpus_spec(spec: CorpusSpec) -> str:
    """Canonical one-true-rendering of a spec (stable key order)."""
    return json.dumps(spec.to_json(), indent=2, sort_keys=True) + "\n"


def load_corpus_spec(path: Union[str, Path]) -> CorpusSpec:
    """Load and validate a ``repro-corpus-spec/1`` JSON file."""
    text = Path(path).read_text(encoding="utf-8")
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CorpusSpecError(f"{path}: not valid JSON ({exc})") from exc
    return CorpusSpec.from_json(document)


__all__ = [
    "CORPUS_SPEC_SCHEMA",
    "AdmissionSpec",
    "CorpusSpec",
    "CorpusSpecError",
    "FamilySpec",
    "default_families",
    "dumps_corpus_spec",
    "load_corpus_spec",
]
