"""Parametric STG families: the building blocks of every generated corpus.

Each family is a function from a handful of integer parameters to an
:class:`~repro.stg.stg.STG`.  Together they span the behavioural axes
the paper's method must handle:

* :func:`token_ring` -- n handshake channels served round-robin
  (sequential; state count grows linearly; MC-clean as specified);
* :func:`concurrent_fork` -- one request forked to n concurrent
  downstream handshakes with a full join (state count grows
  exponentially in n; exercises region analysis under concurrency);
* :func:`alternator` -- one input whose successive pulses are steered
  to n different outputs (the ``luciano`` pattern generalised; needs
  ~log2(n) inserted state signals, exercising the insertion engine);
* :func:`linear_pipeline` -- n stages passing one request from a left
  to a right environment handshake (the micropipeline control skeleton);
* :func:`arbiter` -- n clients served through a free-choice input
  arbitration place (the paper's Example-1 input-choice pattern,
  generalised: the *environment* decides who goes next);
* :func:`modulo_counter` -- a divide-by-n pulse counter (repeated
  input occurrences; CSC violations force inserted state signals);
* :func:`random_series_parallel` -- random SEQ/PAR process terms over
  handshake leaves (live, 1-safe, output semi-modular by construction);
* :func:`random_free_choice` -- the series-parallel grammar extended
  with a CHOICE combinator realised as an explicit free-choice place
  between two input-initiated branches.

The :data:`FAMILIES` registry at the bottom maps family names to
builders plus default parameter ranges; the corpus factory
(:mod:`repro.corpus.factory`) samples from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Mapping, Tuple

from repro.stg.parser import parse_g
from repro.stg.stg import STG


def token_ring(channels: int) -> STG:
    """n sequential 4-phase handshakes served in a fixed rotation."""
    if channels < 1:
        raise ValueError("need at least one channel")
    inputs = [f"r{i}" for i in range(channels)]
    outputs = [f"a{i}" for i in range(channels)]
    events: List[str] = []
    for i in range(channels):
        events += [f"r{i}+", f"a{i}+", f"r{i}-", f"a{i}-"]
    lines = [
        ".model token_ring",
        ".inputs " + " ".join(inputs),
        ".outputs " + " ".join(outputs),
        ".graph",
    ]
    for i, event in enumerate(events):
        lines.append(f"{event} {events[(i + 1) % len(events)]}")
    lines.append(f".marking {{ <{events[-1]},{events[0]}> }}")
    lines.append(".end")
    return parse_g("\n".join(lines), name=f"token_ring_{channels}")


def concurrent_fork(branches: int) -> STG:
    """One request forks to n concurrent handshakes, then a full join.

    ``r+`` enables all ``qi+`` concurrently; each is acknowledged by the
    input ``di+``; when all acknowledgements are in, ``done+`` fires and
    the whole structure resets symmetrically.
    """
    if branches < 1:
        raise ValueError("need at least one branch")
    inputs = ["r"] + [f"d{i}" for i in range(branches)]
    outputs = [f"q{i}" for i in range(branches)] + ["done"]
    lines = [
        ".model concurrent_fork",
        ".inputs " + " ".join(inputs),
        ".outputs " + " ".join(outputs),
        ".graph",
    ]
    ups = " ".join(f"q{i}+" for i in range(branches))
    lines.append(f"r+ {ups}")
    for i in range(branches):
        lines.append(f"q{i}+ d{i}+")
        lines.append(f"d{i}+ done+")
    lines.append("done+ r-")
    downs = " ".join(f"q{i}-" for i in range(branches))
    lines.append(f"r- {downs}")
    for i in range(branches):
        lines.append(f"q{i}- d{i}-")
        lines.append(f"d{i}- done-")
    lines.append("done- r+")
    lines.append(".marking { <done-,r+> }")
    lines.append(".end")
    return parse_g("\n".join(lines), name=f"concurrent_fork_{branches}")


def alternator(ways: int) -> STG:
    """Successive pulses of one input steered to n outputs in rotation.

    For n >= 2 the idle code repeats between rounds, so the controller
    needs inserted state signals to count -- about log2(n) of them.
    """
    if ways < 2:
        raise ValueError("need at least two outputs to alternate")
    outputs = [f"y{i}" for i in range(ways)]
    lines = [
        ".model alternator",
        ".inputs r",
        ".outputs " + " ".join(outputs),
        ".graph",
    ]
    events: List[str] = []
    for i in range(ways):
        occurrence = "" if i == 0 else f"/{i + 1}"
        events += [
            f"r+{occurrence}",
            f"y{i}+",
            f"r-{occurrence}",
            f"y{i}-",
        ]
    for i, event in enumerate(events):
        lines.append(f"{event} {events[(i + 1) % len(events)]}")
    lines.append(f".marking {{ <{events[-1]},{events[0]}> }}")
    lines.append(".end")
    return parse_g("\n".join(lines), name=f"alternator_{ways}")


def linear_pipeline(stages: int) -> STG:
    """n pipeline stages between a left and a right environment handshake.

    The micropipeline control skeleton flattened to its sequential core:
    the left request ``r+`` ripples through the stage outputs
    ``s0+ .. s{n-1}+`` to the right-hand request ``q+``; the right
    environment acknowledges with ``d+``, the controller acknowledges
    left with ``a+``, and the falling phase retraces the same path.
    Linear state count (2n + 8 states), MC-clean, marked-graph.
    """
    if stages < 1:
        raise ValueError("need at least one stage")
    inputs = ["r", "d"]
    outputs = [f"s{i}" for i in range(stages)] + ["q", "a"]
    rises = [f"s{i}+" for i in range(stages)]
    falls = [f"s{i}-" for i in range(stages)]
    events = ["r+"] + rises + ["q+", "d+", "a+", "r-"] + falls + ["q-", "d-", "a-"]
    lines = [
        ".model linear_pipeline",
        ".inputs " + " ".join(inputs),
        ".outputs " + " ".join(outputs),
        ".graph",
    ]
    for i, event in enumerate(events):
        lines.append(f"{event} {events[(i + 1) % len(events)]}")
    lines.append(f".marking {{ <{events[-1]},{events[0]}> }}")
    lines.append(".end")
    return parse_g("\n".join(lines), name=f"linear_pipeline_{stages}")


def arbiter(clients: int) -> STG:
    """n clients served through one free-choice arbitration place.

    The *environment* resolves the choice: an explicit place ``idle``
    is the unique input place of every ``ri+``, so firing one request
    withdraws the others -- clean input choice (free choice by
    construction, the paper's Example-1 pattern).  Each granted client
    runs a full 4-phase handshake ``ri+ gi+ ri- gi-`` before the token
    returns to ``idle``.
    """
    if clients < 2:
        raise ValueError("need at least two clients to arbitrate")
    inputs = [f"r{i}" for i in range(clients)]
    outputs = [f"g{i}" for i in range(clients)]
    lines = [
        ".model arbiter",
        ".inputs " + " ".join(inputs),
        ".outputs " + " ".join(outputs),
        ".graph",
        "idle " + " ".join(f"r{i}+" for i in range(clients)),
    ]
    for i in range(clients):
        lines.append(f"r{i}+ g{i}+")
        lines.append(f"g{i}+ r{i}-")
        lines.append(f"r{i}- g{i}-")
        lines.append(f"g{i}- idle")
    lines.append(".marking { idle }")
    lines.append(".end")
    return parse_g("\n".join(lines), name=f"arbiter_{clients}")


def modulo_counter(period: int) -> STG:
    """A divide-by-n pulse counter: ``y`` toggles every ``period`` pulses.

    ``period`` full ``c+ c-`` pulses raise ``y``; the next ``period``
    pulses lower it again.  The idle code repeats between pulses, so
    synthesis must insert ~log2(2*period) state signals to count --
    the insertion-heavy cousin of :func:`alternator` with a single
    output.
    """
    if period < 1:
        raise ValueError("need a positive period")
    events: List[str] = []
    for k in range(2 * period):
        occurrence = "" if k == 0 else f"/{k + 1}"
        events += [f"c+{occurrence}", f"c-{occurrence}"]
        if k == period - 1:
            events.append("y+")
        elif k == 2 * period - 1:
            events.append("y-")
    lines = [
        ".model modulo_counter",
        ".inputs c",
        ".outputs y",
        ".graph",
    ]
    for i, event in enumerate(events):
        lines.append(f"{event} {events[(i + 1) % len(events)]}")
    lines.append(f".marking {{ <{events[-1]},{events[0]}> }}")
    lines.append(".end")
    return parse_g("\n".join(lines), name=f"modulo_counter_{period}")


def random_series_parallel(seed: int, leaves: int = 4) -> STG:
    """A random series-parallel controller over fresh handshake channels.

    A process term over SEQ and PAR combinators with handshake leaves is
    sampled (``leaves`` leaf channels ``q_i``/``d_i``), wrapped in a
    parent handshake ``r``/``a``.  The resulting STGs are live, 1-safe
    and output semi-modular by construction -- fuzz fodder for the whole
    pipeline.
    """
    import random as _random

    rng = _random.Random(seed)
    lines: List[str] = []
    counter = [0]

    def leaf() -> Tuple[str, str]:
        i = counter[0]
        counter[0] += 1
        lines.append(f"q{i}+ d{i}+")
        lines.append(f"d{i}+ q{i}-")
        lines.append(f"q{i}- d{i}-")
        return f"q{i}+", f"d{i}-"

    def build(remaining: int) -> Tuple[str, str]:
        if remaining <= 1:
            return leaf()
        split = rng.randint(1, remaining - 1)
        left_start, left_end = build(split)
        right_start, right_end = build(remaining - split)
        if rng.random() < 0.5:  # SEQ
            lines.append(f"{left_end} {right_start}")
            return left_start, right_end
        # PAR: forked by a shared predecessor, joined by a shared successor
        i = counter[0]
        counter[0] += 1
        fork, join = f"q{i}+", f"q{i}-"  # a bracketing output pulse
        lines.append(f"{fork} {left_start} {right_start}")
        lines.append(f"{left_end} {join}")
        lines.append(f"{right_end} {join}")
        return fork, join

    start, end = build(leaves)
    lines.append(f"r+ {start}")
    lines.append(f"{end} a+")
    lines.append("a+ r-")
    lines.append("r- a-")
    lines.append("a- r+")

    used = set()
    for line in lines:
        for token in line.split():
            used.add(token[:-1].split("/")[0])
    outputs = sorted(s for s in used if s.startswith("q")) + ["a"]
    inputs = sorted(s for s in used if s.startswith("d")) + ["r"]
    text = "\n".join(
        [
            ".model series_parallel",
            ".inputs " + " ".join(inputs),
            ".outputs " + " ".join(outputs),
            ".graph",
        ]
        + lines
        + [".marking { <a-,r+> }", ".end"]
    )
    return parse_g(text, name=f"sp_{seed}")


def random_free_choice(seed: int, leaves: int = 4, choice_bias: float = 0.3) -> STG:
    """A random free-choice controller: SEQ / PAR / CHOICE process terms.

    Extends the series-parallel grammar with a CHOICE combinator: an
    explicit place whose consumers are two fresh *input* transitions
    (the environment picks the branch), bracketed by an output pulse
    ``gk+ .. gk-`` so every combinator still composes through plain
    transition-to-transition arcs.  The choice place is the unique
    input place of both branch openers, so the net is free-choice by
    construction; liveness holds because the loop re-marks the choice
    on every round.  ``choice_bias`` is the probability that an
    internal node becomes a CHOICE rather than a SEQ/PAR split.
    """
    import random as _random

    if leaves < 1:
        raise ValueError("need at least one leaf")
    rng = _random.Random(seed)
    lines: List[str] = []
    counter = [0]
    choices = [0]

    def leaf() -> Tuple[str, str]:
        i = counter[0]
        counter[0] += 1
        lines.append(f"q{i}+ d{i}+")
        lines.append(f"d{i}+ q{i}-")
        lines.append(f"q{i}- d{i}-")
        return f"q{i}+", f"d{i}-"

    def build(remaining: int) -> Tuple[str, str]:
        if remaining <= 1:
            return leaf()
        split = rng.randint(1, remaining - 1)
        if rng.random() < choice_bias:
            # CHOICE: an explicit free-choice place between two
            # input-initiated branches, bracketed by an output pulse
            k = choices[0]
            choices[0] += 1
            entry, exit_ = f"pc{k}", f"pm{k}"
            lines.append(f"g{k}+ {entry}")
            lines.append(f"{entry} u{k}a+ u{k}b+")
            for tag, size in (("a", split), ("b", remaining - split)):
                body_start, body_end = build(size)
                lines.append(f"u{k}{tag}+ {body_start}")
                lines.append(f"{body_end} u{k}{tag}-")
                lines.append(f"u{k}{tag}- {exit_}")
            lines.append(f"{exit_} g{k}-")
            return f"g{k}+", f"g{k}-"
        left_start, left_end = build(split)
        right_start, right_end = build(remaining - split)
        if rng.random() < 0.5:  # SEQ
            lines.append(f"{left_end} {right_start}")
            return left_start, right_end
        i = counter[0]
        counter[0] += 1
        fork, join = f"q{i}+", f"q{i}-"
        lines.append(f"{fork} {left_start} {right_start}")
        lines.append(f"{left_end} {join}")
        lines.append(f"{right_end} {join}")
        return fork, join

    start, end = build(leaves)
    lines.append(f"r+ {start}")
    lines.append(f"{end} a+")
    lines.append("a+ r-")
    lines.append("r- a-")
    lines.append("a- r+")

    used = set()
    for line in lines:
        for token in line.split():
            if token.startswith(("pc", "pm")):
                continue  # explicit places are not signals
            used.add(token[:-1].split("/")[0])
    outputs = sorted(
        s for s in used if s.startswith("q") or s.startswith("g")
    ) + ["a"]
    inputs = sorted(
        s for s in used if s.startswith("d") or s.startswith("u")
    ) + ["r"]
    text = "\n".join(
        [
            ".model free_choice",
            ".inputs " + " ".join(inputs),
            ".outputs " + " ".join(outputs),
            ".graph",
        ]
        + lines
        + [".marking { <a-,r+> }", ".end"]
    )
    return parse_g(text, name=f"fc_{seed}")


# ----------------------------------------------------------------------
# The family registry the corpus factory samples from
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Family:
    """One registered STG family: a builder plus default parameter ranges.

    ``defaults`` maps parameter names to either a fixed value or an
    inclusive ``(lo, hi)`` integer range the factory samples from.
    ``seeded`` families additionally receive a derived ``seed``
    parameter (randomized builders); unseeded families are pure
    functions of their integer parameters.
    """

    name: str
    build: Callable[..., STG]
    defaults: Mapping[str, object] = field(default_factory=dict)
    seeded: bool = False


FAMILIES: Dict[str, Family] = {
    family.name: family
    for family in (
        Family("token_ring", token_ring, {"channels": (2, 7)}),
        Family("concurrent_fork", concurrent_fork, {"branches": (2, 4)}),
        Family("alternator", alternator, {"ways": (2, 3)}),
        Family("linear_pipeline", linear_pipeline, {"stages": (2, 6)}),
        Family("arbiter", arbiter, {"clients": (2, 4)}),
        Family("modulo_counter", modulo_counter, {"period": (1, 3)}),
        Family(
            "series_parallel",
            random_series_parallel,
            {"leaves": (2, 5)},
            seeded=True,
        ),
        Family(
            "free_choice",
            random_free_choice,
            {"leaves": (2, 4)},
            seeded=True,
        ),
    )
}


def fuzz_specs(count: int, seed: int = 0) -> Iterator[Tuple[str, STG]]:
    """A deterministic stream of ``count`` named fuzz specifications.

    The historical mix feeding the differential-verification oracle
    (:mod:`repro.verify.differential`): seven in ten designs are random
    series-parallel controllers (each with a fresh seed and a varying
    leaf count), the rest rotate through the parametric families so the
    sweep also exercises sequential rings, exponential forks and
    insertion-heavy alternators.  The stream depends only on
    ``(count, seed)`` and is byte-for-byte stable across releases --
    CI seeds reference this exact sequence.  New sweeps should prefer a
    :class:`~repro.corpus.spec.CorpusSpec` stream, which covers the
    newer families and records admission statistics.
    """
    for i in range(count):
        slot = i % 10
        if slot < 7:
            leaves = 2 + (seed + i) % 5
            stg = random_series_parallel(seed * 100_003 + i, leaves=leaves)
            yield f"sp_{seed}_{i}(leaves={leaves})", stg
        elif slot == 7:
            n = 2 + (i // 10) % 6
            yield f"token_ring({n})", token_ring(n)
        elif slot == 8:
            n = 2 + (i // 10) % 3
            yield f"concurrent_fork({n})", concurrent_fork(n)
        else:
            n = 2 + (i // 10) % 4
            yield f"alternator({n})", alternator(n)


__all__ = [
    "FAMILIES",
    "Family",
    "alternator",
    "arbiter",
    "concurrent_fork",
    "fuzz_specs",
    "linear_pipeline",
    "modulo_counter",
    "random_free_choice",
    "random_series_parallel",
    "token_ring",
]
