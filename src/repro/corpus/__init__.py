"""`repro.corpus` — the unified, seeded design-generation subsystem.

Everything that produces *generated* (as opposed to benchmark) designs
draws from here: parametric STG families (:mod:`repro.corpus.families`),
declarative corpus recipes (:mod:`repro.corpus.spec`, JSON dialect
``repro-corpus-spec/1``), and the structurally-admitted streaming
factory (:mod:`repro.corpus.factory`).  ``bench.generators`` is a
deprecated forwarding shim onto this package.
"""

from repro.corpus.families import (
    FAMILIES,
    Family,
    alternator,
    arbiter,
    concurrent_fork,
    fuzz_specs,
    linear_pipeline,
    modulo_counter,
    random_free_choice,
    random_series_parallel,
    token_ring,
)
from repro.corpus.factory import (
    CorpusDesign,
    CorpusError,
    CorpusStats,
    admission_failure,
    corpus_stream,
    generate_corpus,
)
from repro.corpus.spec import (
    CORPUS_SPEC_SCHEMA,
    AdmissionSpec,
    CorpusSpec,
    CorpusSpecError,
    FamilySpec,
    default_families,
    dumps_corpus_spec,
    load_corpus_spec,
)

__all__ = [
    "CORPUS_SPEC_SCHEMA",
    "AdmissionSpec",
    "CorpusDesign",
    "CorpusError",
    "CorpusSpec",
    "CorpusSpecError",
    "CorpusStats",
    "FAMILIES",
    "Family",
    "FamilySpec",
    "admission_failure",
    "alternator",
    "arbiter",
    "concurrent_fork",
    "corpus_stream",
    "default_families",
    "dumps_corpus_spec",
    "fuzz_specs",
    "generate_corpus",
    "linear_pipeline",
    "load_corpus_spec",
    "modulo_counter",
    "random_free_choice",
    "random_series_parallel",
    "token_ring",
]
