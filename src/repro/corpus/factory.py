"""The corpus factory: seeded streams of structurally-admitted designs.

:func:`corpus_stream` turns a :class:`~repro.corpus.spec.CorpusSpec`
into a lazy stream of :class:`CorpusDesign` records.  Per candidate:

1. a family is drawn from the spec's weighted mix with a random state
   derived *arithmetically* from ``(spec.seed, attempt_index)`` — no
   process-level randomness, no hash randomisation, so the same spec
   yields the same stream in every process;
2. the family's parameters are sampled from their declared ranges and
   the builder runs;
3. the candidate passes through the structural admission bar
   (consistency T-invariants, free choice, bounded live-and-safe
   exploration) and is either admitted — named, serialised to
   canonical ``.g`` text, fingerprinted — or rejected with a counted
   reason.

The stream is the single generation path for batch sweeps
(``repro-si batch --corpus``), differential campaigns, service sweep
jobs and the CI oracle gates.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.corpus.families import FAMILIES
from repro.corpus.spec import CorpusSpec, FamilySpec
from repro.pipeline.core import PipelineSpec
from repro.stg.invariants import is_consistent_net
from repro.stg.reachability import ReachabilityError, explore
from repro.stg.stg import STG
from repro.stg.structural import is_free_choice
from repro.stg.writer import dumps_g

#: Large primes decorrelating per-candidate random streams from the
#: corpus seed; chosen once, load-bearing for stream stability.
_SEED_STRIDE = 1_000_003
_FAMILY_SALT = 7_368_787


class CorpusError(ValueError):
    """Corpus generation failed (e.g. the admission bar starves the stream)."""


@dataclass(frozen=True)
class CorpusDesign:
    """One admitted design: the STG plus its canonical text and identity.

    ``g_text`` is the deterministic :func:`repro.stg.writer.dumps_g`
    rendering; ``fingerprint`` is the SHA-256 of those bytes, i.e. equal
    to ``fingerprint_file`` of a ``.g`` file holding the same text —
    batch manifests key resume decisions on it.
    """

    index: int
    name: str
    family: str
    stg: STG
    g_text: str
    fingerprint: str

    def pipeline_spec(self, **options) -> PipelineSpec:
        """This design as a pipeline entry point (synthesis options pass through)."""
        options.setdefault("name", self.name)
        return PipelineSpec.from_stg(self.stg, **options)


@dataclass
class CorpusStats:
    """Counters accumulated while a stream is drained.

    ``rejections`` maps reason → count (``builder-error``,
    ``inconsistent``, ``non-free-choice``, ``unsafe``, ``state-cap``,
    ``inconsistent-assignment``, ``not-live``); ``by_family`` counts
    *admitted* designs per family.
    """

    candidates: int = 0
    admitted: int = 0
    rejections: Dict[str, int] = field(default_factory=dict)
    by_family: Dict[str, int] = field(default_factory=dict)

    def reject(self, reason: str) -> None:
        self.rejections[reason] = self.rejections.get(reason, 0) + 1

    @property
    def rejected(self) -> int:
        return sum(self.rejections.values())

    def to_json(self) -> dict:
        return {
            "candidates": self.candidates,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "rejections": dict(sorted(self.rejections.items())),
            "by_family": dict(sorted(self.by_family.items())),
        }


def _candidate_rng(spec_seed: int, attempt: int) -> random.Random:
    """A per-candidate PRNG from pure integer arithmetic (process-stable)."""
    return random.Random(spec_seed * _SEED_STRIDE + attempt * 2 + 1)


def _pick_family(families: Tuple[FamilySpec, ...], rng: random.Random) -> FamilySpec:
    total = sum(entry.weight for entry in families)
    ticket = rng.randrange(total)
    for entry in families:
        ticket -= entry.weight
        if ticket < 0:
            return entry
    return families[-1]  # unreachable; keeps the type checker honest


def _sample_params(entry: FamilySpec, rng: random.Random) -> Dict[str, int]:
    params: Dict[str, int] = {}
    for key, value in sorted(entry.resolved_params().items()):
        if isinstance(value, tuple):
            params[key] = rng.randint(value[0], value[1])
        else:
            params[key] = value
    return params


def admission_failure(stg: STG, spec: CorpusSpec) -> Optional[str]:
    """The reason this candidate fails the admission bar, or None if it passes.

    Checks run cheapest-first; the live/safe exploration reuses
    :mod:`repro.stg.reachability` directly so cap overruns, safeness
    violations and inconsistent state assignments are reported apart.
    """
    admission = spec.admission
    net = stg.net
    if admission.require_consistent and not is_consistent_net(net):
        return "inconsistent"
    if admission.require_free_choice and not is_free_choice(net):
        return "non-free-choice"
    if admission.require_live_safe:
        try:
            order, _, arcs = explore(stg, max_states=admission.max_states)
        except ReachabilityError as exc:
            message = str(exc)
            if "reachable markings" in message:
                return "state-cap"
            if "state assignment" in message:
                return "inconsistent-assignment"
            return "unsafe"
        successors: Dict[object, List[object]] = {m: [] for m in order}
        fired_at: Dict[object, set] = {m: set() for m in order}
        for source, transition, target in arcs:
            successors[source].append(target)
            fired_at[source].add(transition)
        all_transitions = set(net.transitions)
        can_fire = {m: set(fired_at[m]) for m in order}
        changed = True
        while changed:
            changed = False
            for marking in order:
                merged = set(can_fire[marking])
                for target in successors[marking]:
                    merged |= can_fire[target]
                if merged != can_fire[marking]:
                    can_fire[marking] = merged
                    changed = True
        if any(can_fire[m] != all_transitions for m in order):
            return "not-live"
    return None


def corpus_stream(
    spec: CorpusSpec, stats: Optional[CorpusStats] = None
) -> Iterator[CorpusDesign]:
    """Lazily yield ``spec.count`` admitted designs.

    The stream is a pure function of the spec (including its seed):
    byte-identical ``g_text`` and fingerprints wherever it is drained.
    Raises :class:`CorpusError` if ``spec.attempts_cap`` candidates are
    exhausted before ``count`` admissions — an over-strict bar fails
    loudly rather than spinning.
    """
    if stats is None:
        stats = CorpusStats()
    families = tuple(spec.families)
    admitted = 0
    attempt = 0
    while admitted < spec.count:
        if attempt >= spec.attempts_cap:
            raise CorpusError(
                f"corpus starved: {admitted}/{spec.count} designs admitted "
                f"after {attempt} candidates "
                f"(rejections: {dict(sorted(stats.rejections.items()))})"
            )
        rng = _candidate_rng(spec.seed, attempt)
        attempt += 1
        stats.candidates += 1
        entry = _pick_family(families, rng)
        family = FAMILIES[entry.family]
        params = _sample_params(entry, rng)
        if family.seeded:
            params["seed"] = spec.seed * _SEED_STRIDE + attempt * _FAMILY_SALT
        try:
            stg = family.build(**params)
        except (ValueError, KeyError) as exc:
            stats.reject("builder-error")
            del exc
            continue
        reason = admission_failure(stg, spec)
        if reason is not None:
            stats.reject(reason)
            continue
        name = f"{spec.name_prefix}-{admitted:05d}-{entry.family}"
        stg.name = name
        g_text = dumps_g(stg)
        fingerprint = hashlib.sha256(g_text.encode("utf-8")).hexdigest()
        stats.admitted += 1
        stats.by_family[entry.family] = stats.by_family.get(entry.family, 0) + 1
        yield CorpusDesign(
            index=admitted,
            name=name,
            family=entry.family,
            stg=stg,
            g_text=g_text,
            fingerprint=fingerprint,
        )
        admitted += 1


def generate_corpus(spec: CorpusSpec) -> Tuple[List[CorpusDesign], CorpusStats]:
    """Drain a stream eagerly: ``(designs, stats)``.

    Convenience for tests and small sweeps; batch-scale callers should
    iterate :func:`corpus_stream` to keep memory flat.
    """
    stats = CorpusStats()
    designs = list(corpus_stream(spec, stats=stats))
    return designs, stats


__all__ = [
    "CorpusDesign",
    "CorpusError",
    "CorpusStats",
    "admission_failure",
    "corpus_stream",
    "generate_corpus",
]
