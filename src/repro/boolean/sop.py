"""Rendering of cubes, covers and excitation equations.

The paper writes implementations as equation systems, e.g. (eqs. (2)):

    Sx = a b' c ;  x = C(Sx, a')  ;  d = x
    Sc = b d + x a b' ;  Rc = a' b' d' ;  c = C(Sc, Rc')

We render literals with a trailing apostrophe for inversion (``a'``),
cubes as space-free concatenation when every signal is one character and
as ``&``-joined literals otherwise, and covers with `` + `` between cubes.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

from repro.boolean.compiled import CompiledCover, CompiledCube
from repro.boolean.cube import Cube
from repro.boolean.cover import Cover


def format_literal(signal: str, value: int) -> str:
    """``a`` for the positive literal, ``a'`` for the negative one."""
    return signal if value else f"{signal}'"


def format_cube(cube: Union[Cube, CompiledCube], compact: bool = True) -> str:
    """Render a cube as a product of literals.

    Accepts the literal-dict :class:`Cube` or the compiled IR form (a
    :class:`~repro.boolean.compiled.CompiledCube` renders via its
    literal view, so both forms print identically).

    ``compact`` concatenates single-character signal names (paper style,
    ``ab'c``); multi-character names always use `` `` separators.
    """
    if isinstance(cube, CompiledCube):
        cube = cube.to_cube()
    if len(cube) == 0:
        return "1"
    parts = [format_literal(s, v) for s, v in cube.literals]
    if compact and all(len(s) <= 1 for s in cube.signals):
        return "".join(parts)
    return " ".join(parts)


def format_cover(cover: Union[Cover, CompiledCover], compact: bool = True) -> str:
    """Render a cover as a sum of products (``ab' + cd``)."""
    if isinstance(cover, CompiledCover):
        cover = cover.to_cover()
    if cover.is_empty():
        return "0"
    return " + ".join(format_cube(cube, compact=compact) for cube in cover)


def format_equation(name: str, cover: Cover, compact: bool = True) -> str:
    """Render ``name = <SOP>``."""
    return f"{name} = {format_cover(cover, compact=compact)}"


def format_equations(pairs: Iterable[Sequence]) -> str:
    """Render several ``(name, cover)`` pairs, one per line."""
    return "\n".join(format_equation(name, cover) for name, cover in pairs)
