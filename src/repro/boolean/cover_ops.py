"""Shannon-recursion algorithms on covers (espresso-style).

Unate-recursive-paradigm classics -- tautology checking, complementation,
cofactoring and semantic containment/equivalence.  These complement the
explicit on-set minimiser (:mod:`repro.boolean.minimize`) with algorithms
that never enumerate minterms, so they stay usable when the signal count
grows.

All functions take an explicit ``signals`` universe: a cover is a
function of exactly those variables (literals on other signals are
rejected).  Internally the recursion runs entirely on the compiled IR
(:mod:`repro.boolean.compiled`): covers compile once against the
universe's interned :class:`~repro.boolean.compiled.SignalSpace` and
every cofactor/containment step is mask-value bit arithmetic on
``(mask, value)`` big-int pairs; the literal-dict :class:`Cover` API is
a thin view at the entry and exit points.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.boolean.compiled import CompiledCube, SignalSpace
from repro.boolean.cover import Cover

#: the recursion's working form: one cube as its (mask, value) pair
_Pair = Tuple[int, int]


def _check_signals(cover: Cover, signals: Sequence[str]) -> None:
    extra = cover.signals - set(signals)
    if extra:
        raise ValueError(f"cover uses signals outside the universe: {sorted(extra)}")


def _compile(cover: Cover, signals: Sequence[str]) -> Tuple[SignalSpace, List[_Pair]]:
    _check_signals(cover, signals)
    space = SignalSpace.of(tuple(signals))
    compiled = cover.compiled(space)
    return space, [(c.mask, c.value) for c in compiled.cubes]


def _decompile(space: SignalSpace, pairs: Sequence[_Pair]) -> Cover:
    return Cover(
        CompiledCube(space, mask, value).to_cube() for mask, value in pairs
    )


def _cofactor_pairs(pairs: Sequence[_Pair], bit: int, bit_value: int) -> List[_Pair]:
    """Shannon cofactor w.r.t. one position: drop killed cubes, clear the
    bit from the survivors that constrained it."""
    kept: List[_Pair] = []
    want = bit if bit_value else 0
    for mask, value in pairs:
        if not mask & bit:
            kept.append((mask, value))
        elif value & bit == want:
            kept.append((mask ^ bit, value & ~bit))
    return kept


def _select_split(pairs: Sequence[_Pair], remaining: Sequence[int]) -> Optional[int]:
    """The most frequently constrained position -- the classic binate
    heuristic, ties broken by universe order."""
    best, best_count = None, 0
    for position in remaining:
        bit = 1 << position
        count = sum(1 for mask, _ in pairs if mask & bit)
        if count > best_count:
            best, best_count = position, count
    return best


def cofactor(cover: Cover, signal: str, value: int) -> Cover:
    """The Shannon cofactor of the cover with respect to ``signal = value``."""
    space = SignalSpace.of(tuple(sorted(cover.signals | {signal})))
    compiled = cover.compiled(space)
    bit = 1 << space.position[signal]
    pairs = _cofactor_pairs(
        [(c.mask, c.value) for c in compiled.cubes], bit, value
    )
    return _decompile(space, pairs)


def is_tautology(cover: Cover, signals: Sequence[str]) -> bool:
    """True iff the cover is 1 on every assignment of ``signals``."""
    space, pairs = _compile(cover, signals)
    return _is_tautology_pairs(pairs, list(range(space.width)))


def _is_tautology_pairs(pairs: List[_Pair], remaining: List[int]) -> bool:
    if any(mask == 0 for mask, _ in pairs):
        return True  # contains the universal cube
    if not pairs:
        return False
    split = _select_split(pairs, remaining)
    if split is None:
        # no literals at all and no universal cube: impossible since
        # non-empty covers without literals contain a universal cube
        return False
    rest = [p for p in remaining if p != split]
    bit = 1 << split
    return _is_tautology_pairs(
        _cofactor_pairs(pairs, bit, 0), rest
    ) and _is_tautology_pairs(_cofactor_pairs(pairs, bit, 1), rest)


def _irredundant_pairs(pairs: List[_Pair]) -> List[_Pair]:
    """Drop cubes single-cube-contained in another cube of the list."""
    kept: List[_Pair] = []
    for i, (mask, value) in enumerate(pairs):
        contained = any(
            mask & other_mask == other_mask and value & other_mask == other_value
            for j, (other_mask, other_value) in enumerate(pairs)
            if j != i
        )
        if not contained:
            kept.append((mask, value))
    return kept


def complement(cover: Cover, signals: Sequence[str]) -> Cover:
    """A cover of the complement function (not guaranteed minimal)."""
    space, pairs = _compile(cover, signals)

    def recurse(current: List[_Pair], remaining: List[int]) -> List[_Pair]:
        if not current:
            return [(0, 0)]  # complement of 0 is the universal cube
        if any(mask == 0 for mask, _ in current):
            return []
        if len(current) == 1:
            # De Morgan on a single cube: one flipped literal per bit
            mask, value = current[0]
            literals: List[_Pair] = []
            probe = mask
            while probe:
                bit = probe & -probe
                probe ^= bit
                literals.append((bit, (value & bit) ^ bit))
            return literals
        split = _select_split(current, remaining)
        rest = [p for p in remaining if p != split]
        bit = 1 << split
        negative = recurse(_cofactor_pairs(current, bit, 0), rest)
        positive = recurse(_cofactor_pairs(current, bit, 1), rest)
        merged = [(m | bit, v) for m, v in negative]
        merged += [(m | bit, v | bit) for m, v in positive]
        return _irredundant_pairs(merged)

    return _decompile(space, recurse(pairs, list(range(space.width))))


def covers_implies(left: Cover, right: Cover, signals: Sequence[str]) -> bool:
    """Semantic containment: every point of ``left`` is in ``right``.

    ``left <= right`` iff each cube of ``left`` cofactored into ``right``
    leaves a tautology over the cube's free positions.
    """
    space, left_pairs = _compile(left, signals)
    _, right_pairs = _compile(right, signals)
    all_positions = list(range(space.width))
    for cube_mask, cube_value in left_pairs:
        reduced = right_pairs
        probe = cube_mask
        while probe:
            bit = probe & -probe
            probe ^= bit
            reduced = _cofactor_pairs(reduced, bit, 1 if cube_value & bit else 0)
        remaining = [p for p in all_positions if not cube_mask & (1 << p)]
        if not _is_tautology_pairs(reduced, remaining):
            return False
    return True


def covers_equivalent(left: Cover, right: Cover, signals: Sequence[str]) -> bool:
    """Semantic equality of the two functions."""
    return covers_implies(left, right, signals) and covers_implies(
        right, left, signals
    )


__all__ = [
    "cofactor",
    "complement",
    "covers_equivalent",
    "covers_implies",
    "is_tautology",
]
