"""Shannon-recursion algorithms on covers (espresso-style).

Unate-recursive-paradigm classics over the cube-list representation:
tautology checking, complementation, cofactoring and semantic
containment/equivalence.  These complement the explicit on-set
minimiser (:mod:`repro.boolean.minimize`) with algorithms that never
enumerate minterms, so they stay usable when the signal count grows.

All functions take an explicit ``signals`` universe: a cover is a
function of exactly those variables (literals on other signals are
rejected).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.boolean.cover import Cover
from repro.boolean.cube import Cube


def _check_signals(cover: Cover, signals: Sequence[str]) -> None:
    extra = cover.signals - set(signals)
    if extra:
        raise ValueError(f"cover uses signals outside the universe: {sorted(extra)}")


def cofactor(cover: Cover, signal: str, value: int) -> Cover:
    """The Shannon cofactor of the cover with respect to ``signal = value``."""
    kept: List[Cube] = []
    for cube in cover:
        lit = cube.value_of(signal)
        if lit is None:
            kept.append(cube)
        elif lit == value:
            kept.append(cube.without((signal,)))
    return Cover(kept)


def _select_split(cover: Cover, signals: Sequence[str]) -> Optional[str]:
    """The most frequently constrained signal -- a classic binate heuristic."""
    counts = {s: 0 for s in signals}
    for cube in cover:
        for signal, _ in cube.literals:
            counts[signal] += 1
    best, best_count = None, 0
    for signal in signals:
        if counts[signal] > best_count:
            best, best_count = signal, counts[signal]
    return best


def is_tautology(cover: Cover, signals: Sequence[str]) -> bool:
    """True iff the cover is 1 on every assignment of ``signals``."""
    _check_signals(cover, signals)

    def recurse(current: Cover, remaining: Tuple[str, ...]) -> bool:
        if any(len(cube) == 0 for cube in current):
            return True  # contains the universal cube
        if current.is_empty():
            return False
        split = _select_split(current, remaining)
        if split is None:
            # no literals at all and no universal cube: impossible since
            # non-empty covers without literals contain a universal cube
            return False
        rest = tuple(s for s in remaining if s != split)
        return recurse(cofactor(current, split, 0), rest) and recurse(
            cofactor(current, split, 1), rest
        )

    return recurse(cover, tuple(signals))


def complement(cover: Cover, signals: Sequence[str]) -> Cover:
    """A cover of the complement function (not guaranteed minimal)."""
    _check_signals(cover, signals)

    def recurse(current: Cover, remaining: Tuple[str, ...]) -> Cover:
        if current.is_empty():
            return Cover([Cube()])
        if any(len(cube) == 0 for cube in current):
            return Cover()
        if len(current) == 1:
            # De Morgan on a single cube
            return Cover(
                [Cube({s: 1 - v}) for s, v in current.cubes[0].literals]
            )
        split = _select_split(current, remaining)
        rest = tuple(s for s in remaining if s != split)
        negative = recurse(cofactor(current, split, 0), rest)
        positive = recurse(cofactor(current, split, 1), rest)
        cubes: List[Cube] = []
        for cube in negative:
            cubes.append(cube.with_literal(split, 0))
        for cube in positive:
            cubes.append(cube.with_literal(split, 1))
        return Cover(cubes).irredundant()

    return recurse(cover, tuple(signals))


def covers_implies(left: Cover, right: Cover, signals: Sequence[str]) -> bool:
    """Semantic containment: every point of ``left`` is in ``right``.

    Implemented as tautology of ``right + complement(left)`` restricted
    the cheap way: ``left <= right`` iff each cube of ``left`` cofactored
    into ``right`` leaves a tautology.
    """
    _check_signals(left, signals)
    _check_signals(right, signals)
    for cube in left:
        reduced = right
        remaining = [s for s in signals]
        for signal, value in cube.literals:
            reduced = cofactor(reduced, signal, value)
            remaining.remove(signal)
        if not is_tautology(reduced, remaining):
            return False
    return True


def covers_equivalent(left: Cover, right: Cover, signals: Sequence[str]) -> bool:
    """Semantic equality of the two functions."""
    return covers_implies(left, right, signals) and covers_implies(
        right, left, signals
    )
