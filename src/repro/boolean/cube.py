"""Product terms (cubes) over named Boolean signals.

A *cube* is a conjunction of literals.  Each literal constrains one signal
to a fixed value (0 or 1); signals without a literal are don't-cares.  The
paper manipulates cubes over the signals of a state graph: a *cover cube*
``c(*a_i)`` for an excitation region is exactly such a product term
(Definition 15), and a minterm of a state is the cube fixing every signal
(Lemma 3 derives the smallest cover cube from the minterm of the minimal
state of the region).

Cubes here are immutable and hashable so they can live in sets, serve as
dictionary keys during cover selection, and be compared structurally.

The literal dict is the *construction-time* form; every hot-path
operation compiles into the shared mask-value IR
(:mod:`repro.boolean.compiled`) on first use and is memoised per
interned :class:`~repro.boolean.compiled.SignalSpace`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Sequence, Tuple

from repro.boolean.compiled import CompiledCube, SignalSpace


class Cube:
    """An immutable product term over named signals.

    A cube maps a subset of signal names to required values (0 or 1).
    The empty cube (no literals) is the universal cube: it covers every
    state.

    Parameters
    ----------
    literals:
        A mapping (or iterable of pairs) from signal name to required
        value.  Values must be 0 or 1.
    """

    __slots__ = ("_literals", "_hash", "_compiled", "_sorted")

    def __init__(self, literals: Mapping[str, int] | Iterable[Tuple[str, int]] = ()):
        items = dict(literals)
        for signal, value in items.items():
            if value not in (0, 1):
                raise ValueError(
                    f"literal value for {signal!r} must be 0 or 1, got {value!r}"
                )
        self._literals: Dict[str, int] = items
        self._hash: Optional[int] = None
        #: interned SignalSpace -> CompiledCube (memoised per space)
        self._compiled: Optional[Dict[SignalSpace, CompiledCube]] = None
        self._sorted: Optional[Tuple[Tuple[str, int], ...]] = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def universal(cls) -> "Cube":
        """The cube with no literals; covers every state."""
        return cls()

    @classmethod
    def minterm(cls, code: Mapping[str, int]) -> "Cube":
        """The minterm fixing every signal of ``code`` to its value."""
        return cls(dict(code))

    @classmethod
    def from_vector(cls, signals: Sequence[str], vector: Sequence[int]) -> "Cube":
        """Build a minterm from a signal ordering and a 0/1 vector."""
        if len(signals) != len(vector):
            raise ValueError("signals and vector must have the same length")
        return cls(dict(zip(signals, vector)))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def literals(self) -> Tuple[Tuple[str, int], ...]:
        """The literals as a sorted tuple of ``(signal, value)`` pairs."""
        cached = self._sorted
        if cached is None:
            cached = self._sorted = tuple(sorted(self._literals.items()))
        return cached

    @property
    def signals(self) -> frozenset:
        """The set of signals constrained by this cube."""
        return frozenset(self._literals)

    def value_of(self, signal: str) -> Optional[int]:
        """The required value for ``signal``, or ``None`` if don't-care."""
        return self._literals.get(signal)

    def __len__(self) -> int:
        return len(self._literals)

    def __iter__(self) -> Iterator[Tuple[str, int]]:
        return iter(self.literals)

    def __contains__(self, signal: str) -> bool:
        return signal in self._literals

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    def covers(self, code: Mapping[str, int]) -> bool:
        """True if the cube evaluates to 1 on the given complete code."""
        get = code.__getitem__ if not hasattr(code, "get") else code.get
        for signal, value in self._literals.items():
            if get(signal) != value:
                return False
        return True

    def compiled(self, space: SignalSpace) -> CompiledCube:
        """The cube in the shared mask-value IR against one space.

        With every state code packed into a single int (bit ``i`` holding
        the value of ``space.signals[i]``), the cube covers a packed code
        ``p`` iff ``p & mask == value`` -- one AND plus one compare,
        independent of the literal count.  This is the O(words) form the
        bitmask analysis engine and the netlist evaluators use on the
        synthesis hot path.

        The result is memoised per interned space (a cube is typically
        queried against exactly one graph's ordering thousands of times).
        """
        cache = self._compiled
        if cache is None:
            cache = self._compiled = {}
        cached = cache.get(space)
        if cached is None:
            cached = cache[space] = CompiledCube.from_literals(
                space, self._literals.items()
            )
        return cached

    def compile(self, signal_order: Sequence[str]) -> Tuple[int, int]:
        """The cube's ``(mask, value)`` pair against an ordering.

        Thin wrapper over :meth:`compiled` kept for callers that want the
        raw bit pair rather than the :class:`CompiledCube` object.
        """
        compiled = self.compiled(SignalSpace.of(signal_order))
        return (compiled.mask, compiled.value)

    def covers_packed(self, packed_code: int, signal_order: Sequence[str]) -> bool:
        """O(1) covering test against a packed state code (see :meth:`compiled`)."""
        return self.compiled(SignalSpace.of(signal_order)).covers_packed(
            packed_code
        )

    def evaluator(self, signal_order: Sequence[str]):
        """Compile the cube against a signal ordering.

        Returns a callable taking a tuple/list of values ordered as
        ``signal_order`` and returning True iff the cube covers it.  This
        is the hot path when scanning thousands of state codes.
        """
        index = {signal: i for i, signal in enumerate(signal_order)}
        pairs = tuple((index[s], v) for s, v in self._literals.items())

        def evaluate(vector: Sequence[int]) -> bool:
            for i, v in pairs:
                if vector[i] != v:
                    return False
            return True

        return evaluate

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def intersect(self, other: "Cube") -> Optional["Cube"]:
        """The product of two cubes, or ``None`` if they are disjoint."""
        merged = dict(self._literals)
        for signal, value in other._literals.items():
            existing = merged.get(signal)
            if existing is None:
                merged[signal] = value
            elif existing != value:
                return None
        return Cube(merged)

    def contains(self, other: "Cube") -> bool:
        """True if every state covered by ``other`` is covered by self.

        Cube containment: self ⊇ other iff every literal of self appears in
        other with the same value.
        """
        for signal, value in self._literals.items():
            if other._literals.get(signal) != value:
                return False
        return True

    def without(self, signals: Iterable[str]) -> "Cube":
        """A copy of the cube with literals on ``signals`` removed."""
        drop = set(signals)
        return Cube({s: v for s, v in self._literals.items() if s not in drop})

    def restricted_to(self, signals: Iterable[str]) -> "Cube":
        """A copy keeping only literals on ``signals``."""
        keep = set(signals)
        return Cube({s: v for s, v in self._literals.items() if s in keep})

    def expand(self, signal: str) -> "Cube":
        """Drop one literal (raise the cube along ``signal``)."""
        if signal not in self._literals:
            raise KeyError(f"cube has no literal on {signal!r}")
        return self.without((signal,))

    def with_literal(self, signal: str, value: int) -> "Cube":
        """Add (or overwrite) one literal."""
        merged = dict(self._literals)
        merged[signal] = value
        return Cube(merged)

    def supercube(self, other: "Cube") -> "Cube":
        """The smallest cube containing both cubes."""
        kept = {}
        for signal, value in self._literals.items():
            if other._literals.get(signal) == value:
                kept[signal] = value
        return Cube(kept)

    @staticmethod
    def supercube_of_codes(
        codes: Iterable[Mapping[str, int]], signals: Iterable[str]
    ) -> "Cube":
        """The smallest cube covering every code in ``codes``.

        Only signals listed in ``signals`` are considered for literals.
        Raises ``ValueError`` on an empty code collection (the empty set
        has no well-defined supercube).
        """
        iterator = iter(codes)
        try:
            first = next(iterator)
        except StopIteration:
            raise ValueError("supercube of an empty set of codes is undefined")
        kept = {s: first[s] for s in signals}
        for code in iterator:
            for signal in [s for s, v in kept.items() if code[s] != v]:
                del kept[signal]
            if not kept:
                break
        return Cube(kept)

    def distance(self, other: "Cube") -> int:
        """Number of signals on which the two cubes have opposite literals."""
        count = 0
        for signal, value in self._literals.items():
            opposite = other._literals.get(signal)
            if opposite is not None and opposite != value:
                count += 1
        return count

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Cube):
            return NotImplemented
        return self._literals == other._literals

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._literals.items()))
        return self._hash

    def __repr__(self) -> str:
        if not self._literals:
            return "Cube(1)"
        body = " ".join(
            s if v else f"{s}'" for s, v in sorted(self._literals.items())
        )
        return f"Cube({body})"
