"""The compiled cube/cover IR: mask-value big-int product terms.

Every layer of the library ultimately asks the same two questions --
*does this cube cover this code* and *how do two cubes relate* -- and
answers them thousands of times inside the synthesis loops.  This module
is the single compiled representation those answers bottom out in:

* a :class:`SignalSpace` interns an *ordered* universe of signal names
  (one per state graph / netlist) and packs complete codes into single
  big ints, bit ``i`` holding the value of ``signals[i]``;
* a :class:`CompiledCube` is a product term as a ``(mask, value)`` pair
  against one space -- it covers a packed code ``p`` iff
  ``p & mask == value``, one AND plus one compare regardless of the
  literal count;
* a :class:`CompiledCover` is an ordered sum of compiled cubes (the
  two-level SOP form the paper's excitation functions take).

Cube algebra becomes word-parallel bit arithmetic:

===============  ====================================================
operation        big-int form
===============  ====================================================
containment      ``self.mask & other.mask == self.mask`` and
                 ``other.value & self.mask == self.value``
intersection     disjoint iff ``(va ^ vb) & ma & mb`` is non-zero,
                 else ``(ma | mb, va | vb)``
supercube        keep ``ma & mb & ~(va ^ vb)``
distance         popcount of ``ma & mb & (va ^ vb)``
===============  ====================================================

The literal-dict classes (:class:`repro.boolean.cube.Cube`,
:class:`repro.boolean.cover.Cover`) remain the construction-time API and
compile into this IR on first use; ``to_cube()`` / ``to_cover()`` are
the thin views back.  The state-graph bitmask engine
(:mod:`repro.sg.bitengine`), the netlist evaluators
(:mod:`repro.netlist.gates`) and the persistent-store codecs
(:mod:`repro.pipeline.serialize`) all consume this module directly
instead of keeping private packed encodings.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple


def popcount(word: int) -> int:
    """Number of set bits (3.9-compatible; ``int.bit_count`` is 3.10+)."""
    return bin(word).count("1")


class SignalSpace:
    """An interned, ordered universe of Boolean signal names.

    Spaces are interned on their signal tuple: ``SignalSpace.of(order)``
    returns the *same* object for the same ordering, so compiled cubes
    memoised per space never duplicate work across the analyses of one
    graph, and identity comparison (``a.space is b.space``) is the
    compatibility check for packed operations.

    Construct via :meth:`of`; the constructor itself is not interned.
    """

    __slots__ = ("signals", "position", "width", "full_mask")

    #: interning table: signal tuple -> space (one per distinct ordering;
    #: orderings are per-graph/netlist, so this stays small)
    _interned: Dict[Tuple[str, ...], "SignalSpace"] = {}

    def __init__(self, signals: Sequence[str]):
        ordered = tuple(signals)
        if len(set(ordered)) != len(ordered):
            raise ValueError("signal names must be unique")
        self.signals: Tuple[str, ...] = ordered
        self.position: Dict[str, int] = {s: i for i, s in enumerate(ordered)}
        self.width: int = len(ordered)
        self.full_mask: int = (1 << len(ordered)) - 1

    @classmethod
    def of(cls, signals: Sequence[str]) -> "SignalSpace":
        """The interned space for an ordering (one object per tuple)."""
        key = tuple(signals)
        space = cls._interned.get(key)
        if space is None:
            space = cls._interned[key] = cls(key)
        return space

    # ------------------------------------------------------------------
    # Packing
    # ------------------------------------------------------------------
    def pack(self, code: Mapping[str, int]) -> int:
        """A complete ``signal -> value`` code as one packed int."""
        word = 0
        for position, signal in enumerate(self.signals):
            if code[signal]:
                word |= 1 << position
        return word

    def pack_vector(self, vector: Sequence[int]) -> int:
        """A 0/1 vector ordered as ``self.signals`` as one packed int."""
        word = 0
        for position, value in enumerate(vector):
            if value:
                word |= 1 << position
        return word

    def unpack(self, word: int) -> Dict[str, int]:
        """The packed code back as a ``signal -> value`` dict."""
        return {
            signal: (word >> position) & 1
            for position, signal in enumerate(self.signals)
        }

    def unpack_vector(self, word: int) -> Tuple[int, ...]:
        """The packed code as a 0/1 tuple ordered as ``self.signals``."""
        return tuple((word >> position) & 1 for position in range(self.width))

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def index(self, signal: str) -> int:
        return self.position[signal]

    def __len__(self) -> int:
        return self.width

    def __contains__(self, signal: str) -> bool:
        return signal in self.position

    def __repr__(self) -> str:
        return f"SignalSpace({', '.join(self.signals)})"


class CompiledCube:
    """A product term compiled against one :class:`SignalSpace`.

    ``mask`` has a 1-bit for every constrained signal position; ``value``
    holds the required values on exactly those bits (``value & ~mask``
    must be 0).  The universal cube is ``(0, 0)``.
    """

    __slots__ = ("space", "mask", "value")

    def __init__(self, space: SignalSpace, mask: int, value: int):
        if mask & ~space.full_mask:
            raise ValueError("mask constrains positions outside the space")
        if value & ~mask:
            raise ValueError("value sets bits outside the mask")
        self.space = space
        self.mask = mask
        self.value = value

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_literals(
        cls, space: SignalSpace, literals: Iterable[Tuple[str, int]]
    ) -> "CompiledCube":
        position_of = space.position
        mask = 0
        value = 0
        for signal, bit_value in literals:
            bit = 1 << position_of[signal]
            mask |= bit
            if bit_value:
                value |= bit
        return cls(space, mask, value)

    @classmethod
    def universal(cls, space: SignalSpace) -> "CompiledCube":
        return cls(space, 0, 0)

    @classmethod
    def minterm(cls, space: SignalSpace, packed_code: int) -> "CompiledCube":
        """The full-width cube fixing every signal to the packed code."""
        return cls(space, space.full_mask, packed_code & space.full_mask)

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    def covers_packed(self, packed_code: int) -> bool:
        """O(words) covering test: one AND plus one compare."""
        return packed_code & self.mask == self.value

    def covers(self, code: Mapping[str, int]) -> bool:
        return self.space.pack(code) & self.mask == self.value

    # ------------------------------------------------------------------
    # Algebra (word-parallel; operands must share the space)
    # ------------------------------------------------------------------
    def _require_same_space(self, other: "CompiledCube") -> None:
        if self.space is not other.space:
            raise ValueError("compiled cubes live in different signal spaces")

    def contains(self, other: "CompiledCube") -> bool:
        """self ⊇ other: every literal of self appears in other."""
        self._require_same_space(other)
        mask = self.mask
        return other.mask & mask == mask and other.value & mask == self.value

    def intersect(self, other: "CompiledCube") -> Optional["CompiledCube"]:
        """The product cube, or ``None`` when the cubes are disjoint."""
        self._require_same_space(other)
        if (self.value ^ other.value) & self.mask & other.mask:
            return None
        return CompiledCube(
            self.space, self.mask | other.mask, self.value | other.value
        )

    def supercube(self, other: "CompiledCube") -> "CompiledCube":
        """The smallest cube containing both cubes."""
        self._require_same_space(other)
        kept = self.mask & other.mask & ~(self.value ^ other.value)
        return CompiledCube(self.space, kept, self.value & kept)

    def distance(self, other: "CompiledCube") -> int:
        """Number of positions with opposite literals."""
        self._require_same_space(other)
        return popcount(self.mask & other.mask & (self.value ^ other.value))

    def without_positions(self, drop_mask: int) -> "CompiledCube":
        """Raise the cube along every position set in ``drop_mask``."""
        kept = self.mask & ~drop_mask
        return CompiledCube(self.space, kept, self.value & kept)

    def cofactor(self, position: int, bit_value: int) -> Optional["CompiledCube"]:
        """The Shannon cofactor w.r.t. one position, ``None`` if it kills
        the cube (the cube requires the opposite value)."""
        bit = 1 << position
        if not self.mask & bit:
            return self
        if bool(self.value & bit) != bool(bit_value):
            return None
        return CompiledCube(self.space, self.mask ^ bit, self.value & ~bit)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def literals(self) -> Tuple[Tuple[str, int], ...]:
        """Literals in *space position order* (not alphabetical)."""
        return tuple(self.iter_literals())

    def iter_literals(self) -> Iterator[Tuple[str, int]]:
        signals = self.space.signals
        mask, value = self.mask, self.value
        while mask:
            low = mask & -mask
            position = low.bit_length() - 1
            yield signals[position], 1 if value & low else 0
            mask ^= low

    def literal_count(self) -> int:
        return popcount(self.mask)

    def to_cube(self):
        """The literal-dict view (:class:`repro.boolean.cube.Cube`)."""
        from repro.boolean.cube import Cube

        return Cube(dict(self.iter_literals()))

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return popcount(self.mask)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CompiledCube):
            return NotImplemented
        return (
            self.space is other.space
            and self.mask == other.mask
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return hash((id(self.space), self.mask, self.value))

    def __repr__(self) -> str:
        if not self.mask:
            return "CompiledCube(1)"
        body = " ".join(
            signal if value else f"{signal}'"
            for signal, value in self.iter_literals()
        )
        return f"CompiledCube({body})"


class CompiledCover:
    """An ordered sum of :class:`CompiledCube` over one space.

    Mirrors :class:`repro.boolean.cover.Cover`: construction drops exact
    duplicates while preserving first-occurrence order (cube order
    determines gate naming downstream, so it is part of the contract).
    """

    __slots__ = ("space", "cubes")

    def __init__(self, space: SignalSpace, cubes: Iterable[CompiledCube] = ()):
        seen: List[CompiledCube] = []
        keys = set()
        for cube in cubes:
            if cube.space is not space:
                raise ValueError("cover cube compiled against a foreign space")
            key = (cube.mask, cube.value)
            if key not in keys:
                keys.add(key)
                seen.append(cube)
        self.space = space
        self.cubes: Tuple[CompiledCube, ...] = tuple(seen)

    @classmethod
    def from_cover(cls, space: SignalSpace, cover) -> "CompiledCover":
        """Compile a literal-dict :class:`~repro.boolean.cover.Cover`."""
        return cls(space, (cube.compiled(space) for cube in cover))

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    def covers_packed(self, packed_code: int) -> bool:
        for cube in self.cubes:
            if packed_code & cube.mask == cube.value:
                return True
        return False

    def covers(self, code: Mapping[str, int]) -> bool:
        return self.covers_packed(self.space.pack(code))

    def covering_cubes(self, packed_code: int) -> List[CompiledCube]:
        return [c for c in self.cubes if packed_code & c.mask == c.value]

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def union(self, other: "CompiledCover") -> "CompiledCover":
        if self.space is not other.space:
            raise ValueError("compiled covers live in different signal spaces")
        return CompiledCover(self.space, self.cubes + other.cubes)

    def with_cube(self, cube: CompiledCube) -> "CompiledCover":
        return CompiledCover(self.space, self.cubes + (cube,))

    def contains_cube(self, cube: CompiledCube) -> bool:
        """Syntactic single-cube containment (sufficient, not necessary)."""
        return any(existing.contains(cube) for existing in self.cubes)

    def irredundant(self) -> "CompiledCover":
        """Drop cubes single-cube-contained in another cube of the cover."""
        kept: List[CompiledCube] = []
        cubes = self.cubes
        for i, cube in enumerate(cubes):
            if not any(
                other.contains(cube) for j, other in enumerate(cubes) if j != i
            ):
                kept.append(cube)
        return CompiledCover(self.space, kept)

    # ------------------------------------------------------------------
    # Lane import / export (word-parallel frontier matching)
    # ------------------------------------------------------------------
    def to_lanes(self, kernel=None) -> Tuple[object, object]:
        """Export the cover as paired ``(masks, values)`` lane matrices.

        Row ``i`` of each matrix is cube ``i``'s packed word against the
        kernel of :mod:`repro.sg.lanes` (numpy ``uint64`` lanes or the
        pure-python fallback); together they drive whole-frontier
        covering tests via :meth:`covered_rows` and round-trip through
        :meth:`from_lanes` without touching literal dicts.
        """
        if kernel is None:
            from repro.sg.lanes import get_kernel

            kernel = get_kernel()
        width = self.space.width
        masks = kernel.pack_code_matrix([c.mask for c in self.cubes], width)
        values = kernel.pack_code_matrix([c.value for c in self.cubes], width)
        return masks, values

    @classmethod
    def from_lanes(
        cls, space: SignalSpace, masks, values, kernel=None
    ) -> "CompiledCover":
        """Rebuild a cover from :meth:`to_lanes` matrices (row order kept)."""
        if kernel is None:
            from repro.sg.lanes import get_kernel

            kernel = get_kernel()
        return cls(
            space,
            (
                CompiledCube(space, mask, value)
                for mask, value in zip(kernel.row_ints(masks), kernel.row_ints(values))
            ),
        )

    def covered_rows(self, code_rows, nrows: int, kernel=None) -> int:
        """Bitset of frontier rows covered by *any* cube of the cover.

        ``code_rows`` is a lane matrix of packed codes (one row per
        frontier item, from ``kernel.pack_code_matrix``); the result has
        bit ``i`` set iff row ``i`` satisfies some cube's
        ``code & mask == value`` -- one lane comparison per cube instead
        of one python loop per (row, cube) pair.
        """
        if kernel is None:
            from repro.sg.lanes import get_kernel

            kernel = get_kernel()
        bits = 0
        for cube in self.cubes:
            bits |= kernel.match_rows(code_rows, cube.mask, cube.value, nrows)
        return bits

    # ------------------------------------------------------------------
    # Views & plumbing
    # ------------------------------------------------------------------
    def literal_count(self) -> int:
        return sum(popcount(cube.mask) for cube in self.cubes)

    def to_cover(self):
        """The literal-dict view (:class:`repro.boolean.cover.Cover`)."""
        from repro.boolean.cover import Cover

        return Cover(cube.to_cube() for cube in self.cubes)

    def is_empty(self) -> bool:
        return not self.cubes

    def __len__(self) -> int:
        return len(self.cubes)

    def __iter__(self) -> Iterator[CompiledCube]:
        return iter(self.cubes)

    def __bool__(self) -> bool:
        return bool(self.cubes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CompiledCover):
            return NotImplemented
        return self.space is other.space and set(
            (c.mask, c.value) for c in self.cubes
        ) == set((c.mask, c.value) for c in other.cubes)

    def __hash__(self) -> int:
        return hash(
            (id(self.space), frozenset((c.mask, c.value) for c in self.cubes))
        )

    def __repr__(self) -> str:
        if not self.cubes:
            return "CompiledCover(0)"
        return (
            "CompiledCover("
            + " + ".join(repr(c)[13:-1] or "1" for c in self.cubes)
            + ")"
        )


__all__ = ["CompiledCover", "CompiledCube", "SignalSpace", "popcount"]
