"""Reduced ordered binary decision diagrams (ROBDDs).

A compact canonical representation of Boolean functions over named
signals, used as an independent semantic oracle for the cube/cover
algebra (equivalence, tautology, containment checks in the tests) and
available to users for function-level reasoning about excitation
functions.

The manager hash-conses nodes, memoises ``apply``, and fixes the
variable order at construction (signal order = BDD order).  Functions
are referenced by integer node ids; 0 and 1 are the terminals.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.boolean.cover import Cover
from repro.boolean.cube import Cube


class BDD:
    """A ROBDD manager over a fixed signal order."""

    ZERO = 0
    ONE = 1

    def __init__(self, signals: Sequence[str]):
        self.signals: Tuple[str, ...] = tuple(signals)
        if len(set(self.signals)) != len(self.signals):
            raise ValueError("duplicate signals in BDD order")
        self._level: Dict[str, int] = {s: i for i, s in enumerate(self.signals)}
        # node id -> (level, low, high); terminals are pseudo-nodes
        self._nodes: List[Tuple[int, int, int]] = [
            (len(self.signals), 0, 0),  # 0 terminal
            (len(self.signals), 1, 1),  # 1 terminal
        ]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._apply_cache: Dict[Tuple[str, int, int], int] = {}

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------
    def _make(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        existing = self._unique.get(key)
        if existing is not None:
            return existing
        node = len(self._nodes)
        self._nodes.append(key)
        self._unique[key] = node
        return node

    def var(self, signal: str) -> int:
        """The function ``signal == 1``."""
        return self._make(self._level[signal], self.ZERO, self.ONE)

    def nvar(self, signal: str) -> int:
        return self._make(self._level[signal], self.ONE, self.ZERO)

    def constant(self, value: bool) -> int:
        return self.ONE if value else self.ZERO

    # ------------------------------------------------------------------
    # Boolean operations
    # ------------------------------------------------------------------
    def _cofactors(self, node: int, level: int) -> Tuple[int, int]:
        node_level, low, high = self._nodes[node]
        if node_level == level:
            return low, high
        return node, node

    def apply(self, op: str, left: int, right: int) -> int:
        """Binary apply for op in {'and', 'or', 'xor'}."""
        terminal = {
            "and": lambda a, b: a & b,
            "or": lambda a, b: a | b,
            "xor": lambda a, b: a ^ b,
        }[op]
        key = (op, left, right)
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached
        if left <= 1 and right <= 1:
            result = terminal(left, right)
        else:
            # short circuits
            if op == "and" and (left == 0 or right == 0):
                result = 0
            elif op == "and" and left == 1:
                result = right
            elif op == "and" and right == 1:
                result = left
            elif op == "or" and (left == 1 or right == 1):
                result = 1
            elif op == "or" and left == 0:
                result = right
            elif op == "or" and right == 0:
                result = left
            else:
                level = min(self._nodes[left][0], self._nodes[right][0])
                l0, l1 = self._cofactors(left, level)
                r0, r1 = self._cofactors(right, level)
                result = self._make(
                    level, self.apply(op, l0, r0), self.apply(op, l1, r1)
                )
        self._apply_cache[key] = result
        return result

    def conj(self, left: int, right: int) -> int:
        return self.apply("and", left, right)

    def disj(self, left: int, right: int) -> int:
        return self.apply("or", left, right)

    def xor(self, left: int, right: int) -> int:
        return self.apply("xor", left, right)

    def negate(self, node: int) -> int:
        return self.xor(node, self.ONE)

    def implies(self, left: int, right: int) -> bool:
        return self.conj(left, self.negate(right)) == self.ZERO

    def restrict(self, node: int, signal: str, value: int) -> int:
        """Cofactor with respect to ``signal = value``."""
        target_level = self._level[signal]
        memo: Dict[int, int] = {}

        def walk(current: int) -> int:
            if current <= 1:
                return current
            cached = memo.get(current)
            if cached is not None:
                return cached
            level, low, high = self._nodes[current]
            if level == target_level:
                result = high if value else low
            elif level > target_level:
                result = current
            else:
                result = self._make(level, walk(low), walk(high))
            memo[current] = result
            return result

        return walk(node)

    # ------------------------------------------------------------------
    # Conversions and queries
    # ------------------------------------------------------------------
    def from_cube(self, cube: Cube) -> int:
        node = self.ONE
        for signal, value in sorted(
            cube.literals, key=lambda lit: -self._level[lit[0]]
        ):
            literal = self.var(signal) if value else self.nvar(signal)
            node = self.conj(node, literal)
        return node

    def from_cover(self, cover: Cover) -> int:
        node = self.ZERO
        for cube in cover:
            node = self.disj(node, self.from_cube(cube))
        return node

    def evaluate(self, node: int, point: Mapping[str, int]) -> bool:
        while node > 1:
            level, low, high = self._nodes[node]
            node = high if point[self.signals[level]] else low
        return node == self.ONE

    def is_tautology(self, node: int) -> bool:
        return node == self.ONE

    def equivalent(self, left: int, right: int) -> bool:
        return left == right  # canonical form

    def satisfy_count(self, node: int) -> int:
        """Number of satisfying assignments over the full signal set."""
        memo: Dict[int, int] = {}

        def walk(current: int) -> int:
            # count over the variables at levels >= level(current)
            if current == self.ZERO:
                return 0
            if current == self.ONE:
                return 1
            cached = memo.get(current)
            if cached is not None:
                return cached
            level, low, high = self._nodes[current]
            low_level = self._nodes[low][0]
            high_level = self._nodes[high][0]
            total = walk(low) * (1 << (low_level - level - 1)) + walk(high) * (
                1 << (high_level - level - 1)
            )
            memo[current] = total
            return total

        return walk(node) * (1 << self._nodes[node][0])

    def one_sat(self, node: int) -> Optional[Dict[str, int]]:
        """A satisfying assignment (partial signals defaulted to 0)."""
        if node == self.ZERO:
            return None
        point = {s: 0 for s in self.signals}
        while node > 1:
            level, low, high = self._nodes[node]
            if low != self.ZERO:
                point[self.signals[level]] = 0
                node = low
            else:
                point[self.signals[level]] = 1
                node = high
        return point

    def node_count(self, node: int) -> int:
        seen = set()
        stack = [node]
        while stack:
            current = stack.pop()
            if current <= 1 or current in seen:
                continue
            seen.add(current)
            _, low, high = self._nodes[current]
            stack += [low, high]
        return len(seen)
