"""Covers: sums of cubes (two-level SOP forms).

A :class:`Cover` is an ordered collection of :class:`~repro.boolean.cube.Cube`
objects interpreted as their disjunction.  The paper's excitation functions
``Sa`` / ``Ra`` are covers whose cubes are monotonous covers of excitation
regions (Theorem 3); Section VI allows a cube to be shared between several
regions (Theorem 5), which makes the cover the natural unit for the
synthesised logic.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.boolean.compiled import CompiledCover, SignalSpace
from repro.boolean.cube import Cube


class Cover:
    """An immutable sum (disjunction) of cubes."""

    __slots__ = ("_cubes", "_compiled")

    def __init__(self, cubes: Iterable[Cube] = ()):
        seen = []
        for cube in cubes:
            if not isinstance(cube, Cube):
                raise TypeError(f"expected Cube, got {type(cube).__name__}")
            if cube not in seen:
                seen.append(cube)
        self._cubes: Tuple[Cube, ...] = tuple(seen)
        #: interned SignalSpace -> CompiledCover (memoised per space)
        self._compiled: Optional[Dict[SignalSpace, CompiledCover]] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def cubes(self) -> Tuple[Cube, ...]:
        return self._cubes

    @property
    def signals(self) -> frozenset:
        """All signals appearing in some cube of the cover."""
        result = set()
        for cube in self._cubes:
            result |= cube.signals
        return frozenset(result)

    def __len__(self) -> int:
        return len(self._cubes)

    def __iter__(self) -> Iterator[Cube]:
        return iter(self._cubes)

    def __bool__(self) -> bool:
        return bool(self._cubes)

    def is_empty(self) -> bool:
        """True for the constant-0 cover (no cubes)."""
        return not self._cubes

    def literal_count(self) -> int:
        """Total number of literals; the paper's area proxy for SOP logic."""
        return sum(len(cube) for cube in self._cubes)

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    def covers(self, code: Mapping[str, int]) -> bool:
        """True if some cube of the cover evaluates to 1 on ``code``."""
        return any(cube.covers(code) for cube in self._cubes)

    def covering_cubes(self, code: Mapping[str, int]) -> List[Cube]:
        """All cubes that cover ``code`` (used for 'one gate on' checks)."""
        return [cube for cube in self._cubes if cube.covers(code)]

    def compiled(self, space: SignalSpace) -> CompiledCover:
        """The cover in the shared mask-value IR, memoised per space."""
        cache = self._compiled
        if cache is None:
            cache = self._compiled = {}
        cached = cache.get(space)
        if cached is None:
            cached = cache[space] = CompiledCover.from_cover(space, self)
        return cached

    def covers_packed(self, packed_code: int, signal_order: Sequence[str]) -> bool:
        """O(cubes) covering test against a packed state code."""
        return self.compiled(SignalSpace.of(signal_order)).covers_packed(
            packed_code
        )

    def evaluator(self, signal_order: Sequence[str]):
        """Compile against a signal ordering; see :meth:`Cube.evaluator`."""
        evaluators = [cube.evaluator(signal_order) for cube in self._cubes]

        def evaluate(vector: Sequence[int]) -> bool:
            return any(e(vector) for e in evaluators)

        return evaluate

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def union(self, other: "Cover") -> "Cover":
        return Cover(self._cubes + other._cubes)

    def with_cube(self, cube: Cube) -> "Cover":
        return Cover(self._cubes + (cube,))

    def contains_cube(self, cube: Cube) -> bool:
        """Single-cube containment check against each cover cube.

        This is a sufficient (not necessary) syntactic test: True when one
        cube of the cover contains ``cube`` outright.
        """
        return any(existing.contains(cube) for existing in self._cubes)

    def irredundant(self, keep: Optional[Iterable[Cube]] = None) -> "Cover":
        """Drop cubes single-cube-contained in another cube of the cover.

        ``keep`` lists cubes that must not be dropped even if contained.
        """
        protected = set(keep or ())
        kept: List[Cube] = []
        for i, cube in enumerate(self._cubes):
            if cube in protected:
                kept.append(cube)
                continue
            others = [c for j, c in enumerate(self._cubes) if j != i]
            if not any(other.contains(cube) for other in others):
                kept.append(cube)
        return Cover(kept)

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Cover):
            return NotImplemented
        return set(self._cubes) == set(other._cubes)

    def __hash__(self) -> int:
        return hash(frozenset(self._cubes))

    def __repr__(self) -> str:
        if not self._cubes:
            return "Cover(0)"
        return "Cover(" + " + ".join(repr(c)[5:-1] or "1" for c in self._cubes) + ")"
