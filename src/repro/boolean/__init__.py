"""Boolean cube and cover algebra.

This subpackage is the Boolean substrate of the library.  It provides:

* :class:`~repro.boolean.cube.Cube` -- a product term (conjunction of
  literals) over *named* signals,
* :class:`~repro.boolean.cover.Cover` -- a sum of cubes (SOP form),
* :mod:`~repro.boolean.minimize` -- exact two-level minimisation
  (Quine--McCluskey prime generation plus branch-and-bound covering),
* :mod:`~repro.boolean.compiled` -- the shared mask-value IR
  (:class:`SignalSpace`, :class:`CompiledCube`, :class:`CompiledCover`)
  that every hot path compiles into,
* :mod:`~repro.boolean.sop` -- rendering of SOP equations in the style the
  paper uses (``Sc = bd + x a b'``).

The synthesis core (:mod:`repro.core`) expresses every excitation function
as a :class:`Cover` whose cubes are monotonous covers of excitation regions.
"""

from repro.boolean.bdd import BDD
from repro.boolean.compiled import CompiledCover, CompiledCube, SignalSpace
from repro.boolean.cube import Cube
from repro.boolean.cover import Cover
from repro.boolean.minimize import minimize_onset
from repro.boolean.sop import format_cube, format_cover, format_equation

__all__ = [
    "BDD",
    "CompiledCover",
    "CompiledCube",
    "Cube",
    "Cover",
    "SignalSpace",
    "minimize_onset",
    "format_cube",
    "format_cover",
    "format_equation",
]
