"""Exact two-level minimisation of incompletely specified functions.

The synthesis flow uses this for the Section-VI optimisation: once the set
of candidate (generalised) monotonous-cover cubes is known, picking the
smallest subset that covers every excitation region exactly once is a
covering problem.  The machinery here is a classic Quine--McCluskey prime
generator plus a branch-and-bound unate-covering solver, over functions
given as explicit on/off/dc sets of state codes.

Functions are specified over *named* signals (consistent with the rest of
the library); internally minterms are bit vectors over a fixed ordering.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.boolean.cube import Cube
from repro.boolean.cover import Cover

# An implicant is a pair (mask, value): ``mask`` has a 1-bit for every
# *don't-care* position, ``value`` holds the fixed bits (0 where masked).
_Implicant = Tuple[int, int]


def _code_to_int(code: Mapping[str, int], signals: Sequence[str]) -> int:
    word = 0
    for i, signal in enumerate(signals):
        if code[signal]:
            word |= 1 << i
    return word


def _implicant_to_cube(implicant: _Implicant, signals: Sequence[str]) -> Cube:
    mask, value = implicant
    literals = {}
    for i, signal in enumerate(signals):
        bit = 1 << i
        if not mask & bit:
            literals[signal] = 1 if value & bit else 0
    return Cube(literals)


def _implicant_covers(implicant: _Implicant, minterm: int) -> bool:
    mask, value = implicant
    return (minterm | mask) == (value | mask)


def generate_primes(
    on_minterms: Set[int], dc_minterms: Set[int], width: int
) -> List[_Implicant]:
    """All prime implicants of the function (Quine--McCluskey).

    ``on_minterms``/``dc_minterms`` are disjoint sets of integer minterms
    over ``width`` variables.  Returns implicants as (mask, value) pairs.
    """
    current: Set[_Implicant] = {(0, m) for m in on_minterms | dc_minterms}
    primes: Set[_Implicant] = set()
    while current:
        merged_from: Set[_Implicant] = set()
        next_level: Set[_Implicant] = set()
        grouped: Dict[int, List[_Implicant]] = {}
        for implicant in current:
            grouped.setdefault(implicant[0], []).append(implicant)
        for mask, implicants in grouped.items():
            by_value = set(v for _, v in implicants)
            for value in by_value:
                for bit_index in range(width):
                    bit = 1 << bit_index
                    if mask & bit:
                        continue
                    partner = value ^ bit
                    if partner in by_value and value & bit == 0:
                        next_level.add((mask | bit, value))
                        merged_from.add((mask, value))
                        merged_from.add((mask, partner))
        primes |= current - merged_from
        current = next_level
    # Primes consisting purely of don't-cares are useless for covering but
    # harmless; filter those covering no on-set minterm.
    return [p for p in primes if any(_implicant_covers(p, m) for m in on_minterms)]


def solve_covering(
    rows: Sequence[FrozenSet[int]],
    universe: Set[int],
    cost: Optional[Sequence[int]] = None,
) -> List[int]:
    """Minimum-cost set cover by branch and bound.

    ``rows[i]`` is the subset of ``universe`` covered by candidate ``i``;
    ``cost[i]`` its cost (default 1 each).  Returns indices of a
    minimum-cost cover.  Raises ``ValueError`` if the universe cannot be
    covered.
    """
    if cost is None:
        cost = [1] * len(rows)
    reachable = set()
    for row in rows:
        reachable |= row
    if not universe <= reachable:
        missing = universe - reachable
        raise ValueError(f"universe elements not coverable: {sorted(missing)[:5]}")

    best_choice: List[int] = list(range(len(rows)))
    best_cost = sum(cost) + 1

    def essential_and_reduce(
        remaining: Set[int], available: List[int]
    ) -> Tuple[List[int], Set[int], List[int]]:
        """Pick essential candidates and drop dominated ones."""
        chosen: List[int] = []
        remaining = set(remaining)
        available = list(available)
        changed = True
        while changed and remaining:
            changed = False
            for element in list(remaining):
                covering = [i for i in available if element in rows[i]]
                if len(covering) == 1:
                    index = covering[0]
                    chosen.append(index)
                    remaining -= rows[index]
                    available.remove(index)
                    changed = True
                    break
        return chosen, remaining, available

    def branch(remaining: Set[int], available: List[int], spent: int, picked: List[int]):
        nonlocal best_choice, best_cost
        chosen, remaining, available = essential_and_reduce(remaining, available)
        spent += sum(cost[i] for i in chosen)
        picked = picked + chosen
        if spent >= best_cost:
            return
        if not remaining:
            best_choice = picked
            best_cost = spent
            return
        # Branch on the element covered by the fewest candidates.
        element = min(
            remaining, key=lambda e: sum(1 for i in available if e in rows[i])
        )
        covering = sorted(
            (i for i in available if element in rows[i]),
            key=lambda i: (cost[i] / max(1, len(rows[i] & remaining))),
        )
        if not covering:
            return
        for index in covering:
            rest = [i for i in available if i != index]
            branch(remaining - rows[index], rest, spent + cost[index], picked + [index])

    branch(set(universe), list(range(len(rows))), 0, [])
    if best_cost > sum(cost):
        raise ValueError("covering search failed")  # pragma: no cover - guarded above
    return sorted(best_choice)


def minimize_onset(
    signals: Sequence[str],
    on_codes: Iterable[Mapping[str, int]],
    dc_codes: Iterable[Mapping[str, int]] = (),
) -> Cover:
    """Exact minimum-cube SOP for an incompletely specified function.

    Parameters
    ----------
    signals:
        Ordered signal names; every code must assign each of them.
    on_codes / dc_codes:
        State codes where the function must be 1 / may be either.

    Returns the minimum-cardinality prime cover as a :class:`Cover`.
    """
    width = len(signals)
    on = {_code_to_int(code, signals) for code in on_codes}
    dc = {_code_to_int(code, signals) for code in dc_codes} - on
    if not on:
        return Cover()
    primes = generate_primes(on, dc, width)
    rows = [frozenset(m for m in on if _implicant_covers(p, m)) for p in primes]
    chosen = solve_covering(rows, set(on))
    return Cover(_implicant_to_cube(primes[i], signals) for i in chosen)
