"""Exact two-level minimisation of incompletely specified functions.

The synthesis flow uses this for the Section-VI optimisation: once the set
of candidate (generalised) monotonous-cover cubes is known, picking the
smallest subset that covers every excitation region exactly once is a
covering problem.  The machinery here is a classic Quine--McCluskey prime
generator plus a branch-and-bound unate-covering solver, over functions
given as explicit on/off/dc sets of state codes.

Functions are specified over *named* signals (consistent with the rest of
the library); internally everything runs on the shared compiled IR
(:mod:`repro.boolean.compiled`): minterms are packed ints against an
interned :class:`~repro.boolean.compiled.SignalSpace` and implicants are
:class:`~repro.boolean.compiled.CompiledCube` mask-value pairs, so the
cover test is one AND plus one compare and the QM merge is pure bit
arithmetic.  The historical ``(dc_mask, value)`` tuple form of
:func:`generate_primes` is kept as a thin compatibility view.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.boolean.compiled import CompiledCube, SignalSpace, popcount
from repro.boolean.cover import Cover

# The legacy implicant view: ``mask`` has a 1-bit for every *don't-care*
# position (the complement of the IR's cared-bit mask), ``value`` holds
# the fixed bits (0 where masked).
_Implicant = Tuple[int, int]


def generate_prime_cubes(
    space: SignalSpace, on_minterms: Set[int], dc_minterms: Set[int]
) -> List[CompiledCube]:
    """All prime implicants of the function (Quine--McCluskey).

    ``on_minterms``/``dc_minterms`` are disjoint sets of packed minterms
    against ``space``.  Implicants are manipulated directly in the IR's
    ``(mask, value)`` convention (mask = cared positions): two implicants
    with the same mask merge when their values differ in exactly one
    cared bit, clearing that bit from both words.  Primes that cover no
    on-set minterm (pure don't-care primes) are dropped.  The result is
    canonically ordered by (literal count, mask, value).
    """
    full = space.full_mask
    current: Set[Tuple[int, int]] = {
        (full, m) for m in on_minterms | dc_minterms
    }
    primes: Set[Tuple[int, int]] = set()
    while current:
        merged_from: Set[Tuple[int, int]] = set()
        next_level: Set[Tuple[int, int]] = set()
        grouped: dict = {}
        for implicant in current:
            grouped.setdefault(implicant[0], []).append(implicant)
        for mask, implicants in grouped.items():
            by_value = set(v for _, v in implicants)
            probe = mask
            while probe:
                bit = probe & -probe
                probe ^= bit
                for value in by_value:
                    if value & bit:
                        continue  # canonical side: merge from the 0-value
                    if value ^ bit in by_value:
                        next_level.add((mask ^ bit, value))
                        merged_from.add((mask, value))
                        merged_from.add((mask, value ^ bit))
        primes |= current - merged_from
        current = next_level
    kept = [
        (mask, value)
        for mask, value in primes
        if any(m & mask == value for m in on_minterms)
    ]
    kept.sort(key=lambda pair: (popcount(pair[0]), pair[0], pair[1]))
    return [CompiledCube(space, mask, value) for mask, value in kept]


def generate_primes(
    on_minterms: Set[int], dc_minterms: Set[int], width: int
) -> List[_Implicant]:
    """Compatibility view of :func:`generate_prime_cubes`.

    Returns the historical ``(dc_mask, value)`` tuples: ``dc_mask`` has a
    1-bit for every *don't-care* position.
    """
    space = SignalSpace.of(tuple(f"_b{i}" for i in range(width)))
    return [
        (space.full_mask & ~cube.mask, cube.value)
        for cube in generate_prime_cubes(space, on_minterms, dc_minterms)
    ]


def solve_covering(
    rows: Sequence[FrozenSet[int]],
    universe: Set[int],
    cost: Optional[Sequence[int]] = None,
) -> List[int]:
    """Minimum-cost set cover by branch and bound.

    ``rows[i]`` is the subset of ``universe`` covered by candidate ``i``;
    ``cost[i]`` its cost (default 1 each).  Returns indices of a
    minimum-cost cover.  Raises ``ValueError`` if the universe cannot be
    covered.
    """
    if cost is None:
        cost = [1] * len(rows)
    reachable = set()
    for row in rows:
        reachable |= row
    if not universe <= reachable:
        missing = universe - reachable
        raise ValueError(f"universe elements not coverable: {sorted(missing)[:5]}")

    best_choice: List[int] = list(range(len(rows)))
    best_cost = sum(cost) + 1

    def essential_and_reduce(
        remaining: Set[int], available: List[int]
    ) -> Tuple[List[int], Set[int], List[int]]:
        """Pick essential candidates and drop dominated ones."""
        chosen: List[int] = []
        remaining = set(remaining)
        available = list(available)
        changed = True
        while changed and remaining:
            changed = False
            for element in list(remaining):
                covering = [i for i in available if element in rows[i]]
                if len(covering) == 1:
                    index = covering[0]
                    chosen.append(index)
                    remaining -= rows[index]
                    available.remove(index)
                    changed = True
                    break
        return chosen, remaining, available

    def branch(remaining: Set[int], available: List[int], spent: int, picked: List[int]):
        nonlocal best_choice, best_cost
        chosen, remaining, available = essential_and_reduce(remaining, available)
        spent += sum(cost[i] for i in chosen)
        picked = picked + chosen
        if spent >= best_cost:
            return
        if not remaining:
            best_choice = picked
            best_cost = spent
            return
        # Branch on the element covered by the fewest candidates.
        element = min(
            remaining, key=lambda e: sum(1 for i in available if e in rows[i])
        )
        covering = sorted(
            (i for i in available if element in rows[i]),
            key=lambda i: (cost[i] / max(1, len(rows[i] & remaining))),
        )
        if not covering:
            return
        for index in covering:
            rest = [i for i in available if i != index]
            branch(remaining - rows[index], rest, spent + cost[index], picked + [index])

    branch(set(universe), list(range(len(rows))), 0, [])
    if best_cost > sum(cost):
        raise ValueError("covering search failed")  # pragma: no cover - guarded above
    return sorted(best_choice)


def minimize_onset(
    signals: Sequence[str],
    on_codes: Iterable[Mapping[str, int]],
    dc_codes: Iterable[Mapping[str, int]] = (),
) -> Cover:
    """Exact minimum-cube SOP for an incompletely specified function.

    Parameters
    ----------
    signals:
        Ordered signal names; every code must assign each of them.
    on_codes / dc_codes:
        State codes where the function must be 1 / may be either.

    Returns the minimum-cardinality prime cover as a :class:`Cover`
    (literal-dict view of the compiled primes the solver picked).
    """
    space = SignalSpace.of(tuple(signals))
    on = {space.pack(code) for code in on_codes}
    dc = {space.pack(code) for code in dc_codes} - on
    if not on:
        return Cover()
    primes = generate_prime_cubes(space, on, dc)
    rows = [frozenset(m for m in on if p.covers_packed(m)) for p in primes]
    chosen = solve_covering(rows, set(on))
    return Cover(primes[i].to_cube() for i in chosen)
