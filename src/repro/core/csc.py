"""CSC-only state-signal insertion (the complex-gate prerequisite).

Complete State Coding is all a complex-gate implementation needs (Chu
[3]); the Monotonous Cover requirement is strictly stronger (Theorem 4).
This module repairs *only* CSC, using the same 4-valued labelling and
expansion machinery as the MC engine, so the two repair costs can be
compared design by design -- the measurable "price of basic gates":

    CSC signals  <=  MC signals          (Theorem 4, in insertion form)

The search treats each CSC conflict pair as a separation constraint
(the two states must carry opposite stable values of the new signal)
and accepts a candidate when the conflict count strictly drops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.assignment import LabelEncoding
from repro.core.insertion import (
    InsertionError,
    InsertionRound,
    _fresh_signal_name,
    _new_input_conflicts,
    expand_with_signal,
    labelling_from_partition,
)
from repro.sg.csc import csc_conflicts, has_csc
from repro.sg.graph import State, StateGraph


@dataclass
class CSCInsertionResult:
    """Outcome of :func:`insert_for_csc`."""

    sg: StateGraph
    rounds: List[InsertionRound] = field(default_factory=list)

    @property
    def added_signals(self) -> List[str]:
        return [r.signal for r in self.rounds]

    @property
    def satisfied(self) -> bool:
        return has_csc(self.sg)


def _csc_candidates(sg: StateGraph, conflicts, per_set_budget: int = 30):
    """Labellings separating as many conflict pairs as possible.

    Constraint ladder: all pairs, then each single pair; partitions with
    few boundary crossings come from a dedicated pass pinning one pair.
    """
    # partition-derived candidates for the first conflict pair
    from repro.sat.cnf import CNF
    from repro.sat.solver import Solver

    states = sorted(sg.states, key=str)
    for first, second in conflicts[:3]:
        for bound in (2, 4):
            cnf = CNF()
            var = {s: cnf.var(("v", s)) for s in states}
            cnf.add(var[first])
            cnf.add(-var[second])
            boundary = []
            for source, _, target in sg.arcs():
                b = cnf.new_var()
                cnf.add(-b, var[source], var[target])
                cnf.add(-b, -var[source], -var[target])
                cnf.add(b, -var[source], var[target])
                cnf.add(b, var[source], -var[target])
                boundary.append(b)
            cnf.at_most_k(boundary, bound)
            solver = Solver.from_cnf(cnf)
            produced = 0
            while produced < per_set_budget:
                model = solver.solve()
                if model is None:
                    break
                produced += 1
                partition = {s: int(model[var[s]]) for s in states}
                # incremental blocking clause: the solver re-prepares its
                # watch state lazily, so the model sequence matches a
                # fresh Solver.from_cnf per query exactly
                solver.add_clause(
                    [-var[s] if partition[s] else var[s] for s in states]
                )
                labelling = labelling_from_partition(sg, partition)
                if labelling is not None:
                    yield labelling

    # full 4-valued search with pairwise distinctness constraints
    subsets = [conflicts] if len(conflicts) > 1 else []
    subsets += [[pair] for pair in conflicts]
    for subset in subsets:
        encoding = LabelEncoding(sg)
        for first, second in subset:
            encoding.require_distinct_values(first, second)
        produced = 0
        while produced < per_set_budget:
            labelling = encoding.solve()
            if labelling is None:
                break
            produced += 1
            yield labelling
            encoding.forbid_model(labelling)


def insert_for_csc(
    sg: StateGraph,
    max_signals: int = 6,
    max_models: int = 300,
    signal_prefix: str = "z",
) -> CSCInsertionResult:
    """Insert internal signals until Complete State Coding holds."""
    current = sg
    rounds: List[InsertionRound] = []
    for round_index in range(max_signals):
        conflicts = csc_conflicts(current)
        if not conflicts:
            return CSCInsertionResult(sg=current, rounds=rounds)
        signal = _fresh_signal_name(current, signal_prefix, round_index)
        best: Optional[Tuple[StateGraph, int, Dict[State, str]]] = None
        tried = 0
        for labelling in _csc_candidates(current, conflicts):
            tried += 1
            try:
                expanded = expand_with_signal(current, labelling, signal)
            except ValueError:
                continue
            if _new_input_conflicts(current, expanded):
                continue
            remaining = len(csc_conflicts(expanded))
            if remaining == 0:
                best = (expanded, 0, labelling)
                break
            if remaining < len(conflicts) and (
                best is None or remaining < best[1]
            ):
                best = (expanded, remaining, labelling)
            if tried >= max_models:
                break
        if best is None:
            raise InsertionError(
                f"no labelling reduced the {len(conflicts)} CSC conflicts "
                f"(tried {tried} candidates)"
            )
        expanded, remaining, labelling = best
        rounds.append(
            InsertionRound(
                signal=signal,
                labelling=labelling,
                failures_before=len(conflicts),
                failures_after=remaining,
                models_tried=tried,
            )
        )
        current = expanded
    if csc_conflicts(current):
        raise InsertionError(
            f"CSC still violated after {max_signals} inserted signals"
        )
    return CSCInsertionResult(sg=current, rounds=rounds)
