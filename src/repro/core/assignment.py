"""SAT encoding of the generalized state assignment (Section V / [11]).

A new internal signal ``x`` is described by a **4-valued labelling**
``lambda : S -> {0, 1, U, D}``: ``x`` is stably 0 / stably 1 / rising /
falling at that state.  The expansion algorithm
(:func:`repro.core.insertion.expand_with_signal`) turns a labelling into
a new state graph; this module encodes *which labellings are legal* as
CNF over one-hot label variables, so the SAT substrate can search them.

Legal label pairs along an original arc ``s -e-> t``:

======  ======================================  =========================
pair    lifting                                 condition
======  ======================================  =========================
0 -> 0  at phase 0                              always
0 -> U  at phase 0                              always
0 -> D  at phase 0                              always
U -> U  at both phases                          always
1 -> 1  at phase 1                              always
1 -> D  at phase 1                              always
1 -> U  at phase 1                              always
D -> D  at both phases                          always
U -> 1  at phase 1 only (e delayed at phase 0)  e non-input
U -> D  at phase 1 only (e delayed at phase 0)  e non-input
D -> 0  at phase 0 only (e delayed at phase 1)  e non-input
D -> U  at phase 0 only (e delayed at phase 1)  e non-input
0 -> 1, 1 -> 0                                  never (x would jump)
U -> 0, D -> 1                                  never (firing e would
                                                disable the excited x)
======  ======================================  =========================

Delaying is forbidden for input events: the environment cannot be asked
to wait for an internal signal (Molnar's Foam Rubber Wrapper property).
The encoding also demands at least one U state and at least one D state,
so the new signal actually switches.

Separation constraints (derived from MC-analysis failures) are layered
on top by the insertion engine via :meth:`LabelEncoding.require_label`
and friends.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.sat.cnf import CNF
from repro.sat.solver import Solver
from repro.sg.graph import State, StateGraph

LABELS = ("0", "1", "U", "D")

#: label pairs legal on any arc
_ALWAYS_OK = {
    ("0", "0"), ("0", "U"), ("0", "D"),
    ("U", "U"),
    ("1", "1"), ("1", "D"), ("1", "U"),
    ("D", "D"),
}
#: additionally legal when the event is non-input (the event is delayed
#: in one phase of the source state)
_NON_INPUT_OK = {("U", "1"), ("U", "D"), ("D", "0"), ("D", "U")}


def phases(label: str) -> Tuple[int, ...]:
    """The x-value phases a state of this label expands into."""
    return {"0": (0,), "1": (1,), "U": (0, 1), "D": (1, 0)}[label]


def allowed_pair(source_label: str, target_label: str, is_input_event: bool) -> bool:
    if (source_label, target_label) in _ALWAYS_OK:
        return True
    if not is_input_event and (source_label, target_label) in _NON_INPUT_OK:
        return True
    return False


def lifted_phases(source_label: str, target_label: str) -> Tuple[int, ...]:
    """Phases of the source state at which the arc is lifted."""
    result = []
    for p in phases(source_label):
        if p in phases(target_label):
            # lifting at a shared phase must not disable an excited x:
            # from a U state at phase 0 the target must keep x+ excited
            if source_label == "U" and p == 0 and target_label != "U":
                continue
            if source_label == "D" and p == 1 and target_label != "D":
                continue
            result.append(p)
    return tuple(result)


class LabelEncoding:
    """One-hot CNF encoding of a 4-valued labelling of a state graph."""

    def __init__(self, sg: StateGraph):
        self.sg = sg
        self.cnf = CNF()
        self._vars: Dict[Tuple[State, str], int] = {}
        for state in sorted(sg.states, key=str):
            group = []
            for label in LABELS:
                variable = self.cnf.var(("label", state, label))
                self._vars[(state, label)] = variable
                group.append(variable)
            self.cnf.exactly_one(group)
        self._add_edge_rules()
        self._add_switching_rule()
        # incremental solver shared across solves; clauses added to the
        # CNF after a solve (forbid_model, require_*) are synced lazily
        self._solver: Optional[Solver] = None
        self._synced_clauses = 0

    # ------------------------------------------------------------------
    def var(self, state: State, label: str) -> int:
        return self._vars[(state, label)]

    def _add_edge_rules(self) -> None:
        for source, event, target in self.sg.arcs():
            is_input = event.signal in self.sg.inputs
            for s_label in LABELS:
                for t_label in LABELS:
                    if not allowed_pair(s_label, t_label, is_input):
                        self.cnf.add(
                            -self.var(source, s_label), -self.var(target, t_label)
                        )

    def _add_switching_rule(self) -> None:
        states = sorted(self.sg.states, key=str)
        self.cnf.at_least_one([self.var(s, "U") for s in states])
        self.cnf.at_least_one([self.var(s, "D") for s in states])

    # ------------------------------------------------------------------
    # Constraint helpers for the insertion engine
    # ------------------------------------------------------------------
    def require_label(self, state: State, labels: Iterable[str]) -> None:
        """``lambda(state)`` must be one of ``labels``."""
        self.cnf.at_least_one([self.var(state, l) for l in labels])

    def require_implication(
        self, state: State, label: str, other: State, other_labels: Iterable[str]
    ) -> None:
        """``lambda(state) = label  ->  lambda(other) in other_labels``."""
        clause = [-self.var(state, label)]
        clause += [self.var(other, l) for l in other_labels]
        self.cnf.add_clause(clause)

    def require_distinct_values(self, first: State, second: State) -> None:
        """The two states must carry opposite *stable* x values.

        Used for CSC-style separation: one state gets label 0, the other
        label 1 (U/D have a phase at either value, so they cannot
        separate code-aliased states on their own).
        """
        selector = self.cnf.new_var()
        # selector -> (first=1 and second=0); -selector -> (first=0, second=1)
        self.cnf.add(-selector, self.var(first, "1"))
        self.cnf.add(-selector, self.var(second, "0"))
        self.cnf.add(selector, self.var(first, "0"))
        self.cnf.add(selector, self.var(second, "1"))

    def forbid_model(self, labelling: Dict[State, str]) -> None:
        """Block one complete labelling from future solves."""
        self.cnf.forbid([self.var(s, l) for s, l in labelling.items()])

    # ------------------------------------------------------------------
    def solve(
        self,
        assumptions: Sequence[int] = (),
        deadline: Optional[float] = None,
    ) -> Optional[Dict[State, str]]:
        """One labelling satisfying all constraints, or ``None``.

        ``deadline`` propagates to the SAT search, which raises
        :class:`repro.sat.solver.SolverTimeout` when it expires.
        """
        if self._solver is None:
            self._solver = Solver.from_cnf(self.cnf)
        else:
            self._solver.ensure_vars(self.cnf.num_vars)
            for clause in self.cnf.clauses[self._synced_clauses :]:
                self._solver.add_clause(clause)
        self._synced_clauses = len(self.cnf.clauses)
        model = self._solver.solve(assumptions, deadline=deadline)
        if model is None:
            return None
        labelling: Dict[State, str] = {}
        for state in self.sg.states:
            for label in LABELS:
                if model[self.var(state, label)]:
                    labelling[state] = label
                    break
        return labelling
