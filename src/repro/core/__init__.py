"""The paper's primary contribution: Monotonous Cover theory and synthesis.

* :mod:`repro.core.covers` -- cover cubes (Def. 15, Lemma 3), correct
  covering (Def. 16), monotonous covers (Def. 17) and their generalised
  form over sets of excitation regions (Def. 19), plus the search for an
  MC cube of a region.
* :mod:`repro.core.mc` -- whole-state-graph MC analysis (Def. 18) with
  per-region diagnostics; the report drives signal insertion.
* :mod:`repro.core.synthesis` -- standard C-/RS-implementations
  (Sec. III) from an MC-satisfying state graph, including the degenerate
  single-literal simplification and Section-VI gate sharing (Theorem 5).
* :mod:`repro.core.baseline` -- the Beerel--Meng-style correct-cover
  synthesis [2] used as the paper's comparison point.
* :mod:`repro.core.insertion` -- state-signal insertion by generalized
  state assignment (Sec. V): 4-valued {0,1,U,D} labellings found with the
  SAT substrate, expansion into a new state graph, and the
  generate-and-verify loop that repairs MC violations.
"""

from repro.core.covers import (
    CoverDiagnostics,
    smallest_cover_cube,
    is_cover_cube,
    covers_correctly,
    check_monotonous_cover,
    is_monotonous_cover,
    find_monotonous_cover,
    check_generalized_mc,
    find_correct_cover_cubes,
)
from repro.core.mc import MCReport, RegionVerdict, analyze_mc
from repro.core.synthesis import Implementation, SignalNetwork, synthesize, SynthesisError
from repro.core.baseline import baseline_synthesize, BaselineError
from repro.core.insertion import InsertionResult, insert_state_signals, expand_with_signal
from repro.core.csc import CSCInsertionResult, insert_for_csc
from repro.core.complexgate import (
    CSCViolation,
    complex_gate_netlist,
    complex_gate_synthesize,
)
from repro.core.optimize import optimal_region_assignment

__all__ = [
    "CoverDiagnostics",
    "smallest_cover_cube",
    "is_cover_cube",
    "covers_correctly",
    "check_monotonous_cover",
    "is_monotonous_cover",
    "find_monotonous_cover",
    "check_generalized_mc",
    "find_correct_cover_cubes",
    "MCReport",
    "RegionVerdict",
    "analyze_mc",
    "Implementation",
    "SignalNetwork",
    "synthesize",
    "SynthesisError",
    "baseline_synthesize",
    "BaselineError",
    "InsertionResult",
    "insert_state_signals",
    "expand_with_signal",
    "CSCInsertionResult",
    "insert_for_csc",
    "CSCViolation",
    "complex_gate_netlist",
    "complex_gate_synthesize",
    "optimal_region_assignment",
]
