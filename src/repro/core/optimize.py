"""Optimal gate sharing (Section VI as an exact optimisation).

The paper: "The last statement allows one to use optimization of the
multi-output two-level array of excitation functions under the
MC-requirement, using sharing of AND- and OR-gates."  The greedy merger
in :mod:`repro.core.synthesis` realises the idea; this module solves the
selection *exactly*:

* candidates: for every region group (subsets of the non-input regions
  up to a size cap, pruned to groups with common literals), the
  generalised-MC cube found for it;
* constraint: every region is covered by **exactly one** selected cube
  (Theorem 5's premise);
* objective: minimise total gate cost (literal count per cube, plus one
  for the AND gate when the cube has two or more literals; shared cubes
  are paid once).

Solved by branch and bound over the exact-cover structure -- instances
have at most a few dozen candidates for the benchmark-scale designs.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.boolean.cube import Cube
from repro.core.covers import (
    _cfr_bits,
    find_generalized_monotonous_cover,
    find_monotonous_cover,
    smallest_cover_cube,
)
from repro.sg.bitengine import bit_analysis
from repro.sg.graph import StateGraph
from repro.sg.regions import ExcitationRegion, all_excitation_regions


def cube_cost(cube: Cube) -> int:
    """Literal count plus one for the AND gate (waived for wires)."""
    return len(cube) + (1 if len(cube) >= 2 else 0)


def _candidate_groups(
    sg: StateGraph,
    regions: Sequence[ExcitationRegion],
    max_group: int,
) -> List[Tuple[FrozenSet[int], Cube]]:
    """(region-index-set, cube) candidates with a valid generalised MC.

    Groups are pruned with two precomputed bitset filters before the
    (expensive) generalised-MC lattice search runs: the group must share
    at least one smallest-cover literal, and the shared-literal cube must
    not cover any reachable state outside the union of the group's CFRs
    (condition (3) is antitone in the literal set, so the group is then
    hopeless).
    """
    engine = bit_analysis(sg)
    smallest = [set(smallest_cover_cube(sg, er).literals) for er in regions]
    cfr_bits = [_cfr_bits(sg, er) for er in regions]
    candidates: List[Tuple[FrozenSet[int], Cube]] = []
    for index, er in enumerate(regions):
        cube = find_monotonous_cover(sg, er)
        if cube is not None:
            candidates.append((frozenset({index}), cube))
    for size in range(2, max_group + 1):
        for group in combinations(range(len(regions)), size):
            common = set.intersection(*(smallest[i] for i in group))
            if not common:
                continue
            union_cfr = 0
            for i in group:
                union_cfr |= cfr_bits[i]
            full = engine.cube_bits(Cube(dict(sorted(common))))
            if full & ~union_cfr & engine.all_states_bits:
                continue
            cube = find_generalized_monotonous_cover(
                sg, [regions[i] for i in group]
            )
            if cube is not None:
                candidates.append((frozenset(group), cube))
    return candidates


class SharingError(RuntimeError):
    """Some region is covered by no candidate cube at all."""


def optimal_region_assignment(
    sg: StateGraph,
    regions: Optional[Sequence[ExcitationRegion]] = None,
    max_group: int = 3,
) -> Dict[ExcitationRegion, Cube]:
    """Minimum-cost exact cover of the regions by (shared) MC cubes."""
    if regions is None:
        regions = all_excitation_regions(sg, only_non_inputs=True)
    regions = list(regions)
    if not regions:
        return {}
    candidates = _candidate_groups(sg, regions, max_group)
    coverable = set()
    for group, _ in candidates:
        coverable |= group
    missing = set(range(len(regions))) - coverable
    if missing:
        raise SharingError(
            f"no MC cube candidate for "
            f"{[regions[i].transition_name for i in sorted(missing)]}"
        )

    by_region: Dict[int, List[int]] = {i: [] for i in range(len(regions))}
    for c_index, (group, _) in enumerate(candidates):
        for region_index in group:
            by_region[region_index].append(c_index)
    costs = [cube_cost(cube) for _, cube in candidates]

    best_cost = [sum(costs) + 1]
    best_choice: List[Optional[Tuple[int, ...]]] = [None]

    def backtrack(uncovered: FrozenSet[int], chosen: Tuple[int, ...], spent: int):
        if spent >= best_cost[0]:
            return
        if not uncovered:
            best_cost[0] = spent
            best_choice[0] = chosen
            return
        # branch on the uncovered region with fewest usable candidates
        def usable(region_index: int) -> List[int]:
            return [
                c
                for c in by_region[region_index]
                # exactly-one: the candidate's whole group must still be
                # uncovered (no region may be covered twice)
                if candidates[c][0] <= uncovered
            ]

        region_index = min(uncovered, key=lambda i: len(usable(i)))
        options = usable(region_index)
        if not options:
            return
        for c_index in sorted(options, key=lambda c: costs[c]):
            backtrack(
                uncovered - candidates[c_index][0],
                chosen + (c_index,),
                spent + costs[c_index],
            )

    backtrack(frozenset(range(len(regions))), (), 0)
    if best_choice[0] is None:
        raise SharingError("no exact cover of the regions by MC cubes exists")
    assignment: Dict[ExcitationRegion, Cube] = {}
    for c_index in best_choice[0]:
        group, cube = candidates[c_index]
        for region_index in group:
            assignment[regions[region_index]] = cube
    return assignment


def total_cost(assignment: Dict[ExcitationRegion, Cube]) -> int:
    """Summed cost of the distinct cubes in an assignment."""
    return sum(cube_cost(cube) for cube in set(assignment.values()))
