"""Complex-gate synthesis (the approach the paper contrasts with).

Chu's classic result [3]: a semi-modular state graph has a correct
implementation in which each non-input signal is one *complex gate*
(an arbitrary hazard-free-by-assumption Boolean function with internal
feedback) **iff** it satisfies Complete State Coding.  The paper's whole
point is that a single complex gate per signal is often unrealistic --
"the required combinational logic functions are too complex to have
single complex gate implementations from a standard library" -- which
motivates the basic-gate architecture and the stronger MC requirement.

This module implements the complex-gate flow so the contrast can be
measured: derive each signal's next-state function from the state graph
(on-set: states where the signal is 1 and stable, or excited to rise;
off-set: 0-and-stable or excited to fall; don't-care: unreachable
codes), minimise it exactly, and emit one atomic
:class:`~repro.netlist.gates.GateKind.COMPLEX` gate per signal.
A CSC violation manifests as a state code demanded in both the on- and
off-set, reported as :class:`CSCViolation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.boolean.cover import Cover
from repro.boolean.minimize import minimize_onset
from repro.boolean.sop import format_cover
from repro.netlist.gates import Gate, GateKind
from repro.netlist.netlist import Netlist
from repro.sg.graph import StateGraph


class CSCViolation(RuntimeError):
    """Two same-coded states demand different next values of a signal."""

    def __init__(self, signal: str, code: Tuple[int, ...]):
        self.signal = signal
        self.code = code
        super().__init__(
            f"signal {signal!r}: code {''.join(map(str, code))} needs both "
            f"next-values (CSC violation)"
        )


def next_state_function(
    sg: StateGraph, signal: str
) -> Tuple[List[Dict[str, int]], List[Dict[str, int]]]:
    """(on-set, off-set) codes of the signal's next-state function.

    The next value of ``signal`` in state ``s`` is 1 when the signal is
    high and stable or excited to rise.  Raises :class:`CSCViolation`
    when two states with equal codes disagree.
    """
    on: Dict[Tuple[int, ...], bool] = {}
    for state in sg.states:
        value = sg.value(state, signal)
        excited = sg.is_excited(state, signal)
        next_value = (1 - value) if excited else value
        code = sg.code(state)
        existing = on.get(code)
        if existing is not None and existing != bool(next_value):
            raise CSCViolation(signal, code)
        on[code] = bool(next_value)
    on_codes = [dict(zip(sg.signals, c)) for c, v in sorted(on.items()) if v]
    off_codes = [dict(zip(sg.signals, c)) for c, v in sorted(on.items()) if not v]
    return on_codes, off_codes


@dataclass
class ComplexGateImplementation:
    """One minimised SOP per non-input signal, each an atomic gate."""

    sg: StateGraph
    functions: Dict[str, Cover]

    def equations(self) -> str:
        return "\n".join(
            f"{signal} = [{format_cover(cover)}]"
            for signal, cover in sorted(self.functions.items())
        )

    def literal_count(self) -> int:
        return sum(cover.literal_count() for cover in self.functions.values())


def complex_gate_synthesize(sg: StateGraph) -> ComplexGateImplementation:
    """Derive the complex-gate implementation (requires CSC only)."""
    signals = list(sg.signals)
    all_reachable = {sg.code(s) for s in sg.states}
    import itertools

    dc_codes = [
        dict(zip(signals, bits))
        for bits in itertools.product((0, 1), repeat=len(signals))
        if bits not in all_reachable
    ]
    functions: Dict[str, Cover] = {}
    for signal in sorted(sg.non_inputs):
        on_codes, _ = next_state_function(sg, signal)
        functions[signal] = minimize_onset(signals, on_codes, dc_codes)
    return ComplexGateImplementation(sg=sg, functions=functions)


def complex_gate_netlist(
    impl: ComplexGateImplementation, name: str = None
) -> Netlist:
    """One atomic COMPLEX gate per non-input signal (with feedback)."""
    sg = impl.sg
    netlist = Netlist(
        name=name or f"{sg.name}_complex",
        inputs=tuple(s for s in sg.signals if s in sg.inputs),
        interface_outputs=tuple(s for s in sg.signals if s not in sg.inputs),
    )
    for signal, cover in impl.functions.items():
        fanins = sorted(cover.signals | {signal})
        netlist.add_gate(
            Gate(
                signal,
                GateKind.COMPLEX,
                tuple((s, 1) for s in fanins),
                function=cover,
            )
        )
    netlist.fanin_closure_check()
    return netlist
