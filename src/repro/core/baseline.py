"""Baseline synthesis in the style of Beerel & Meng [2].

The baseline requires each excitation region to be covered by *correct*
cover cubes only (Definition 16) -- several cubes per region are allowed
and no monotonicity is demanded.  This is the method the paper compares
against in Examples 1 and 2:

* on Figure 1 it needs two cubes (``a b' + b' c``) for ER(+d_1) and
  produces equations (1) -- but cannot guarantee the acknowledgement of
  both AND gates;
* on Figure 4 it accepts cube ``a`` for ER(+b_1) (all of [2]'s local
  conditions hold) although the resulting circuit has a hazard, which the
  circuit-level verifier in :mod:`repro.netlist.hazards` demonstrates.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.boolean.cover import Cover
from repro.boolean.cube import Cube
from repro.core.covers import find_correct_cover_cubes
from repro.core.synthesis import Implementation, SignalNetwork
from repro.sg.graph import StateGraph
from repro.sg.regions import ExcitationRegion, excitation_regions


class BaselineError(RuntimeError):
    """Some excitation region admits no correct cover at all."""


def baseline_synthesize(sg: StateGraph) -> Implementation:
    """Correct-cover synthesis (no MC requirement).

    Raises :class:`BaselineError` when a region cannot be covered
    correctly by any set of cubes (this cannot happen in persistent
    graphs, Theorem 1 -- tested as an executable cross-check).
    """
    networks: Dict[str, SignalNetwork] = {}
    for signal in sorted(sg.non_inputs):
        regions = excitation_regions(sg, signal)
        if not any(er.direction == 1 for er in regions) or not any(
            er.direction == -1 for er in regions
        ):
            raise BaselineError(
                f"non-input signal {signal!r} never switches in both "
                f"directions; it has no excitation logic to synthesise"
            )
        covers: Dict[int, List[Cube]] = {1: [], -1: []}
        maps: Dict[int, Dict[Cube, Tuple[ExcitationRegion, ...]]] = {1: {}, -1: {}}
        for er in regions:
            cubes = find_correct_cover_cubes(sg, er)
            if cubes is None:
                raise BaselineError(
                    f"ER({er.transition_name}) has no correct cover"
                )
            for cube in cubes:
                if cube not in covers[er.direction]:
                    covers[er.direction].append(cube)
                existing = maps[er.direction].get(cube, ())
                maps[er.direction][cube] = tuple(list(existing) + [er])
        networks[signal] = SignalNetwork(
            signal=signal,
            set_cover=Cover(covers[1]),
            reset_cover=Cover(covers[-1]),
            set_regions=maps[1],
            reset_regions=maps[-1],
        )
    return Implementation(sg=sg, networks=networks, shared=False, method="baseline")
