"""Standard C- and RS-implementation synthesis (Sections III-IV, VI).

For every non-input signal ``a`` the synthesiser derives

* an up-excitation function ``Sa`` -- one AND gate (cube) per
  up-excitation region, OR-ed together, and
* a down-excitation function ``Ra`` -- likewise for the down regions,

with every cube a monotonous cover of the region(s) it implements
(Theorem 3; with gate sharing, a generalised monotonous cover of its
region set, Theorem 5).  The two functions feed a Muller C-element
(``a = C(Sa, Ra')``) in the C-implementation or an RS latch in the
RS-implementation; the two structures differ only in how inverted
literals are realised (Fig. 2), so the logic layer here is shared and
the choice of latch is made by the netlist builder.

Degenerate simplifications (Sec. IV, note 2): when an excitation
function is a single cube of a single literal, the AND and OR gates
disappear -- the literal feeds the latch directly -- and the cube only
needs to be a *correct* cover, not a monotonous one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.boolean.compiled import CompiledCover, SignalSpace
from repro.boolean.cover import Cover
from repro.boolean.cube import Cube
from repro.boolean.sop import format_cover, format_cube
from repro.core.covers import (
    covers_correctly,
    find_generalized_monotonous_cover,
    smallest_cover_cube,
)
from repro.core.mc import MCReport, analyze_mc
from repro.sg.graph import StateGraph
from repro.sg.regions import ExcitationRegion, excitation_regions


class SynthesisError(RuntimeError):
    """The state graph violates the MC requirement; carries the report."""

    def __init__(self, report: MCReport):
        self.report = report
        super().__init__(report.describe())


@dataclass
class SignalNetwork:
    """The excitation logic of one non-input signal (Fig. 2)."""

    signal: str
    set_cover: Cover
    reset_cover: Cover
    #: cube -> regions it implements (for sharing and reports)
    set_regions: Dict[Cube, Tuple[ExcitationRegion, ...]] = field(default_factory=dict)
    reset_regions: Dict[Cube, Tuple[ExcitationRegion, ...]] = field(default_factory=dict)
    #: True when the function was admitted under the degenerate
    #: single-literal rule (correct cover only)
    degenerate_set: bool = False
    degenerate_reset: bool = False

    @property
    def wire_source(self) -> Optional[Tuple[str, int]]:
        """``(source, polarity)`` when the network degenerates to a wire.

        ``a = x`` when set = literal ``x`` and reset = ``x'`` (polarity 1);
        ``a = x'`` when set = ``x'`` and reset = ``x`` (polarity 0) -- the
        paper's ``d = x`` in equations (2) is this inverted-wire case.
        """
        if len(self.set_cover) != 1 or len(self.reset_cover) != 1:
            return None
        set_cube = self.set_cover.cubes[0]
        reset_cube = self.reset_cover.cubes[0]
        if len(set_cube) != 1 or len(reset_cube) != 1:
            return None
        (s_sig, s_val), = set_cube.literals
        (r_sig, r_val), = reset_cube.literals
        if s_sig == r_sig and s_val != r_val:
            return (s_sig, s_val)
        return None

    @property
    def is_wire(self) -> bool:
        return self.wire_source is not None

    def compiled_set_cover(self, space: "SignalSpace") -> "CompiledCover":
        """The set (up-excitation) cover in the shared compiled IR."""
        return self.set_cover.compiled(space)

    def compiled_reset_cover(self, space: "SignalSpace") -> "CompiledCover":
        """The reset (down-excitation) cover in the shared compiled IR."""
        return self.reset_cover.compiled(space)

    def equations(self) -> List[str]:
        wire = self.wire_source
        if wire is not None:
            source, polarity = wire
            return [f"{self.signal} = {source}{'' if polarity else chr(39)}"]
        lines = [
            f"S{self.signal} = {format_cover(self.set_cover)}",
            f"R{self.signal} = {format_cover(self.reset_cover)}",
            f"{self.signal} = C(S{self.signal}, R{self.signal}')",
        ]
        return lines


@dataclass
class Implementation:
    """A complete standard implementation of a state graph."""

    sg: StateGraph
    networks: Dict[str, SignalNetwork]
    shared: bool = False
    method: str = "mc"

    def network(self, signal: str) -> SignalNetwork:
        return self.networks[signal]

    @property
    def space(self) -> SignalSpace:
        """The interned signal space of the implemented state graph --
        the space every network's compiled covers resolve against."""
        return SignalSpace.of(tuple(self.sg.signals))

    def compiled_network_covers(
        self, signal: str
    ) -> Tuple[CompiledCover, CompiledCover]:
        """``(set, reset)`` covers of one signal in the compiled IR."""
        network = self.networks[signal]
        space = self.space
        return (
            network.compiled_set_cover(space),
            network.compiled_reset_cover(space),
        )

    def equations(self) -> str:
        lines: List[str] = []
        for signal in sorted(self.networks):
            lines += self.networks[signal].equations()
        return "\n".join(lines)

    def region_report(self) -> str:
        """Per-region mapping: which cube implements which region.

        The documentation artefact of the synthesis run: for every
        excitation region of every non-input signal, the implementing
        cube, whether it is shared (Def. 19 group) or degenerate, and
        the region's trigger events.
        """
        from repro.boolean.sop import format_cube
        from repro.sg.regions import trigger_events

        lines = [f"region mapping for {self.sg.name!r} ({self.method})"]
        for signal in sorted(self.networks):
            network = self.networks[signal]
            for label, mapping in (
                (f"S{signal}", network.set_regions),
                (f"R{signal}", network.reset_regions),
            ):
                for cube, regions in mapping.items():
                    shared = " [shared]" if len(regions) > 1 else ""
                    degenerate = (
                        " [degenerate]"
                        if (label.startswith("S") and network.degenerate_set)
                        or (label.startswith("R") and network.degenerate_reset)
                        else ""
                    )
                    for er in regions:
                        triggers = ", ".join(
                            sorted(str(e) for e in trigger_events(self.sg, er))
                        )
                        lines.append(
                            f"  {label}: ER({er.transition_name}) <- cube "
                            f"{format_cube(cube)}{shared}{degenerate}"
                            f"  (triggers: {triggers})"
                        )
        return "\n".join(lines)

    def and_gate_count(self) -> int:
        """AND gates needed (cubes with >= 2 literals), after sharing."""
        cubes = set()
        for network in self.networks.values():
            for cube in network.set_cover:
                if len(cube) >= 2:
                    cubes.add(cube)
            for cube in network.reset_cover:
                if len(cube) >= 2:
                    cubes.add(cube)
        return len(cubes)

    def literal_count(self) -> int:
        return sum(
            network.set_cover.literal_count() + network.reset_cover.literal_count()
            for network in self.networks.values()
        )


def _degenerate_function_cube(
    sg: StateGraph, regions: Sequence[ExcitationRegion]
) -> Optional[Cube]:
    """A single-literal cube correctly covering *all* the regions.

    This is the paper's degenerate case: the whole excitation function is
    one literal wired straight to the latch input, so only correct
    covering (Def. 16) is required of it.
    """
    if not regions:
        return None
    candidates = None
    for er in regions:
        literals = set(smallest_cover_cube(sg, er).literals)
        candidates = literals if candidates is None else candidates & literals
    if not candidates:
        return None
    for signal, value in sorted(candidates):
        cube = Cube({signal: value})
        if all(
            covers_correctly(sg, er, cube)
            and all(cube.covers(sg.code_dict(s)) for s in er.states)
            for er in regions
        ):
            return cube
    return None


def _wire_candidate(
    sg: StateGraph,
    ups: Sequence[ExcitationRegion],
    downs: Sequence[ExcitationRegion],
) -> Optional[Tuple[str, int]]:
    """A ``(source, polarity)`` wire implementing the whole network.

    The paper's strongest degenerate case (its equations (2) write
    ``d = x``): when some literal ``w = v`` correctly covers every
    up-region and ``w = 1-v`` every down-region, the C-element collapses
    to a BUF/NOT from ``w``.  Correct covering (Def. 16) suffices here
    because there is no AND/OR gate left to acknowledge.
    """
    if not ups or not downs:
        return None
    candidates = None
    for er in ups:
        literals = set(smallest_cover_cube(sg, er).literals)
        candidates = literals if candidates is None else candidates & literals
    if not candidates:
        return None
    for signal, value in sorted(candidates):
        up_cube = Cube({signal: value})
        down_cube = Cube({signal: 1 - value})
        if not all(
            covers_correctly(sg, er, up_cube)
            and all(up_cube.covers(sg.code_dict(s)) for s in er.states)
            for er in ups
        ):
            continue
        if all(
            covers_correctly(sg, er, down_cube)
            and all(down_cube.covers(sg.code_dict(s)) for s in er.states)
            for er in downs
        ):
            return (signal, value)
    return None


def _share_cubes(
    sg: StateGraph,
    chosen: Dict[ExcitationRegion, Cube],
) -> Dict[ExcitationRegion, Cube]:
    """Section-VI optimisation: merge AND gates across regions.

    Greedy pairwise merging: for each pair of regions, the candidate
    shared cube is the common-literal cube of their smallest covers; it
    replaces both cubes when it is a generalised MC (Def. 19) of the
    merged region group.  Groups keep growing until no merge applies.
    """
    groups: List[List[ExcitationRegion]] = [[er] for er in chosen]
    cubes: List[Cube] = [chosen[er] for er in chosen]

    merged = True
    while merged:
        merged = False
        for i in range(len(groups)):
            for j in range(i + 1, len(groups)):
                group = groups[i] + groups[j]
                candidate = find_generalized_monotonous_cover(sg, group)
                if candidate is not None:
                    groups[i] = group
                    cubes[i] = candidate
                    del groups[j]
                    del cubes[j]
                    merged = True
                    break
            if merged:
                break
    result: Dict[ExcitationRegion, Cube] = {}
    for group, cube in zip(groups, cubes):
        for er in group:
            result[er] = cube
    return result


def synthesize(
    sg: StateGraph,
    share_gates: bool = False,
    allow_degenerate: bool = True,
    report: Optional[MCReport] = None,
) -> Implementation:
    """Derive the standard implementation of an MC-satisfying state graph.

    Raises :class:`SynthesisError` (carrying the MC report) if some
    non-input excitation region admits no monotonous cover and cannot be
    rescued by the degenerate single-literal rule; run the insertion
    engine (:func:`repro.core.insertion.insert_state_signals`) first in
    that case.
    """
    report = report or analyze_mc(sg)
    chosen: Dict[ExcitationRegion, Cube] = {}
    degenerate: Dict[Tuple[str, int], Cube] = {}

    by_function: Dict[Tuple[str, int], List[ExcitationRegion]] = {}
    for verdict in report.verdicts:
        key = (verdict.er.signal, verdict.er.direction)
        by_function.setdefault(key, []).append(verdict.er)

    unresolved = []
    for verdict in report.verdicts:
        if verdict.ok:
            chosen[verdict.er] = verdict.mc_cube
        else:
            unresolved.append(verdict.er)

    if unresolved and allow_degenerate:
        for key, regions in by_function.items():
            if any(er in unresolved for er in regions):
                cube = _degenerate_function_cube(sg, regions)
                if cube is not None:
                    degenerate[key] = cube
                    for er in regions:
                        chosen.pop(er, None)
                        if er in unresolved:
                            unresolved.remove(er)

    if unresolved:
        raise SynthesisError(report)

    if share_gates == "optimal":
        from repro.core.optimize import optimal_region_assignment

        chosen = optimal_region_assignment(sg, regions=list(chosen))
    elif share_gates:
        chosen = _share_cubes(sg, chosen)

    networks: Dict[str, SignalNetwork] = {}
    for signal in sorted(sg.non_inputs):
        regions = excitation_regions(sg, signal)
        ups = [er for er in regions if er.direction == 1]
        downs = [er for er in regions if er.direction == -1]
        if not ups or not downs:
            raise ValueError(
                f"non-input signal {signal!r} never "
                f"{'rises' if not ups else 'falls'} in the specification; "
                f"constant or one-shot signals have no excitation logic -- "
                f"tie the signal off instead of synthesising it"
            )

        if allow_degenerate:
            wire = _wire_candidate(sg, ups, downs)
            if wire is not None:
                source, polarity = wire
                networks[signal] = SignalNetwork(
                    signal=signal,
                    set_cover=Cover([Cube({source: polarity})]),
                    reset_cover=Cover([Cube({source: 1 - polarity})]),
                    set_regions={Cube({source: polarity}): tuple(ups)},
                    reset_regions={Cube({source: 1 - polarity}): tuple(downs)},
                    degenerate_set=True,
                    degenerate_reset=True,
                )
                continue

        def build(direction_regions, key):
            if key in degenerate:
                cube = degenerate[key]
                return (
                    Cover([cube]),
                    {cube: tuple(direction_regions)},
                    True,
                )
            cubes: List[Cube] = []
            mapping: Dict[Cube, Tuple[ExcitationRegion, ...]] = {}
            for er in direction_regions:
                cube = chosen[er]
                if cube not in cubes:
                    cubes.append(cube)
                mapping[cube] = tuple(
                    list(mapping.get(cube, ())) + [er]
                )
            return Cover(cubes), mapping, False

        set_cover, set_map, deg_s = build(ups, (signal, 1))
        reset_cover, reset_map, deg_r = build(downs, (signal, -1))
        networks[signal] = SignalNetwork(
            signal=signal,
            set_cover=set_cover,
            reset_cover=reset_cover,
            set_regions=set_map,
            reset_regions=reset_map,
            degenerate_set=deg_s,
            degenerate_reset=deg_r,
        )
    return Implementation(sg=sg, networks=networks, shared=share_gates, method="mc")
