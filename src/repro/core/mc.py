"""Whole-state-graph Monotonous Cover analysis (Definitions 18-19).

``analyze_mc`` examines every excitation region of every non-input signal
and decides whether the graph is implementable in the standard structure:
each region must be covered by exactly one cube that is a monotonous
cover of the set of regions it serves (per-region MC, Def. 17, or the
generalised form over region groups of the same excitation function,
Def. 19 / Theorem 5 -- the paper's own Figure-3 solution needs the
latter: ``Sd = x'`` is one cube shared by ER(+d_1) and ER(+d_2)).

The report carries, per failed region, the *stuck states*: reachable
states outside the region's CFR that even the smallest cover cube covers
-- every cover cube of the region covers them, so an inserted signal must
neutralise them.  The insertion engine consumes these diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro import perf
from repro.boolean.cube import Cube
from repro.core.covers import (
    check_monotonous_cover,
    find_monotonous_cover,
    find_region_cover_assignment,
    smallest_cover_cube,
)
from repro.sg.graph import State, StateGraph
from repro.sg.regions import (
    ExcitationRegion,
    all_excitation_regions,
    constant_function_region,
    excited_value_sets,
    has_unique_entry,
)


@dataclass
class RegionVerdict:
    """MC status of one excitation region."""

    er: ExcitationRegion
    cfr: FrozenSet[State]
    unique_entry: bool
    #: the cube covering this region in the chosen assignment (None = fail)
    mc_cube: Optional[Cube]
    #: regions sharing that cube (singleton tuple for a private MC cube)
    group: Tuple[ExcitationRegion, ...] = ()
    #: True when the cube is only a private Def.-17 MC (no sharing needed)
    private: bool = True
    #: for failed regions: reachable states outside the CFR covered by the
    #: *smallest* cover cube, split by why they are dangerous
    stuck_stable: FrozenSet[State] = frozenset()
    stuck_opposite: FrozenSet[State] = frozenset()

    @property
    def ok(self) -> bool:
        return self.mc_cube is not None

    @property
    def stuck_states(self) -> FrozenSet[State]:
        return self.stuck_stable | self.stuck_opposite

    def describe(self) -> str:
        if self.ok:
            shared = (
                ""
                if self.private
                else f" (shared with {[e.transition_name for e in self.group if e != self.er]})"
            )
            return f"ER({self.er.transition_name}): MC cube {self.mc_cube!r}{shared}"
        reasons = []
        if not self.unique_entry:
            reasons.append("no unique entry")
        if self.stuck_states:
            sample = sorted(map(str, self.stuck_states))[:4]
            reasons.append(f"every cover cube covers outside-CFR states {sample}")
        if not reasons:
            reasons.append("no monotonous cube in the cover-cube lattice")
        return f"ER({self.er.transition_name}): FAIL ({'; '.join(reasons)})"


@dataclass
class MCReport:
    """The outcome of :func:`analyze_mc` over a state graph."""

    sg: StateGraph
    verdicts: List[RegionVerdict]

    @property
    def satisfied(self) -> bool:
        """Every non-input region has an (optionally shared) MC cube."""
        return all(v.ok for v in self.verdicts)

    @property
    def strictly_satisfied(self) -> bool:
        """Definition 18 proper: every region has its own private MC cube."""
        return all(v.ok and v.private for v in self.verdicts)

    @property
    def failed(self) -> List[RegionVerdict]:
        return [v for v in self.verdicts if not v.ok]

    def verdict_for(self, er: ExcitationRegion) -> RegionVerdict:
        for verdict in self.verdicts:
            if verdict.er == er:
                return verdict
        raise KeyError(f"no verdict for {er}")

    def mc_cubes(self) -> Dict[ExcitationRegion, Cube]:
        """Region -> assigned cube (only for satisfied regions)."""
        return {v.er: v.mc_cube for v in self.verdicts if v.ok}

    def describe(self) -> str:
        lines = [
            f"MC analysis of {self.sg.name!r}: "
            f"{'SATISFIED' if self.satisfied else 'VIOLATED'}"
        ]
        lines += ["  " + v.describe() for v in self.verdicts]
        return "\n".join(lines)

    def to_json(self) -> Dict:
        """Structured artifact (see :mod:`repro.pipeline.serialize`)."""
        from repro.pipeline.serialize import mc_report_to_json

        return mc_report_to_json(self)

    @classmethod
    def from_json(cls, data: Dict) -> "MCReport":
        """Rebuild a comparable report from :meth:`to_json` output."""
        from repro.pipeline.serialize import mc_report_from_json

        return mc_report_from_json(data)


def _classify_stuck(
    sg: StateGraph, er: ExcitationRegion, outside: FrozenSet[State]
) -> Tuple[FrozenSet[State], FrozenSet[State]]:
    """Split covered outside-CFR states into strict / delay-repairable.

    Covering a state of the *opposite* excitation region can be
    neutralised by delaying that opposite transition behind the inserted
    signal (the covered phase then has the region's signal stable at the
    harmless level).  Everything else -- stable states at the wrong
    level, and states of *other regions of the same direction* (where
    covering part of a foreign region would turn on two cubes inside it)
    -- needs a strictly distinguishing signal value.
    """
    sets = excited_value_sets(sg, er.signal)
    if er.direction == 1:
        strict = sets["0-set"] | sets["1-set"] | (sets["0*-set"] - er.states)
        opposite = sets["1*-set"]
    else:
        strict = sets["1-set"] | sets["0-set"] | (sets["1*-set"] - er.states)
        opposite = sets["0*-set"]
    return outside & strict, outside & opposite


def _function_verdicts(
    sg: StateGraph, regions: List[ExcitationRegion]
) -> List[RegionVerdict]:
    """Verdicts for all regions of one excitation function (signal, dir).

    Self-contained per function, which makes the per-function work
    independently schedulable (see the ``jobs`` fan-out below).
    """
    verdicts: List[RegionVerdict] = []
    private: Dict[ExcitationRegion, Optional[Cube]] = {
        er: find_monotonous_cover(sg, er) for er in regions
    }
    assignment = find_region_cover_assignment(sg, regions, precomputed=private)
    groups: Dict[Cube, List[ExcitationRegion]] = {}
    if assignment:
        for er, cube in assignment.items():
            groups.setdefault(cube, []).append(er)
    for er in regions:
        cfr = constant_function_region(sg, er)
        cube = assignment.get(er) if assignment else private[er]
        stuck_stable: FrozenSet[State] = frozenset()
        stuck_opposite: FrozenSet[State] = frozenset()
        if cube is None:
            smallest = smallest_cover_cube(sg, er)
            outside = check_monotonous_cover(sg, er, smallest, cfr).outside_cfr
            stuck_stable, stuck_opposite = _classify_stuck(sg, er, outside)
        verdicts.append(
            RegionVerdict(
                er=er,
                cfr=frozenset(cfr),
                unique_entry=has_unique_entry(sg, er),
                mc_cube=cube,
                group=tuple(groups.get(cube, [er])) if cube else (),
                private=private.get(er) is not None
                and cube == private.get(er),
                stuck_stable=stuck_stable,
                stuck_opposite=stuck_opposite,
            )
        )
    return verdicts


def analyze_mc(
    sg: StateGraph,
    jobs: Optional[int] = None,
    reuse: Optional[Dict[Tuple[str, int], List[RegionVerdict]]] = None,
) -> MCReport:
    """Check the (generalised) Monotonous Cover requirement per region.

    ``jobs`` opts into a parallel fan-out: the per-function verdicts
    (one excitation function = one (signal, direction) pair) are
    independent of each other, so they are dispatched to a
    ``concurrent.futures`` thread pool.  The verdict list is identical
    to the serial one -- results are collected in the same sorted
    function order, and each function's computation is untouched.  The
    shared per-graph caches (regions, bitmask engine, value sets) are
    warmed up front so workers mostly read.

    ``reuse`` maps ``(signal, direction)`` pairs to previously computed
    verdict lists that are adopted verbatim in place of re-running the
    function's cover search.  Callers are responsible for only offering
    verdicts whose input cone is unchanged (the pipeline keys them on
    the per-function digests of ``pipeline/incremental.py``), which
    makes adoption indistinguishable from recomputation.
    """
    with perf.phase("mc-analysis"):
        by_function: Dict[Tuple[str, int], List[ExcitationRegion]] = {}
        for er in all_excitation_regions(sg, only_non_inputs=True):
            by_function.setdefault((er.signal, er.direction), []).append(er)
        ordered = sorted(by_function.items())
        reuse = reuse or {}
        pending = [item for item in ordered if item[0] not in reuse]
        if reuse:
            perf.count("mc.functions-reused", len(ordered) - len(pending))

        if jobs is not None and jobs > 1 and len(pending) > 1:
            from concurrent.futures import ThreadPoolExecutor

            from repro.sg.bitengine import bit_analysis

            # warm the shared caches once, serially, so concurrent cache
            # fills (harmless but wasteful duplicates) stay rare
            engine = bit_analysis(sg)
            engine.succ_bits
            for (signal, _), _regions in pending:
                excited_value_sets(sg, signal)
            with ThreadPoolExecutor(max_workers=jobs) as pool:
                results = list(
                    pool.map(
                        lambda item: _function_verdicts(sg, item[1]), pending
                    )
                )
        else:
            results = [
                _function_verdicts(sg, regions) for _, regions in pending
            ]

        computed = {key: result for (key, _), result in zip(pending, results)}
        verdicts: List[RegionVerdict] = []
        for key, _regions in ordered:
            verdicts.extend(computed[key] if key in computed else list(reuse[key]))
        return MCReport(sg=sg, verdicts=verdicts)
