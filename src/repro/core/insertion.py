"""State-signal insertion: transforming G into G' satisfying MC (Sec. V).

The paper's synthesis procedure transforms an output semi-modular state
graph by inserting new internal signals until the Monotonous Cover
requirement holds, "using for example the generalized state assignment
method described in [11]".  This module implements that loop:

1. :func:`repro.core.mc.analyze_mc` finds the violating excitation
   regions and, per region, the *stuck states* -- reachable states
   outside the region's CFR that every cover cube of the region covers.
2. For each violating region, separation constraints over a 4-valued
   labelling of a new signal ``x`` are generated (two symmetric variants:
   the region reads ``x = 1`` while stuck states hold ``x = 0``, or vice
   versa).  A region state may be labelled U (x rises inside it) provided
   the region's own transition is *delayed* to the risen phase, which is
   what reshapes the region so that ``x`` becomes its trigger -- exactly
   the paper's Figure 1 -> Figure 3 transformation.
3. The SAT substrate proposes labellings consistent with the structural
   edge rules (:mod:`repro.core.assignment`); each proposal is expanded
   (:func:`expand_with_signal`) and re-verified.  Proposals that do not
   reduce the number of violations are blocked and the search continues;
   constraints are relaxed region-by-region if the full set is
   unsatisfiable.
4. One accepted signal per round, up to ``max_signals`` rounds.

The expansion preserves behaviour: hiding ``x`` (contracting its arcs)
gives back exactly the original arcs, and no input event is ever delayed.
Both invariants are property-tested.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import perf
from repro.core.assignment import LabelEncoding, lifted_phases, phases
from repro.core.mc import MCReport, RegionVerdict, analyze_mc
from repro.sg.events import SignalEvent
from repro.sg.graph import State, StateGraph
from repro.sg.properties import conflict_states


class InsertionError(RuntimeError):
    """No labelling could repair the remaining MC violations."""


# ----------------------------------------------------------------------
# Expansion
# ----------------------------------------------------------------------
def expand_with_signal(
    sg: StateGraph,
    labelling: Dict[State, str],
    signal: str,
    name: Optional[str] = None,
) -> StateGraph:
    """Expand ``sg`` with a new internal signal described by ``labelling``.

    States become ``(s, phase)`` pairs; U/D states split in two with an
    ``x+``/``x-`` arc between their phases; original arcs are lifted
    according to the label rules (see :mod:`repro.core.assignment`).
    Raises ``ValueError`` on labellings violating those rules.
    """
    if signal in sg.signals:
        raise ValueError(f"signal name {signal!r} already in use")
    for state in sg.states:
        if state not in labelling:
            raise ValueError(f"state {state!r} has no label")
        if labelling[state] not in ("0", "1", "U", "D"):
            raise ValueError(f"bad label {labelling[state]!r} for {state!r}")

    new_signals = sg.signals + (signal,)
    codes: Dict[Tuple[State, int], Tuple[int, ...]] = {}
    for state in sg.states:
        for phase in phases(labelling[state]):
            codes[(state, phase)] = sg.code(state) + (phase,)

    arcs: List[Tuple[Tuple[State, int], SignalEvent, Tuple[State, int]]] = []
    for state in sg.states:
        label = labelling[state]
        if label == "U":
            arcs.append(((state, 0), SignalEvent(signal, +1), (state, 1)))
        elif label == "D":
            arcs.append(((state, 1), SignalEvent(signal, -1), (state, 0)))

    for source, event, target in sg.arcs():
        s_label, t_label = labelling[source], labelling[target]
        lifts = lifted_phases(s_label, t_label)
        if not lifts:
            raise ValueError(
                f"arc {source!r} --{event}--> {target!r} cannot be lifted "
                f"under labels {s_label} -> {t_label}"
            )
        if event.signal in sg.inputs and set(lifts) != set(phases(s_label)):
            raise ValueError(
                f"labelling delays input event {event} at {source!r}"
            )
        for phase in lifts:
            arcs.append(((source, phase), event, (target, phase)))

    initial_phase = phases(labelling[sg.initial])[0]
    expanded = StateGraph(
        new_signals,
        sg.inputs,
        codes,
        arcs,
        (sg.initial, initial_phase),
        name=name or f"{sg.name}+{signal}",
    )
    # Unreachable phases can arise (e.g. the 0 phase of a D state no
    # predecessor reaches); prune them so region analysis sees the true
    # behaviour.
    reachable = expanded.reachable_from(expanded.initial)
    if reachable != expanded.states:
        expanded = expanded.restricted_to(reachable)
    return expanded


def project_away(sg: StateGraph, signal: str) -> StateGraph:
    """Hide an internal signal: contract its arcs and merge its phases.

    The inverse of :func:`expand_with_signal` up to state identity: every
    state ``(s, p)`` collapses to ``s`` and ``signal``'s own transitions
    disappear.  Used to verify behaviour preservation.
    """
    if signal in sg.inputs:
        raise ValueError("cannot hide an input signal")
    position = sg.signal_position(signal)
    kept_signals = tuple(s for s in sg.signals if s != signal)

    # union-find over states connected by the hidden signal's arcs
    parent: Dict[State, State] = {s: s for s in sg.states}

    def find(state: State) -> State:
        while parent[state] != state:
            parent[state] = parent[parent[state]]
            state = parent[state]
        return state

    for source, event, target in sg.arcs():
        if event.signal == signal:
            parent[find(source)] = find(target)

    def strip(code: Tuple[int, ...]) -> Tuple[int, ...]:
        return code[:position] + code[position + 1 :]

    codes: Dict[State, Tuple[int, ...]] = {}
    for state in sg.states:
        root = find(state)
        stripped = strip(sg.code(state))
        existing = codes.get(root)
        if existing is not None and existing != stripped:
            raise ValueError(
                "hiding the signal merges states with different codes"
            )
        codes[root] = stripped

    arcs = {
        (find(source), event, find(target))
        for source, event, target in sg.arcs()
        if event.signal != signal
    }
    return StateGraph(
        kept_signals,
        sg.inputs,
        codes,
        sorted(arcs),
        find(sg.initial),
        name=sg.name,
    )


# ----------------------------------------------------------------------
# Separation constraints from MC violations
# ----------------------------------------------------------------------
def _region_transition_targets(
    sg: StateGraph, verdict: RegionVerdict
) -> Dict[State, List[State]]:
    """For each region state, the target(s) of the region's own transition."""
    event = verdict.er.event
    return {
        state: sg.fire(state, event)
        for state in verdict.er.states
    }


def add_separation_constraints(
    encoding: LabelEncoding,
    sg: StateGraph,
    verdict: RegionVerdict,
    orientation: int,
) -> None:
    """Constrain the labelling so the failed region becomes coverable.

    ``orientation = 1``: the (reshaped) region reads ``x = 1``.  Each
    region state is labelled 1, or labelled U with the region's own
    transition delayed to the risen phase (targets labelled 1 or D) --
    the paper's Figure-3 move of putting the region behind ``x+``.
    Stuck states must lose their dangerous phase at ``x = 1``:

    * states where the region's signal is *stable* at the wrong level
      (a latch would set/reset spuriously if covered) are pinned to the
      opposite value outright;
    * states of the *opposite* excitation region may instead be labelled
      D with that opposite transition delayed past ``x-`` -- at the
      covered phase the signal is then stable and covering it is
      harmless (this is exactly how Figure 3 neutralises state 0001 of
      ER(-d) for the ``Sd`` cube).

    ``orientation = 0`` is the mirror image.
    """
    if orientation == 1:
        region_labels = ("1", "U")
        rise_label, region_stable = "U", ("1", "D")
        stuck_value_label = "0"
        stuck_delay_label, stuck_targets = "D", ("0", "U")
    else:
        region_labels = ("0", "D")
        rise_label, region_stable = "D", ("0", "U")
        stuck_value_label = "1"
        stuck_delay_label, stuck_targets = "U", ("1", "D")

    targets = _region_transition_targets(sg, verdict)
    for state in verdict.er.states:
        encoding.require_label(state, region_labels)
        for target in targets[state]:
            encoding.require_implication(state, rise_label, target, region_stable)
    for stuck in verdict.stuck_stable:
        encoding.require_label(stuck, (stuck_value_label,))
    event = verdict.er.event.inverse()
    for stuck in verdict.stuck_opposite:
        encoding.require_label(stuck, (stuck_value_label, stuck_delay_label))
        for target in sg.fire(stuck, event):
            encoding.require_implication(
                stuck, stuck_delay_label, target, stuck_targets
            )


# ----------------------------------------------------------------------
# The insertion loop
# ----------------------------------------------------------------------
@dataclass
class InsertionRound:
    """Record of one accepted signal insertion."""

    signal: str
    labelling: Dict[State, str]
    failures_before: int
    failures_after: int
    models_tried: int


@dataclass
class InsertionResult:
    """Outcome of :func:`insert_state_signals`."""

    sg: StateGraph
    report: MCReport
    rounds: List[InsertionRound] = field(default_factory=list)

    @property
    def added_signals(self) -> List[str]:
        return [r.signal for r in self.rounds]

    @property
    def satisfied(self) -> bool:
        return self.report.satisfied

    def describe(self) -> str:
        """Human-readable placement of each inserted signal.

        Reports, per signal, where it rises and falls in terms of the
        *original* behaviour: the trigger events of its excitation
        regions in the final state graph -- the way petrify-style tools
        narrate CSC/MC repairs ("x+ is inserted after ...").
        """
        from repro.sg.regions import excitation_regions, trigger_events

        if not self.rounds:
            return "no state signals inserted (MC already satisfied)"
        lines = [
            f"{len(self.rounds)} state signal(s) inserted: "
            f"{', '.join(self.added_signals)}"
        ]
        for round_ in self.rounds:
            lines.append(
                f"  {round_.signal}: repaired "
                f"{round_.failures_before - round_.failures_after} violation(s) "
                f"({round_.models_tried} candidate labelling(s) examined)"
            )
        for signal in self.added_signals:
            for er in excitation_regions(self.sg, signal):
                triggers = sorted(
                    str(e) for e in trigger_events(self.sg, er)
                )
                edge = "+" if er.direction == 1 else "-"
                lines.append(
                    f"  {signal}{edge} (occurrence {er.index}) fires after "
                    f"{' / '.join(triggers) if triggers else 'the initial state'}"
                )
        return "\n".join(lines)


def _new_input_conflicts(original: StateGraph, expanded: StateGraph) -> bool:
    """True if the expansion introduced input conflicts absent before.

    Expanded conflict states project to original ones: a conflict at
    ``(s, p)`` on input ``i`` is acceptable only if state ``s`` already
    had a conflict on ``i`` caused by the same event in the original.
    """
    allowed = {
        (c.state, c.signal, c.by) for c in conflict_states(original, original.inputs)
    }
    for conflict in conflict_states(expanded, expanded.inputs):
        state = conflict.state[0] if isinstance(conflict.state, tuple) else conflict.state
        if (state, conflict.signal, conflict.by) not in allowed:
            return True
    return False


def add_alias_entry_constraints(
    encoding: LabelEncoding, sg: StateGraph
) -> int:
    """Require the new signal to split same-code entries of region families.

    When one excitation function has several regions whose minimal
    (entry) states carry identical codes -- the multi-occurrence pattern
    of the duplicator-style controllers -- no cube can tell the
    occurrences apart, and repairing one region just moves the violation
    to its sibling.  Pinning every same-code entry pair to *opposite
    stable values* of the inserted signal makes one insertion settle the
    whole family.  Returns the number of pairs constrained (the caller
    drops these constraints when they make the round unsatisfiable).
    """
    from repro.sg.regions import all_excitation_regions, minimal_states

    families: Dict[Tuple[str, int], List] = {}
    for er in all_excitation_regions(sg, only_non_inputs=True):
        families.setdefault((er.signal, er.direction), []).append(er)
    pairs = 0
    for regions in families.values():
        if len(regions) < 2:
            continue
        entries = []
        for er in regions:
            minima = minimal_states(sg, er)
            if len(minima) == 1:
                entries.append(next(iter(minima)))
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                if sg.code(entries[i]) == sg.code(entries[j]):
                    encoding.require_distinct_values(entries[i], entries[j])
                    pairs += 1
    return pairs


def labelling_from_partition(
    sg: StateGraph, partition: Dict[State, int]
) -> Optional[Dict[State, str]]:
    """Derive a canonical 4-valued labelling from a 0/1 state partition.

    ``partition[s]`` is the value the new signal should hold at ``s``.
    Boundary arcs are absorbed into the *target* state: a 0->1 crossing
    makes the target a U state (the signal rises inside it), a 1->0
    crossing a D state.  U/D then propagates forward across *input*
    arcs -- an input event can never wait for the new signal, so the
    rise/fall region must extend until a non-input arc can take the
    delay.  Returns ``None`` when the absorption conflicts (a state
    would need to rise and fall at once, or the closure cannot
    stabilise).
    """
    labels: Dict[State, str] = {
        s: "1" if partition[s] else "0" for s in sg.states
    }
    marks: Dict[State, str] = {}
    for source, event, target in sg.arcs():
        vs, vt = partition[source], partition[target]
        if vs == vt:
            continue
        mark = "U" if (vs, vt) == (0, 1) else "D"
        if marks.get(target, mark) != mark:
            return None
        marks[target] = mark
    # forward closure across input arcs, bounded by the state count
    changed = True
    guard = 0
    while changed:
        changed = False
        guard += 1
        if guard > len(sg.states) + 2:
            return None
        for source, event, target in sg.arcs():
            if event.signal not in sg.inputs:
                continue
            mark = marks.get(source)
            if mark is None:
                continue
            needed = partition[target] == partition[source]
            if not needed:
                continue
            if marks.get(target) not in (None, mark):
                return None
            if marks.get(target) != mark:
                marks[target] = mark
                changed = True
    for state, mark in marks.items():
        # a U state must sit on the 1 side (the signal rises into the
        # state's final value), a D state on the 0 side
        if mark == "U" and partition[state] != 1:
            return None
        if mark == "D" and partition[state] != 0:
            return None
        labels[state] = mark
    if "U" not in labels.values() or "D" not in labels.values():
        return None
    # final validation against the full edge-rule table (catches e.g. a
    # U state whose *input* successor arc crosses back to the 0 side)
    from repro.core.assignment import allowed_pair

    for source, event, target in sg.arcs():
        if not allowed_pair(
            labels[source], labels[target], event.signal in sg.inputs
        ):
            return None
    return labels


def _deadline_expired(deadline: Optional[float]) -> bool:
    return deadline is not None and time.monotonic() > deadline


def _partition_candidates(
    sg: StateGraph,
    report: MCReport,
    per_set_budget: int = 30,
    deadline: Optional[float] = None,
):
    """High-quality candidates from 2-valued partitions with few crossings.

    For each failed region (both orientations), a small SAT instance
    enumerates partitions pinning the region to one side and its stuck
    states to the other, with the number of boundary crossings bounded
    (2, then 4) -- the shape of handshake-style insertions.  Each
    partition is canonicalised by :func:`labelling_from_partition`.
    """
    from repro.sat.cnf import CNF
    from repro.sat.solver import Solver, SolverTimeout

    states = sorted(sg.states, key=str)
    arcs = sg.arcs()
    for verdict in report.failed:
        for orientation in (0, 1):
            region_value = orientation
            stuck_value = 1 - orientation
            for crossing_bound in (2, 4):
                if _deadline_expired(deadline):
                    return
                cnf = CNF()
                var = {s: cnf.var(("v", s)) for s in states}
                for state in verdict.er.states:
                    cnf.add(var[state] if region_value else -var[state])
                for stuck in verdict.stuck_states:
                    cnf.add(var[stuck] if stuck_value else -var[stuck])
                boundary_lits = []
                for source, _, target in arcs:
                    b = cnf.new_var()
                    # b <-> V(source) != V(target)
                    cnf.add(-b, var[source], var[target])
                    cnf.add(-b, -var[source], -var[target])
                    cnf.add(b, -var[source], var[target])
                    cnf.add(b, var[source], -var[target])
                    boundary_lits.append(b)
                cnf.at_most_k(boundary_lits, crossing_bound)
                solver = Solver.from_cnf(cnf)
                produced = 0
                while produced < per_set_budget:
                    if _deadline_expired(deadline):
                        return
                    try:
                        model = solver.solve(deadline=deadline)
                    except SolverTimeout:
                        return
                    if model is None:
                        break
                    produced += 1
                    partition = {s: int(model[var[s]]) for s in states}
                    # incremental blocking clause: lazy re-preparation
                    # keeps the model sequence identical to rebuilding
                    # the solver per query
                    solver.add_clause(
                        [-var[s] if partition[s] else var[s] for s in states]
                    )
                    labelling = labelling_from_partition(sg, partition)
                    if labelling is not None:
                        yield labelling


def _candidate_labellings(
    sg: StateGraph,
    report: MCReport,
    per_set_budget: int = 20,
    deadline: Optional[float] = None,
):
    """Yield labellings from progressively weaker constraint sets.

    Schedule (strongest first):

    * cover *all* failed regions, then shrinking prefixes of the list
      (regions left out get repaired in later rounds);
    * per subset, both orientations of the new signal;
    * per orientation, increasing switching-cardinality tiers -- at most
      1, 2, 3, then unboundedly many U states (and likewise D states).
      Small tiers strongly bias the search towards the paper-style
      insertions with one rise region and few fall regions.
    """
    from itertools import product

    # High-quality partition-derived candidates first.
    emitted = set()
    for labelling in _partition_candidates(sg, report, deadline=deadline):
        key = tuple(sorted((str(s), l) for s, l in labelling.items()))
        if key not in emitted:
            emitted.add(key)
            yield labelling

    failed = report.failed
    states = sorted(sg.states, key=str)
    tiers = [1, 2, None]
    # Constraint sets, strongest intent first: the full failed set, then
    # each single region (letting later rounds finish the job), then the
    # intermediate prefixes.
    subsets: List[List[RegionVerdict]] = []
    if len(failed) > 1:
        subsets.append(list(failed))
    subsets += [[verdict] for verdict in failed]
    subsets += [failed[:count] for count in range(len(failed) - 1, 1, -1)]

    def build_sets():
        for subset in subsets:
            count = len(subset)
            if count <= 3:
                combos = list(product((1, 0), repeat=count))
            else:
                combos = [(1,) * count, (0,) * count]
            for combo in combos:
                for with_alias in (True, False):
                    for tier in tiers:
                        if _deadline_expired(deadline):
                            return
                        encoding = LabelEncoding(sg)
                        for verdict, orientation in zip(subset, combo):
                            add_separation_constraints(
                                encoding, sg, verdict, orientation
                            )
                        if (
                            with_alias
                            and add_alias_entry_constraints(encoding, sg) == 0
                        ):
                            continue  # identical to the with_alias=False pass
                        if tier is not None:
                            encoding.cnf.at_most_k(
                                [encoding.var(s, "U") for s in states], tier
                            )
                            encoding.cnf.at_most_k(
                                [encoding.var(s, "D") for s in states], tier
                            )
                        yield encoding

    # Round-robin across the sets: one model from each live set per
    # sweep, so early exhaustive sets cannot starve the later ones.
    from repro.sat.solver import SolverTimeout

    live = [[encoding, 0] for encoding in build_sets()]
    while live:
        still_live = []
        for entry in live:
            if _deadline_expired(deadline):
                return
            encoding, produced = entry
            try:
                labelling = encoding.solve(deadline=deadline)
            except SolverTimeout:
                return
            if labelling is None:
                continue
            yield labelling
            encoding.forbid_model(labelling)
            entry[1] = produced + 1
            if entry[1] < per_set_budget:
                still_live.append(entry)
        live = still_live


def _mc_score(report: MCReport) -> Tuple[int, int]:
    return (
        len(report.failed),
        sum(len(v.stuck_states) for v in report.failed),
    )


def _failure_signature(report: MCReport) -> Tuple[str, ...]:
    return tuple(sorted(v.er.transition_name for v in report.failed))


def _analyze_expanded(
    expanded: StateGraph, analysis_cache
) -> Tuple[StateGraph, MCReport]:
    """MC-analyze a candidate expansion, memoised by graph fingerprint.

    On a hit both the cached graph (with its warm analysis caches) and
    its report are returned, keeping ``report.sg`` consistent with the
    graph threaded onwards.
    """
    if analysis_cache is None:
        return expanded, analyze_mc(expanded)
    from repro.pipeline.artifacts import fingerprint_state_graph

    key = fingerprint_state_graph(expanded)
    hit = analysis_cache.get(key)
    if hit is not None:
        perf.count("insertion.analysis-reuse")
        return hit
    report = analyze_mc(expanded)
    analysis_cache[key] = (expanded, report)
    return expanded, report


@dataclass
class _BeamNode:
    sg: StateGraph
    report: MCReport
    rounds: List[InsertionRound]

    @property
    def score(self) -> Tuple[int, int]:
        return _mc_score(self.report)


def insert_state_signals(
    sg: StateGraph,
    max_signals: int = 8,
    max_models: int = 400,
    signal_prefix: str = "x",
    beam_width: int = 6,
    deadline: Optional[float] = None,
    report: Optional[MCReport] = None,
    analysis_cache=None,
) -> InsertionResult:
    """Insert internal signals until the MC requirement holds.

    The search is a beam over insertion rounds: each beam node is a
    partially repaired state graph; one round expands every node with
    candidate labellings for one fresh signal, keeps the ``beam_width``
    best distinct outcomes, and stops as soon as some expansion has no
    remaining MC violations.  Beam search avoids the lock-in of greedy
    acceptance: the best single-step improvement is not always on the
    path to the cheapest complete repair (multi-occurrence controllers
    like the duplicator need coordinated separations across rounds).

    ``deadline`` is an absolute :func:`time.monotonic` timestamp bounding
    the search (the candidate loop is SAT-driven and can dominate the
    whole pipeline on adversarial graphs); when the clock passes it the
    search stops with an :class:`InsertionError` whose message starts
    with ``"insertion deadline expired"`` -- an *inconclusive* outcome,
    not a proof that no repair exists.

    Returns the transformed state graph, the final MC report and the
    per-round history.  Raises :class:`InsertionError` when no candidate
    labelling improves any beam node within the budgets.

    ``report`` lets callers that already hold the MC analysis of ``sg``
    (the staged pipeline memoises it) skip the redundant re-analysis.

    ``analysis_cache`` is an optional mapping (``.get``/``__setitem__``)
    from expanded-graph fingerprints to ``(graph, MCReport)`` pairs; the
    beam search consults it before analyzing a candidate and reuses
    *both* cached objects on a hit.  ``analyze_mc`` is deterministic per
    graph content, so the cache changes nothing about the search outcome
    — it only skips repeated analyses (duplicate candidates within one
    search, or re-searches after a spec edit).
    """
    report = report if report is not None else analyze_mc(sg)
    if report.satisfied:
        return InsertionResult(sg=sg, report=report, rounds=[])

    beam: List[_BeamNode] = [_BeamNode(sg=sg, report=report, rounds=[])]
    for round_index in range(max_signals):
        expansions: List[_BeamNode] = []
        seen_signatures = set()
        total_tried = 0
        for node in beam:
            signal = _fresh_signal_name(node.sg, signal_prefix, round_index)
            failures_before = len(node.report.failed)
            tried = 0
            for labelling in _candidate_labellings(
                node.sg, node.report, deadline=deadline
            ):
                tried += 1
                total_tried += 1
                try:
                    expanded = expand_with_signal(node.sg, labelling, signal)
                except ValueError:
                    continue
                if _new_input_conflicts(node.sg, expanded):
                    continue
                expanded, new_report = _analyze_expanded(expanded, analysis_cache)
                child = _BeamNode(
                    sg=expanded,
                    report=new_report,
                    rounds=node.rounds
                    + [
                        InsertionRound(
                            signal=signal,
                            labelling=labelling,
                            failures_before=failures_before,
                            failures_after=len(new_report.failed),
                            models_tried=tried,
                        )
                    ],
                )
                if new_report.satisfied:
                    return InsertionResult(
                        sg=expanded, report=new_report, rounds=child.rounds
                    )
                if child.score <= node.score:
                    signature = _failure_signature(new_report)
                    if signature not in seen_signatures:
                        seen_signatures.add(signature)
                        expansions.append(child)
                if tried >= max_models:
                    break
        if _deadline_expired(deadline):
            raise InsertionError(
                f"insertion deadline expired in round {round_index + 1} "
                f"after {total_tried} candidates"
            )
        improving = [
            child
            for child in expansions
            if child.score < min(node.score for node in beam)
            or len(child.rounds) == 1
        ]
        pool = improving or expansions
        if not pool:
            failed = beam[0].report.failed
            raise InsertionError(
                f"no labelling repaired {failed[0].er} "
                f"(tried {total_tried} candidates in round {round_index + 1})"
            )
        pool.sort(key=lambda child: child.score)
        beam = pool[:beam_width]
    raise InsertionError(
        f"still {len(beam[0].report.failed)} MC violations after "
        f"{max_signals} inserted signals"
    )


def _fresh_signal_name(sg: StateGraph, prefix: str, index: int) -> str:
    if index == 0 and prefix not in sg.signals:
        return prefix
    candidate = f"{prefix}{index}"
    while candidate in sg.signals:
        index += 1
        candidate = f"{prefix}{index}"
    return candidate
