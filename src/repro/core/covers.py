"""Cover cubes and monotonous covers (Definitions 15-17, 19).

A *cover cube* for ER(*a_i) (Def. 15) may only use literals on signals
*ordered* with the transition (no transition of the literal signal is
excited inside the region); the literal value is the signal's (constant)
value throughout the region.  Consequently every cover cube of a region
is obtained from the *smallest cover cube* (Lemma 3: the minterm of the
minimal state stripped of concurrent signals and of the region's own
signal) by dropping literals.

A cover cube is a **monotonous cover** (Def. 17) when

1. it covers every state of ER(*a_i),
2. its value changes at most once along any trace of states that stays
   inside CFR(*a_i) = ER u QR, and
3. it covers no reachable state outside CFR(*a_i).

Condition (2) is checked exactly: a violation exists iff some change
edge's head can reach (inside the CFR) the tail of a change edge --
including itself through a CFR-internal cycle -- since any two changes in
sequence imply a trace with at least two changes, and a cycle implies
unboundedly many.

Definition 19 generalises the notion to a *set* of excitation regions so
one AND gate can serve several regions (Sec. VI, Theorem 5).

**Performance.**  All candidate-cube loops here are exponential in the
literal count, so the per-candidate work is kept O(L) word operations
via the per-graph bitmask engine (:mod:`repro.sg.bitengine`): each
forbidden/required state set is a cached bitset, each literal's
satisfying-state set is a cached bitset, and a candidate is judged by
OR/AND-ing those instead of rescanning every state of the graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro import perf
from repro.boolean.cube import Cube
from repro.sg.bitengine import BitEngine, bit_analysis
from repro.sg.graph import State, StateGraph
from repro.sg.regions import (
    ExcitationRegion,
    constant_function_region,
    excited_value_sets,
    ordered_signals,
)


# ----------------------------------------------------------------------
# Cover cubes (Definition 15, Lemma 3)
# ----------------------------------------------------------------------
def smallest_cover_cube(sg: StateGraph, er: ExcitationRegion) -> Cube:
    """The maximal-literal cover cube of the region (Lemma 3).

    Every ordered signal keeps its (constant) region value as a literal;
    dropping literals yields every other cover cube of the region.
    Cached per (graph, region).
    """
    cached = sg._analysis_cache.get(("scc", er))
    if cached is not None:
        return cached
    engine = bit_analysis(sg)
    lowered = getattr(engine, "smallest_cover_cube_lowered", None)
    if lowered is not None:  # word-lane engine: values off the packed code
        cube = lowered(sg, er)
    else:
        some_state = next(iter(er.states))
        literals = {}
        for signal in ordered_signals(sg, er):
            literals[signal] = sg.value(some_state, signal)
        cube = Cube(literals)
    sg._analysis_cache[("scc", er)] = cube
    return cube


def is_cover_cube(sg: StateGraph, er: ExcitationRegion, cube: Cube) -> bool:
    """Definition 15: literals only on ordered signals, at region values."""
    return _is_sub_cover(sg, er, cube)


def _is_sub_cover(sg: StateGraph, er: ExcitationRegion, cube: Cube) -> bool:
    smallest = smallest_cover_cube(sg, er)
    for signal, value in cube.literals:
        if smallest.value_of(signal) != value:
            return False
    return True


# ----------------------------------------------------------------------
# Cached forbidden/required bitsets (Definitions 13, 16)
# ----------------------------------------------------------------------
def _forbidden_bits(sg: StateGraph, signal: str, direction: int) -> int:
    """Bitset of states a Def.-16-correct cube must *not* cover.

    For a rising region: 1*-set(a) u 0-set(a); falling mirrored.
    Cached per (graph, signal, direction).
    """
    cache = sg._analysis_cache
    key = ("forbidden_bits", signal, direction)
    cached = cache.get(key)
    if cached is not None:
        return cached
    engine = bit_analysis(sg)
    lowered = getattr(engine, "forbidden_bits_lowered", None)
    if lowered is not None:  # word-lane engine: three cached bitsets
        bits = lowered(signal, direction)
        cache[key] = bits
        return bits
    sets = excited_value_sets(sg, signal)
    if direction == 1:
        forbidden = sets["1*-set"] | sets["0-set"]
    else:
        forbidden = sets["0*-set"] | sets["1-set"]
    bits = engine.bits_of(forbidden)
    cache[key] = bits
    return bits


def _er_bits(sg: StateGraph, er: ExcitationRegion) -> int:
    return bit_analysis(sg).region_bits(("er", er), er.states)


def _cfr_bits(sg: StateGraph, er: ExcitationRegion) -> int:
    engine = bit_analysis(sg)
    lowered = getattr(engine, "cfr_bits_lowered", None)
    if lowered is not None:  # word-lane engine: no frozenset round-trip
        return lowered(er)
    return engine.region_bits(("cfr", er), constant_function_region(sg, er))


def _literal_masks(
    engine: BitEngine, literals: Sequence[Tuple[str, int]]
) -> List[int]:
    """Per literal, the bitset of states *satisfying* it."""
    position_of = engine.position
    return [
        engine.literal_bits(position_of[signal], value)
        for signal, value in literals
    ]


# ----------------------------------------------------------------------
# Consistent excitation functions (Definition 13)
# ----------------------------------------------------------------------
def is_consistent_excitation_function(
    sg: StateGraph, signal: str, cover, direction: int
) -> bool:
    """Definition 13: the function is 1 on the whole excited set of its
    direction and 0 on the opposite excited set and the preceding stable
    set (its value on the *following* stable set is free).

    For ``direction = +1`` (an up-excitation function ``Sa``): value 1 on
    0*-set(a), value 0 on 1*-set(a) and 0-set(a).  Mirrored for ``-1``.
    Every excitation function synthesised from (generalised) MC cubes
    satisfies this by construction -- asserted in the test-suite.
    """
    engine = bit_analysis(sg)
    sets = excited_value_sets(sg, signal)
    if direction == 1:
        must_one = sets["0*-set"]
        must_zero = sets["1*-set"] | sets["0-set"]
    else:
        must_one = sets["1*-set"]
        must_zero = sets["0*-set"] | sets["1-set"]
    ones = _function_bits(engine, cover)
    if ones is None:  # unknown callable: fall back to per-state evaluation
        evaluator = cover.evaluator(sg.signals)
        return all(evaluator(sg.code(s)) for s in must_one) and not any(
            evaluator(sg.code(s)) for s in must_zero
        )
    must_one_bits = engine.bits_of(must_one)
    must_zero_bits = engine.bits_of(must_zero)
    return must_one_bits & ~ones == 0 and ones & must_zero_bits == 0


def _function_bits(engine: BitEngine, cover) -> Optional[int]:
    """Bitset where a Cube (AND) or Cover (OR of cubes) evaluates to 1."""
    if isinstance(cover, Cube):
        return engine.cube_bits(cover)
    cubes = getattr(cover, "cubes", None)
    if cubes is not None:
        bits = 0
        for cube in cubes:
            bits |= engine.cube_bits(cube)
        return bits
    return None


# ----------------------------------------------------------------------
# Correct covering (Definition 16)
# ----------------------------------------------------------------------
def covers_correctly(sg: StateGraph, er: ExcitationRegion, cube: Cube) -> bool:
    """Definition 16 over the reachable states.

    For a rising region the cube must not cover 1*-set(a) u 0-set(a);
    for a falling region it must not cover 0*-set(a) u 1-set(a).
    """
    engine = bit_analysis(sg)
    forbidden = _forbidden_bits(sg, er.signal, er.direction)
    return engine.cube_bits(cube) & forbidden == 0


def find_correct_cover_cubes(
    sg: StateGraph, er: ExcitationRegion
) -> Optional[List[Cube]]:
    """A set of cover cubes jointly covering the region correctly.

    This is the Beerel-style requirement (each state of the ER covered by
    at least one *correct* cover cube; monotonicity not demanded).  For
    each region state, the best chance is the most specific cover cube
    that still covers that state -- i.e. the smallest cover cube itself,
    which covers all of them; if it is not correct, the region state's
    minterm restricted to ordered signals is refined per state.  Returns
    ``None`` if some region state cannot be covered correctly at all.
    """
    engine = bit_analysis(sg)
    smallest = smallest_cover_cube(sg, er)
    literals = smallest.literals
    forbidden = _forbidden_bits(sg, er.signal, er.direction)
    # Correctness as a hitting set: every forbidden state must fail at
    # least one kept literal.  Each literal's exclusion set over the
    # forbidden states is one cached bitset, so a candidate subset is
    # judged in O(|subset|) word ORs.
    satisfy = _literal_masks(engine, literals)
    exclusion = [forbidden & ~bits for bits in satisfy]
    reachable_exclusion = 0
    for mask in exclusion:
        reachable_exclusion |= mask
    candidates = 0
    if reachable_exclusion == forbidden:
        # candidate single cubes: subsets of the smallest cube's literals,
        # fewest literals first (the paper's equations (1) use the cheapest
        # correct cover, e.g. the single literal a for ER(+c_1))
        indices = range(len(literals))
        for size in range(0, len(literals) + 1):
            for subset in combinations(indices, size):
                candidates += 1
                excluded = 0
                for i in subset:
                    excluded |= exclusion[i]
                if excluded == forbidden:
                    perf.count("cube.candidates", candidates)
                    return [Cube(dict(literals[i] for i in subset))]
    perf.count("cube.candidates", candidates)
    # No single Def.-15 cube is correct (e.g. ER(+d_1) of Figure 1):
    # fall back to several cubes, each covering part of the region.
    return _per_state_correct_cubes(sg, er)


def _per_state_correct_cubes(
    sg: StateGraph, er: ExcitationRegion
) -> Optional[List[Cube]]:
    """Cover each region state with a correct cube over its stable signals.

    When no single Def.-15 cube is correct (e.g. ER(+d_1) of Figure 1),
    the implementation needs several cubes; each may use literals on any
    signal *stable at the states it covers* -- values constant across the
    covered subset.  We grow one cube per still-uncovered state: start
    from the full minterm minus the region's signal, then drop literals
    greedily while the cube stays correct, preferring cubes that cover
    more of the region.
    """
    engine = bit_analysis(sg)
    forbidden = _forbidden_bits(sg, er.signal, er.direction)
    uncovered: Set[State] = set(er.states)
    result: List[Cube] = []
    guard = 0
    while uncovered:
        guard += 1
        if guard > len(er.states) + 1:
            return None
        seed = min(uncovered, key=str)
        cube = Cube(
            {s: v for s, v in sg.code_dict(seed).items() if s != er.signal}
        )
        if engine.cube_bits(cube) & forbidden:
            return None
        # greedy literal dropping: try to widen the cube so it swallows
        # more region states while staying correct
        improved = True
        while improved:
            improved = False
            for signal, _ in cube.literals:
                candidate = cube.without((signal,))
                if engine.cube_bits(candidate) & forbidden == 0:
                    cube = candidate
                    improved = True
                    break
        covered_now = {
            s for s in uncovered if engine.covers_state(cube, s)
        }
        if not covered_now:
            return None
        uncovered -= covered_now
        result.append(cube)
    return result


# ----------------------------------------------------------------------
# Monotonous covers (Definition 17)
# ----------------------------------------------------------------------
@dataclass
class CoverDiagnostics:
    """Outcome of a monotonous-cover check, with witnesses for repair."""

    cube: Cube
    covers_all_er: bool
    monotonous: bool
    outside_cfr: FrozenSet[State]  # reachable states covered outside CFR
    change_witness: Optional[Tuple[State, State, State, State]] = None

    @property
    def is_mc(self) -> bool:
        return self.covers_all_er and self.monotonous and not self.outside_cfr


def _monotonicity_violation(
    sg: StateGraph, cfr: FrozenSet[State], cube: Cube
) -> Optional[Tuple[State, State, State, State]]:
    """A witness that the cube is not monotonous inside the CFR.

    Inside the constant function region a legitimate cube can only
    *fall*: it is 1 throughout the excitation region (which is entered
    exclusively from outside the CFR -- a quiescent state never steps
    back into the region), and after falling in the quiescent region it
    must stay 0.  Any 0 -> 1 change edge inside the CFR is therefore a
    violation of Definition 17(2): either the cube re-rises after
    falling (two changes on one trace), or it rises on a trace that
    entered the quiescent region from a foreign path -- an AND gate
    turning on with nobody to acknowledge it (exactly the Figure-4
    hazard mechanism, just inside the QR).

    Two 1 -> 0 edges in trace order are impossible without an
    intervening rise, so banning rises is the complete check.
    """
    engine = bit_analysis(sg)
    cfr_bits = engine.bits_of(cfr)
    ones = engine.cube_bits(cube)
    witness = engine.first_rise_edge(cfr_bits, ones)
    if witness is None:
        return None
    source, target = witness
    return (source, target, source, target)


def check_monotonous_cover(
    sg: StateGraph,
    er: ExcitationRegion,
    cube: Cube,
    cfr: Optional[FrozenSet[State]] = None,
) -> CoverDiagnostics:
    """Full Definition-17 check with diagnostics."""
    engine = bit_analysis(sg)
    if cfr is None:
        cfr_bits = _cfr_bits(sg, er)
    else:
        cfr_bits = engine.bits_of(cfr)
    ones = engine.cube_bits(cube)
    covers_all = _er_bits(sg, er) & ~ones == 0
    outside = engine.states_of(ones & ~cfr_bits)
    witness_edge = engine.first_rise_edge(cfr_bits, ones)
    witness = None
    if witness_edge is not None:
        source, target = witness_edge
        witness = (source, target, source, target)
    return CoverDiagnostics(
        cube=cube,
        covers_all_er=covers_all,
        monotonous=witness is None,
        outside_cfr=outside,
        change_witness=witness,
    )


def is_monotonous_cover(sg: StateGraph, er: ExcitationRegion, cube: Cube) -> bool:
    return check_monotonous_cover(sg, er, cube).is_mc


def find_monotonous_cover(
    sg: StateGraph,
    er: ExcitationRegion,
    max_literal_budget: int = 18,
) -> Optional[Cube]:
    """Search the cover-cube lattice of the region for an MC cube.

    Candidates are subsets of the smallest cover cube's literal set
    (every cover cube by Def. 15).  Condition (3) is antitone in the
    literal set (more literals exclude more states), so if the full cube
    already covers a reachable state outside the CFR no subset can
    succeed and the search exits immediately.  Otherwise subsets are
    tried smallest-first; the first cube passing the correctness bitset
    filter and the monotonicity check wins (ties broken towards fewer
    literals at equal size by ordering).

    Every per-candidate test is a handful of big-int operations: the
    outside-CFR condition is a hitting-set over cached per-literal
    exclusion bitsets, and the monotonicity check walks only the 0-states
    of the CFR against a successor-bitset table.
    """
    engine = bit_analysis(sg)
    lowered = getattr(engine, "find_monotonous_cover_lowered", None)
    if lowered is not None:  # word-lane engine: block-batched candidates
        return lowered(sg, er, max_literal_budget)
    cfr_bits = _cfr_bits(sg, er)
    full = smallest_cover_cube(sg, er)
    outside_all = engine.all_states_bits & ~cfr_bits
    full_ones = engine.cube_bits(full)
    if full_ones & outside_all:
        return None  # condition (3) can only get worse with fewer literals

    literals = full.literals
    if len(literals) > max_literal_budget:
        # too wide for exhaustive search; fall back to greedy drops
        cfr = constant_function_region(sg, er)
        if check_monotonous_cover(sg, er, full, cfr).is_mc:
            return full
        return _greedy_mc_search(sg, er, full, cfr)

    # Condition (3) as a hitting-set precondition: every reachable state
    # outside the CFR must be excluded by at least one kept literal.
    # Each literal's exclusion set is a cached bitmask, so the
    # smallest-first subset enumeration discards non-covers in O(|subset|)
    # before paying for the monotonicity check.
    satisfy = _literal_masks(engine, literals)
    exclusion = [outside_all & ~bits for bits in satisfy]
    need = outside_all

    # Smallest literal sets first: the paper's examples use the cheapest
    # admissible cube (e.g. the single literal a for ER(+c_1) of Fig. 1).
    indices = range(len(literals))
    candidates = 0
    mono_checks = 0
    try:
        for size in range(0, len(literals) + 1):
            for subset in combinations(indices, size):
                candidates += 1
                excluded = 0
                for i in subset:
                    excluded |= exclusion[i]
                if excluded != need:
                    continue
                ones = engine.all_states_bits
                for i in subset:
                    ones &= satisfy[i]
                mono_checks += 1
                if not engine.has_rise_edge(cfr_bits, ones):
                    return Cube(dict(literals[i] for i in subset))
        return None
    finally:
        perf.count("cube.candidates", candidates)
        perf.count("cube.mono_checks", mono_checks)


def _greedy_mc_search(
    sg: StateGraph, er: ExcitationRegion, full: Cube, cfr: FrozenSet[State]
) -> Optional[Cube]:
    engine = bit_analysis(sg)
    cfr_bits = engine.region_bits(("cfr", er), cfr)
    er_bits = _er_bits(sg, er)
    outside_all = engine.all_states_bits & ~cfr_bits
    cube = full
    for _ in range(len(full)):
        ones = engine.cube_bits(cube)
        witness = engine.first_rise_edge(cfr_bits, ones)
        if witness is None:
            if er_bits & ~ones == 0 and not ones & outside_all:
                return cube
            return None
        # drop a literal implicated in the *second* change edge
        u2, v2 = witness
        diff = engine.packed[u2] ^ engine.packed[v2]
        position_of = engine.position
        changed = [
            s for s, _ in cube.literals if diff >> position_of[s] & 1
        ]
        if not changed:
            return None
        cube = cube.without(changed[:1])
        if engine.cube_bits(cube) & outside_all:
            return None
    ones = engine.cube_bits(cube)
    if (
        er_bits & ~ones == 0
        and not ones & outside_all
        and not engine.has_rise_edge(cfr_bits, ones)
    ):
        return cube
    return None


# ----------------------------------------------------------------------
# Generalised MC over region sets (Definition 19)
# ----------------------------------------------------------------------
def find_generalized_monotonous_cover(
    sg: StateGraph, ers: Sequence[ExcitationRegion]
) -> Optional[Cube]:
    """An MC cube for a whole *set* of regions (Definition 19), if any.

    Candidate literals are those common to every region's smallest cover
    cube (a shared cube must be a cover cube of each region).  As in the
    single-region search, condition (3) is antitone in the literal set,
    so the full common cube failing (3) kills the search; otherwise
    subsets are tried smallest-first with the same bitset filters.
    """
    if not ers:
        return None
    if len(ers) == 1:
        return find_monotonous_cover(sg, ers[0])
    common = set(smallest_cover_cube(sg, ers[0]).literals)
    for er in ers[1:]:
        common &= set(smallest_cover_cube(sg, er).literals)
    if not common:
        return None
    engine = bit_analysis(sg)
    literals = sorted(common)
    full = Cube(dict(literals))
    union_cfr_bits = 0
    for er in ers:
        union_cfr_bits |= _cfr_bits(sg, er)
    if engine.cube_bits(full) & ~union_cfr_bits & engine.all_states_bits:
        return None  # condition (3) unfixable by dropping literals
    for size in range(1, len(literals) + 1):
        for subset in combinations(literals, size):
            cube = Cube(dict(subset))
            if check_generalized_mc(sg, ers, cube):
                return cube
    return None


def _partitions(items: Sequence):
    """All set partitions of ``items`` (finest first by construction)."""
    items = list(items)
    if not items:
        yield []
        return
    head, rest = items[0], items[1:]
    for partition in _partitions(rest):
        yield [[head]] + partition
        for i in range(len(partition)):
            yield partition[:i] + [[head] + partition[i]] + partition[i + 1 :]


def find_region_cover_assignment(
    sg: StateGraph,
    regions: Sequence[ExcitationRegion],
    precomputed: Optional[Dict[ExcitationRegion, Optional[Cube]]] = None,
    max_regions_exact: int = 6,
) -> Optional[Dict[ExcitationRegion, Cube]]:
    """Assign one (possibly shared) MC cube to every region of a function.

    This realises Theorem 5's premise for one excitation function: each
    region is covered by exactly one cube, each cube a (generalised)
    monotonous cover of the set of regions it serves.  Partitions of the
    region list are tried finest-first, so gates are shared only when a
    region has no private MC grouping option.  Returns ``None`` when no
    partition works.
    """
    regions = list(regions)
    if not regions:
        return {}
    single = dict(precomputed or {})
    for er in regions:
        if er not in single:
            single[er] = find_monotonous_cover(sg, er)
    if all(single[er] is not None for er in regions):
        return {er: single[er] for er in regions}
    if len(regions) > max_regions_exact:
        return _greedy_cover_assignment(sg, regions, single)

    group_cache: Dict[Tuple[ExcitationRegion, ...], Optional[Cube]] = {}

    def cube_for(group: Tuple[ExcitationRegion, ...]) -> Optional[Cube]:
        if len(group) == 1:
            return single[group[0]]
        if group not in group_cache:
            group_cache[group] = find_generalized_monotonous_cover(sg, group)
        return group_cache[group]

    for partition in _partitions(regions):
        assignment: Dict[ExcitationRegion, Cube] = {}
        for group in partition:
            key = tuple(sorted(group, key=lambda er: er.transition_name))
            cube = cube_for(key)
            if cube is None:
                assignment = {}
                break
            for er in group:
                assignment[er] = cube
        if assignment:
            return assignment
    return None


def _greedy_cover_assignment(
    sg: StateGraph,
    regions: Sequence[ExcitationRegion],
    single: Dict[ExcitationRegion, Optional[Cube]],
) -> Optional[Dict[ExcitationRegion, Cube]]:
    """Fallback for functions with many regions: grow groups greedily."""
    assignment: Dict[ExcitationRegion, Cube] = {
        er: cube for er, cube in single.items() if cube is not None
    }
    failed = [er for er in regions if er not in assignment]
    for er in failed:
        if er in assignment:
            continue
        placed = False
        for size in range(2, len(regions) + 1):
            for group in combinations(regions, size):
                if er not in group:
                    continue
                cube = find_generalized_monotonous_cover(sg, list(group))
                if cube is not None:
                    for member in group:
                        assignment[member] = cube
                    placed = True
                    break
            if placed:
                break
        if not placed:
            return None
    return assignment


def check_generalized_mc(
    sg: StateGraph, ers: Sequence[ExcitationRegion], cube: Cube
) -> bool:
    """Definition 19: ``cube`` is an MC for the whole region set.

    The cube must be a cover cube of every region that *covers each
    region correctly* (the paper defines correct covering of a region
    set immediately before Def. 19), and then (1) it covers every state
    of every region, (2) it changes at most once inside each region's
    CFR, and (3) it covers no reachable state outside the union of the
    CFRs.  For a single region (3) subsumes correctness; for a group --
    in particular across signals -- it does not, because a state may lie
    inside another group member's CFR yet in this region's forbidden
    sets.
    """
    if not ers:
        return False
    engine = bit_analysis(sg)
    ones = None
    for er in ers:
        if not _is_sub_cover(sg, er, cube):
            return False
        if ones is None:
            ones = engine.cube_bits(cube)
        if ones & _forbidden_bits(sg, er.signal, er.direction):
            return False
    union_cfr_bits = 0
    for er in ers:
        cfr_bits = _cfr_bits(sg, er)
        union_cfr_bits |= cfr_bits
        if _er_bits(sg, er) & ~ones:
            return False
        if engine.has_rise_edge(cfr_bits, ones):
            return False
    if ones & ~union_cfr_bits & engine.all_states_bits:
        return False
    return True
