"""Typed stage artifacts of the staged synthesis pipeline.

Each pipeline stage produces exactly one frozen artifact:

========== ==================== =========================================
stage      artifact             contents
========== ==================== =========================================
reach      ReachedSG            the elaborated state graph (Defs. 5-7)
regions    RegionMap            excitation regions per non-input signal
mc         MCVerdict            the backend's whole-graph MC report
covers     CoverPlan            insertion + standard implementation
netlist    SynthesizedNetlist   basic-gate netlist (+ hazard report)
========== ==================== =========================================

Every artifact carries a ``fingerprint``: a stable SHA-256 digest over
its own content chained with its upstream artifact's fingerprint.  The
fingerprint chain is what the pipeline memoises on -- an unchanged
upstream artifact re-keys to the same digest and hits the cache, while
a mutated specification re-keys (and therefore recomputes) exactly the
stages downstream of the mutation.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.insertion import InsertionResult
from repro.core.mc import MCReport
from repro.core.synthesis import Implementation
from repro.netlist.hazards import HazardReport
from repro.netlist.netlist import Netlist
from repro.sg.graph import StateGraph
from repro.sg.regions import ExcitationRegion
from repro.stg.stg import STG


def _digest(*parts: str) -> str:
    hasher = hashlib.sha256()
    for part in parts:
        hasher.update(part.encode("utf-8"))
        hasher.update(b"\x1f")
    return hasher.hexdigest()


def fingerprint_state_graph(sg: StateGraph) -> str:
    """Stable structural digest of a state graph (cached on the graph).

    Covers everything downstream analyses can observe: the signal order,
    the input partition, every state code, every arc and the initial
    state.  Safe to cache because state graphs are immutable after
    construction.
    """
    cached = sg._analysis_cache.get("pipeline_fingerprint")
    if cached is not None:
        return cached
    arcs = sorted(
        f"{source}>{event.signal}{'+' if event.direction == 1 else '-'}>{target}"
        for source, event, target in sg.arcs()
    )
    codes = sorted(
        f"{state}={''.join(map(str, sg.code(state)))}" for state in sg.state_list
    )
    digest = _digest(
        sg.name,
        ",".join(sg.signals),
        ",".join(sorted(sg.inputs)),
        str(sg.initial),
        "|".join(codes),
        "|".join(arcs),
    )
    sg._analysis_cache["pipeline_fingerprint"] = digest
    return digest


def fingerprint_stg(stg: STG) -> str:
    """Stable structural digest of an STG specification."""
    net = stg.net
    arcs = sorted(
        [f"{p}>{t}" for t in net.transitions for p in net.preset[t]]
        + [f"{t}>{p}" for t in net.transitions for p in net.postset[t]]
    )
    marking = sorted(map(str, stg.initial_marking))
    initial_values = sorted(
        f"{signal}={value}" for signal, value in (stg.initial_values or {}).items()
    )
    return _digest(
        stg.name,
        ",".join(sorted(stg.inputs)),
        ",".join(sorted(stg.outputs)),
        ",".join(sorted(stg.internal)),
        ",".join(sorted(net.places)),
        ",".join(sorted(net.transitions)),
        "|".join(arcs),
        ",".join(marking),
        ",".join(initial_values),
    )


@dataclass(frozen=True)
class ReachedSG:
    """Stage ``reach``: the specification elaborated to a state graph."""

    sg: StateGraph
    #: the source STG when the pipeline elaborated one (None for specs
    #: that entered as a ready-made state graph)
    source: Optional[STG] = None
    fingerprint: str = ""

    @property
    def states(self) -> int:
        return len(self.sg.state_list)


@dataclass(frozen=True)
class RegionMap:
    """Stage ``regions``: excitation regions of every non-input signal."""

    regions: Tuple[ExcitationRegion, ...]
    fingerprint: str = ""
    #: per-signal digests of the region computation's input cone
    #: (see pipeline/incremental.py); equal digest = identical ER list
    signal_fingerprints: Tuple[Tuple[str, str], ...] = ()

    def of_signal(self, signal: str) -> Tuple[ExcitationRegion, ...]:
        return tuple(er for er in self.regions if er.signal == signal)

    def __len__(self) -> int:
        return len(self.regions)


@dataclass(frozen=True)
class MCVerdict:
    """Stage ``mc``: one backend's whole-graph Monotonous Cover report."""

    report: MCReport
    backend: str = "bitengine"
    fingerprint: str = ""
    #: per-``a+``/``a-`` digests of each function's verdict input cone
    #: (see pipeline/incremental.py); equal digest = identical verdicts
    function_fingerprints: Tuple[Tuple[str, str], ...] = ()

    @property
    def satisfied(self) -> bool:
        return self.report.satisfied


@dataclass(frozen=True)
class CoverPlan:
    """Stage ``covers``: the repaired graph and its implementation.

    ``insertion`` records the state signals the MC-driven assignment
    added (none when the specification already satisfied MC);
    ``implementation`` is the standard C-/RS-implementation derived from
    the final report's (possibly shared) MC cubes.
    """

    insertion: InsertionResult
    implementation: Implementation
    fingerprint: str = ""

    @property
    def sg(self) -> StateGraph:
        """The final (post-insertion) state graph."""
        return self.insertion.sg

    @property
    def added_signals(self) -> Tuple[str, ...]:
        return tuple(self.insertion.added_signals)


@dataclass(frozen=True)
class SynthesizedNetlist:
    """Stage ``netlist``: the basic-gate netlist, optionally verified."""

    netlist: Netlist
    hazard_report: Optional[HazardReport] = None
    fingerprint: str = ""

    @property
    def hazard_free(self) -> bool:
        return bool(self.hazard_report and self.hazard_report.hazard_free)


def fingerprint_region_map(upstream: str, regions: Tuple[ExcitationRegion, ...]) -> str:
    body = "|".join(
        f"{er.transition_name}:{','.join(sorted(map(str, er.states)))}"
        for er in regions
    )
    return _digest("regions", upstream, body)


def fingerprint_mc_report(upstream: str, backend: str, report: MCReport) -> str:
    parts = []
    for verdict in report.verdicts:
        parts.append(
            f"{verdict.er.transition_name};{verdict.unique_entry};"
            f"{verdict.mc_cube!r};{verdict.private};"
            f"{sorted(e.transition_name for e in verdict.group)};"
            f"{sorted(map(str, verdict.stuck_stable))};"
            f"{sorted(map(str, verdict.stuck_opposite))}"
        )
    return _digest("mc", upstream, backend, "|".join(parts))


def fingerprint_cover_plan(
    upstream: str, insertion: InsertionResult, implementation: Implementation
) -> str:
    return _digest(
        "covers",
        upstream,
        ",".join(insertion.added_signals),
        fingerprint_state_graph(insertion.sg),
        implementation.equations(),
    )


def fingerprint_netlist(
    upstream: str, netlist: Netlist, hazard_report: Optional[HazardReport]
) -> str:
    from repro.netlist.io import netlist_to_json

    verdict = "unverified"
    if hazard_report is not None:
        verdict = (
            f"{hazard_report.hazard_free};{len(hazard_report.conflicts)};"
            f"{hazard_report.composition.truncated}"
        )
    return _digest("netlist", upstream, netlist_to_json(netlist, indent=0), verdict)


__all__ = [
    "CoverPlan",
    "MCVerdict",
    "ReachedSG",
    "RegionMap",
    "SynthesizedNetlist",
    "fingerprint_cover_plan",
    "fingerprint_mc_report",
    "fingerprint_netlist",
    "fingerprint_region_map",
    "fingerprint_state_graph",
    "fingerprint_stg",
]
