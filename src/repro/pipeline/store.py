"""Content-addressed persistent store for pipeline stage artifacts.

The in-process memo cache (:class:`~repro.pipeline.context.AnalysisContext`)
dies with its process; this module spills the same fingerprint-keyed
stage artifacts to disk so repeated runs -- CLI invocations, bench
sweeps, CI gates, the ``repro-si batch`` workers -- start warm.

Layout and contract
-------------------
One entry per ``(stage, memo-key)`` pair::

    <root>/<stage>/<sha256 over the key reprs>.json

Each entry is a JSON envelope stamped with a schema version and the key
it answers for::

    {"schema": "repro-artifact-store/3", "stage": "mc",
     "key": ["'<fp>'", "'bitengine'"], "artifact": {...}}

Envelope ``/3`` adds per-signal region fingerprints and per-function MC
fingerprints to the ``regions``/``mc`` payloads (delta re-synthesis
hints); ``/2`` stored cubes in the compiled IR form (``[mask, value]``
big-int pairs against the embedded graph's signal order).  Older
envelopes are not migrated -- the schema check degrades them to counted
``corrupt`` misses and they are rewritten on the next put.

The store is **content-addressed**: the digest is computed over the
``repr`` of every key component, and the memo keys chain upstream
artifact fingerprints (see :mod:`repro.pipeline.artifacts`), so a hit is
correct by construction -- the same key can only ever map to the same
analysis result.

Robustness rules, in order of importance:

* **A bad entry is a miss, never a crash.**  Truncated files, foreign
  JSON, schema/stage/key mismatches and decoding errors all count as
  ``corrupt`` misses; the offending file is deleted best-effort.
* **Writes are atomic.**  Entries are written to a same-directory temp
  file and ``os.replace``-d into place, so concurrent writers (batch
  workers racing on one key) each publish a complete entry and readers
  never observe a torn one.
* **Artifacts that cannot be spilled faithfully are skipped.**
  :class:`~repro.pipeline.serialize.ArtifactCodingError` marks the
  artifact memory-only; ``put`` returns ``False``.

Eviction is LRU by file mtime: ``get`` bumps the entry's mtime, ``put``
trims the store to ``max_entries`` (oldest first, the entry just
written is protected).  Hit/miss/evict counters are kept per stage and
mirrored into :mod:`repro.perf` (``store-hit:<stage>`` etc.) so CLI
``--profile`` output and the bench harness surface store traffic.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Optional, Tuple

from repro import perf
from repro.pipeline.serialize import (
    ArtifactCodingError,
    stage_artifact_from_json,
    stage_artifact_to_json,
)

#: envelope schema stamp; bump on any incompatible payload change (old
#: entries then read as corrupt misses and are rewritten, never crash)
STORE_SCHEMA = "repro-artifact-store/3"

#: the store event vocabulary, in reporting order (the sharded
#: composition in :mod:`repro.pipeline.shard` appends its own events)
EVENTS = ("hit", "miss", "corrupt", "put", "skip", "evict")
_EVENTS = EVENTS  # backwards-compatible alias


class ArtifactStore:
    """A directory of persisted pipeline stage artifacts.

    Parameters
    ----------
    root:
        Directory holding the store (created on first write).
    max_entries:
        LRU size cap across all stages; ``None`` disables eviction.
    """

    def __init__(self, root: str, max_entries: Optional[int] = 4096):
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.root = str(root)
        self.max_entries = max_entries
        #: event -> stage -> count (see ``stats()``)
        self._counters: Dict[str, Dict[str, int]] = {e: {} for e in _EVENTS}

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    @staticmethod
    def _key_reprs(stage: str, key: Tuple) -> Tuple[str, ...]:
        return tuple(repr(part) for part in (stage,) + tuple(key))

    @classmethod
    def entry_digest(cls, stage: str, key: Tuple) -> str:
        """The content digest addressing ``(stage, key)``.

        This is the file basename of the entry and also the routing key
        of the sharded composition (:mod:`repro.pipeline.shard`), so it
        must stay stable across store layouts.
        """
        hasher = hashlib.sha256()
        for part in cls._key_reprs(stage, key):
            hasher.update(part.encode("utf-8"))
            hasher.update(b"\x1f")
        return hasher.hexdigest()

    def path_for(self, stage: str, key: Tuple) -> str:
        """The entry path answering for ``(stage, key)``."""
        return os.path.join(
            self.root, stage, self.entry_digest(stage, key) + ".json"
        )

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------
    def _count(self, event: str, stage: str) -> None:
        bucket = self._counters[event]
        bucket[stage] = bucket.get(stage, 0) + 1
        perf.count(f"store-{event}:{stage}")

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-stage traffic: ``{"hit": {"mc": 3}, "miss": ..., ...}``.

        ``corrupt`` misses are also counted under ``miss``; ``skip``
        counts faithful-coding refusals (not written, not an error).
        """
        return {event: dict(stages) for event, stages in self._counters.items()}

    def totals(self) -> Dict[str, int]:
        """Whole-store traffic: event -> count summed over stages."""
        return {
            event: sum(stages.values())
            for event, stages in self._counters.items()
        }

    # ------------------------------------------------------------------
    # The cache protocol
    # ------------------------------------------------------------------
    def get(self, stage: str, key: Tuple):
        """The persisted artifact for ``(stage, key)``, or ``None``.

        Any defect in the entry -- unreadable, truncated, foreign
        schema, key mismatch, undecodable payload -- deletes it
        best-effort and reports a miss.
        """
        path = self.path_for(stage, key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                envelope = json.load(handle)
        except FileNotFoundError:
            self._count("miss", stage)
            return None
        except (OSError, ValueError):
            self._discard_corrupt(path, stage)
            return None
        try:
            if envelope["schema"] != STORE_SCHEMA:
                raise ArtifactCodingError("schema mismatch")
            if envelope["stage"] != stage:
                raise ArtifactCodingError("stage mismatch")
            if tuple(envelope["key"]) != self._key_reprs(stage, key):
                raise ArtifactCodingError("key mismatch")
            artifact = stage_artifact_from_json(stage, envelope["artifact"])
        except Exception:
            self._discard_corrupt(path, stage)
            return None
        self._touch(path)
        self._count("hit", stage)
        return artifact

    def put(self, stage: str, key: Tuple, artifact) -> bool:
        """Persist ``artifact`` under ``(stage, key)``; True if written.

        Artifacts that cannot be spilled faithfully are skipped (the
        memo cache keeps them in memory); unknown stages are an error.
        """
        try:
            payload = stage_artifact_to_json(stage, artifact)
        except ArtifactCodingError:
            self._count("skip", stage)
            return False
        envelope = {
            "schema": STORE_SCHEMA,
            "stage": stage,
            "key": list(self._key_reprs(stage, key)),
            "artifact": payload,
        }
        path = self.path_for(stage, key)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        tmp = os.path.join(directory, f".tmp-{os.getpid()}-{id(artifact):x}")
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(envelope, handle, separators=(",", ":"))
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        self._count("put", stage)
        self.trim(protect=path)
        return True

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def trim(self, protect: Optional[str] = None) -> int:
        """Evict least-recently-used entries beyond ``max_entries``.

        ``protect`` exempts one path (the entry just written).  Returns
        the number of entries evicted.
        """
        if self.max_entries is None:
            return 0
        entries = self._entries()
        excess = len(entries) - self.max_entries
        if excess <= 0:
            return 0
        evicted = 0
        for mtime, path, stage in sorted(entries):
            if evicted >= excess:
                break
            if path == protect:
                continue
            try:
                os.unlink(path)
            except OSError:
                continue
            self._count("evict", stage)
            evicted += 1
        return evicted

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for _, path, _ in self._entries():
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        return len(self._entries())

    def _entries(self):
        """All ``(mtime, path, stage)`` entries currently on disk."""
        found = []
        try:
            stages = sorted(os.listdir(self.root))
        except OSError:
            return found
        for stage in stages:
            directory = os.path.join(self.root, stage)
            try:
                names = sorted(os.listdir(directory))
            except OSError:
                continue
            for name in names:
                if not name.endswith(".json"):
                    continue
                path = os.path.join(directory, name)
                try:
                    mtime = os.stat(path).st_mtime
                except OSError:
                    continue  # racing eviction/corruption cleanup
                found.append((mtime, path, stage))
        return found

    @staticmethod
    def _touch(path: str) -> None:
        try:
            os.utime(path, None)
        except OSError:
            pass

    def _discard_corrupt(self, path: str, stage: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass
        self._count("corrupt", stage)
        self._count("miss", stage)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ArtifactStore(root={self.root!r}, "
            f"max_entries={self.max_entries!r})"
        )


__all__ = ["ArtifactStore", "EVENTS", "STORE_SCHEMA"]
