"""First-class STG edits for delta-aware incremental re-synthesis.

A :class:`SpecDelta` is an ordered sequence of small, named edits to a
specification STG — add/remove a causality edge between two transitions,
retype a signal (input / output / internal), or replace the initial
marking.  Deltas are applied through :meth:`SpecDelta.apply_to_stg`
(surfaced as ``PipelineSpec.apply_delta``), which rebuilds the STG
through its validating constructor so an edited spec obeys exactly the
same invariants as a freshly parsed one.

The delta also knows which transitions it *dirtied*
(:meth:`SpecDelta.dirty_transitions`): transitions whose preset or
postset differ between the base and edited nets.  The incremental
reachability replay (``stg/reachability.py``) uses that set to decide
which cached state expansions are still valid.

Deltas have three interchangeable forms:

- programmatic: ``SpecDelta((AddEdge("a+", "b-"),))``
- text (CLI ``--edit``): ``"add a+ b-"``, ``"drop a+ b-"``,
  ``"retype x internal"``, ``"marking p1 p2"``
- JSON (service wire): ``{"ops": [{"op": "add", ...}]}``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set, Tuple, Union

from repro.stg.petrinet import PetriNet
from repro.stg.stg import STG, parse_transition_id

__all__ = [
    "AddEdge",
    "RemoveEdge",
    "RetypeSignal",
    "SetMarking",
    "SpecDelta",
    "DeltaError",
]

_ROLES = ("input", "output", "internal")


class DeltaError(ValueError):
    """A delta cannot be applied to (or parsed for) the given STG."""


@dataclass(frozen=True)
class AddEdge:
    """Add a causal edge ``source -> target`` via a fresh place.

    ``marked`` puts an initial token on the new place.
    """

    source: str
    target: str
    marked: bool = False

    op = "add"

    def to_json(self) -> Dict[str, object]:
        data: Dict[str, object] = {"op": "add", "source": self.source, "target": self.target}
        if self.marked:
            data["marked"] = True
        return data


@dataclass(frozen=True)
class RemoveEdge:
    """Remove one place whose only predecessor/successor are source/target."""

    source: str
    target: str

    op = "drop"

    def to_json(self) -> Dict[str, object]:
        return {"op": "drop", "source": self.source, "target": self.target}


@dataclass(frozen=True)
class RetypeSignal:
    """Move a signal between the input / output / internal partitions."""

    signal: str
    role: str

    op = "retype"

    def __post_init__(self) -> None:
        if self.role not in _ROLES:
            raise DeltaError(f"unknown signal role {self.role!r}; expected one of {_ROLES}")

    def to_json(self) -> Dict[str, object]:
        return {"op": "retype", "signal": self.signal, "role": self.role}


@dataclass(frozen=True)
class SetMarking:
    """Replace the initial marking with the given places."""

    places: Tuple[str, ...]

    op = "marking"

    def to_json(self) -> Dict[str, object]:
        return {"op": "marking", "places": list(self.places)}


DeltaOp = Union[AddEdge, RemoveEdge, RetypeSignal, SetMarking]


def _fresh_place_name(source: str, target: str, taken: Set[str]) -> str:
    """Deterministic place id for an added edge, avoiding collisions."""
    base = "p_%s__%s" % (
        source.replace("+", "p").replace("-", "m").replace("/", "_"),
        target.replace("+", "p").replace("-", "m").replace("/", "_"),
    )
    name = base
    while name in taken:
        name += "_"
    return name


class SpecDelta:
    """An ordered sequence of STG edits."""

    def __init__(self, ops: Iterable[DeltaOp]):
        self.ops: Tuple[DeltaOp, ...] = tuple(ops)
        if not self.ops:
            raise DeltaError("a SpecDelta needs at least one operation")

    # -- construction --------------------------------------------------
    @classmethod
    def parse(cls, edits: Union[str, Sequence[str]]) -> "SpecDelta":
        """Parse one edit line or a sequence of edit lines.

        Grammar (one op per line / list element)::

            add <source> <target> [marked]
            drop <source> <target>
            retype <signal> input|output|internal
            marking <place> [<place> ...]
        """
        if isinstance(edits, str):
            lines = [line.strip() for line in edits.splitlines()]
        else:
            lines = [str(line).strip() for line in edits]
        ops: List[DeltaOp] = []
        for line in lines:
            if not line:
                continue
            words = line.split()
            verb, rest = words[0], words[1:]
            if verb == "add" and len(rest) in (2, 3):
                marked = False
                if len(rest) == 3:
                    if rest[2] != "marked":
                        raise DeltaError(f"bad edit {line!r}: trailing word must be 'marked'")
                    marked = True
                _require_transition_id(rest[0], line)
                _require_transition_id(rest[1], line)
                ops.append(AddEdge(rest[0], rest[1], marked=marked))
            elif verb == "drop" and len(rest) == 2:
                _require_transition_id(rest[0], line)
                _require_transition_id(rest[1], line)
                ops.append(RemoveEdge(rest[0], rest[1]))
            elif verb == "retype" and len(rest) == 2:
                if rest[1] not in _ROLES:
                    raise DeltaError(
                        f"bad edit {line!r}: role must be one of {', '.join(_ROLES)}"
                    )
                ops.append(RetypeSignal(rest[0], rest[1]))
            elif verb == "marking" and rest:
                ops.append(SetMarking(tuple(rest)))
            else:
                raise DeltaError(
                    f"bad edit {line!r}: expected 'add S T [marked]', 'drop S T', "
                    "'retype SIG ROLE' or 'marking P...'"
                )
        return cls(ops)

    @classmethod
    def from_json(cls, data: object) -> "SpecDelta":
        if not isinstance(data, dict) or not isinstance(data.get("ops"), list):
            raise DeltaError("delta JSON must be an object with an 'ops' list")
        ops: List[DeltaOp] = []
        for entry in data["ops"]:
            if not isinstance(entry, dict):
                raise DeltaError(f"delta op must be an object, got {entry!r}")
            kind = entry.get("op")
            try:
                if kind == "add":
                    ops.append(
                        AddEdge(
                            str(entry["source"]),
                            str(entry["target"]),
                            marked=bool(entry.get("marked", False)),
                        )
                    )
                elif kind == "drop":
                    ops.append(RemoveEdge(str(entry["source"]), str(entry["target"])))
                elif kind == "retype":
                    ops.append(RetypeSignal(str(entry["signal"]), str(entry["role"])))
                elif kind == "marking":
                    places = entry["places"]
                    if not isinstance(places, list) or not places:
                        raise DeltaError("'marking' op needs a non-empty 'places' list")
                    ops.append(SetMarking(tuple(str(p) for p in places)))
                else:
                    raise DeltaError(f"unknown delta op {kind!r}")
            except KeyError as exc:
                raise DeltaError(f"delta op {kind!r} is missing field {exc}") from None
        return cls(ops)

    def to_json(self) -> Dict[str, object]:
        return {"ops": [op.to_json() for op in self.ops]}

    def describe(self) -> str:
        parts = []
        for op in self.ops:
            if isinstance(op, AddEdge):
                parts.append(f"add {op.source} {op.target}" + (" marked" if op.marked else ""))
            elif isinstance(op, RemoveEdge):
                parts.append(f"drop {op.source} {op.target}")
            elif isinstance(op, RetypeSignal):
                parts.append(f"retype {op.signal} {op.role}")
            else:
                parts.append("marking " + " ".join(op.places))
        return "; ".join(parts)

    # -- application ---------------------------------------------------
    def apply_to_stg(self, stg: STG) -> STG:
        """Return a new STG with the edits applied, in order.

        The result goes back through the STG/PetriNet constructors, so
        an edited spec is validated exactly like a parsed one.
        """
        net = stg.net
        places = set(net.places)
        transitions = set(net.transitions)
        preset = {t: set(net.preset[t]) for t in transitions}
        postset = {t: set(net.postset[t]) for t in transitions}
        marking = set(stg.initial_marking)
        inputs = set(stg.inputs)
        outputs = set(stg.outputs)
        internal = set(stg.internal)

        for op in self.ops:
            if isinstance(op, AddEdge):
                for transition in (op.source, op.target):
                    if transition not in transitions:
                        raise DeltaError(
                            f"cannot add edge: transition {transition!r} is not in the STG"
                        )
                place = _fresh_place_name(op.source, op.target, places | transitions)
                places.add(place)
                postset[op.source].add(place)
                preset[op.target].add(place)
                if op.marked:
                    marking.add(place)
            elif isinstance(op, RemoveEdge):
                candidates = sorted(
                    p
                    for p in places
                    if {t for t in transitions if p in postset[t]} == {op.source}
                    and {t for t in transitions if p in preset[t]} == {op.target}
                )
                if not candidates:
                    raise DeltaError(
                        f"cannot drop edge: no place connects exactly "
                        f"{op.source!r} -> {op.target!r}"
                    )
                place = candidates[0]
                places.discard(place)
                marking.discard(place)
                postset[op.source].discard(place)
                preset[op.target].discard(place)
            elif isinstance(op, RetypeSignal):
                if op.signal not in inputs | outputs | internal:
                    raise DeltaError(f"cannot retype unknown signal {op.signal!r}")
                inputs.discard(op.signal)
                outputs.discard(op.signal)
                internal.discard(op.signal)
                {"input": inputs, "output": outputs, "internal": internal}[op.role].add(
                    op.signal
                )
            else:  # SetMarking
                missing = set(op.places) - places
                if missing:
                    raise DeltaError(
                        f"cannot set marking: unknown places {sorted(missing)}"
                    )
                marking = set(op.places)

        arcs: List[Tuple[str, str]] = []
        for transition in sorted(transitions):
            for place in sorted(preset[transition]):
                arcs.append((place, transition))
            for place in sorted(postset[transition]):
                arcs.append((transition, place))
        try:
            new_net = PetriNet(places, transitions, arcs)
            return STG(
                new_net,
                inputs=inputs,
                outputs=outputs,
                initial_marking=frozenset(marking),
                internal=internal,
                initial_values=dict(stg.initial_values),
                name=stg.name,
            )
        except ValueError as exc:
            raise DeltaError(f"delta produces an invalid STG: {exc}") from exc

    def dirty_transitions(self, base: STG, edited: STG) -> frozenset:
        """Transitions whose preset or postset differ between base and edited."""
        dirty = set()
        old, new = base.net, edited.net
        for transition in old.transitions | new.transitions:
            if transition not in old.transitions or transition not in new.transitions:
                dirty.add(transition)
            elif (
                old.preset[transition] != new.preset[transition]
                or old.postset[transition] != new.postset[transition]
            ):
                dirty.add(transition)
        return frozenset(dirty)


def _require_transition_id(text: str, line: str) -> None:
    try:
        parse_transition_id(text)
    except ValueError:
        raise DeltaError(f"bad edit {line!r}: {text!r} is not a transition id") from None
