"""Corpus-level batch synthesis: ``repro-si batch``.

One batch run fans a corpus of ``.g`` specifications across worker
processes, each running the full staged pipeline (reach -> regions ->
mc -> covers -> netlist) under a per-design cooperative budget.  All
workers share one :class:`~repro.pipeline.store.ArtifactStore`, so a
repeated sweep -- the second CI invocation, a bench re-run, an edited
corpus -- recomputes only the designs whose specifications changed.

Determinism contract
--------------------
The **manifest** (:meth:`BatchReport.manifest`) contains only
reproducible facts -- design name, verdict, state counts, equations,
fingerprints -- ordered by design name.  A warm re-run over an unchanged
corpus produces a byte-identical manifest; CI asserts exactly that.
Wall-clock timings and store traffic are deliberately kept apart in
:meth:`BatchReport.stats`.

Per-design failures never abort the batch: a malformed file, a blown
budget or a synthesis error each become one manifest row with
``status`` ``"error"`` / ``"inconclusive"`` / ``"failed"``, and the
batch exit code aggregates the worst verdict (hazard/failure beats
inconclusive beats ok, mirroring the single-design CLI exit codes).
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

# the CLI-wide exit vocabulary (mirrored from repro.cli, which imports
# this module's report; see the exit-code table in that docstring)
EXIT_OK = 0
EXIT_HAZARD = 1
EXIT_INCONCLUSIVE = 3

#: manifest schema stamp (see :meth:`BatchReport.manifest`)
MANIFEST_SCHEMA = "repro-batch-manifest/1"

_STATUS_OK = "hazard-free"
_STATUS_UNVERIFIED = "synthesised"
_STATUS_HAZARD = "hazardous"
_STATUS_INCONCLUSIVE = "inconclusive"
_STATUS_FAILED = "failed"
_STATUS_ERROR = "error"


@dataclass
class DesignOutcome:
    """One design's batch result: a manifest row plus run metadata."""

    name: str
    spec: str
    status: str
    #: human-readable reason for non-ok statuses (deterministic text)
    detail: str = ""
    states: int = 0
    inputs: int = 0
    outputs: int = 0
    added_signals: List[str] = field(default_factory=list)
    equations: str = ""
    gates: int = 0
    hazard_free: Optional[bool] = None
    circuit_states: int = 0
    fingerprint: str = ""
    #: wall seconds in the worker (stats only, never in the manifest)
    seconds: float = 0.0
    #: this design's store traffic, event -> count (stats only)
    store_traffic: Dict[str, int] = field(default_factory=dict)
    #: per-stage breakdown, event -> {stage: count} (stats only)
    store_traffic_by_stage: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status in (_STATUS_OK, _STATUS_UNVERIFIED)

    def manifest_entry(self) -> Dict:
        """The deterministic manifest row (no timings, no cache traffic)."""
        return {
            "name": self.name,
            "spec": self.spec,
            "status": self.status,
            "detail": self.detail,
            "states": self.states,
            "inputs": self.inputs,
            "outputs": self.outputs,
            "added_signals": list(self.added_signals),
            "equations": self.equations,
            "gates": self.gates,
            "hazard_free": self.hazard_free,
            "circuit_states": self.circuit_states,
            "fingerprint": self.fingerprint,
        }

    def describe(self) -> str:
        extra = f" ({self.detail})" if self.detail else ""
        added = f", +{len(self.added_signals)} signal(s)" if self.added_signals else ""
        return (
            f"{self.name}: {self.status}{extra} "
            f"[{self.states} states{added}, {self.seconds:.2f}s]"
        )


@dataclass
class BatchReport:
    """Everything one :func:`run_batch` produced."""

    outcomes: List[DesignOutcome]
    jobs: int = 1
    store_root: Optional[str] = None
    backend: Optional[str] = None

    @property
    def exit_code(self) -> int:
        statuses = {outcome.status for outcome in self.outcomes}
        if statuses & {_STATUS_HAZARD, _STATUS_FAILED, _STATUS_ERROR}:
            return EXIT_HAZARD
        if _STATUS_INCONCLUSIVE in statuses:
            return EXIT_INCONCLUSIVE
        return EXIT_OK

    def manifest(self) -> Dict:
        """The deterministic corpus manifest, rows ordered by name."""
        return {
            "schema": MANIFEST_SCHEMA,
            "designs": [
                outcome.manifest_entry()
                for outcome in sorted(
                    self.outcomes, key=lambda o: (o.name, o.spec)
                )
            ],
        }

    def manifest_text(self) -> str:
        """The manifest as canonical JSON text (what CI byte-compares)."""
        return json.dumps(self.manifest(), indent=2, sort_keys=True) + "\n"

    def stats(self) -> Dict:
        """Run metadata: timings and aggregated store traffic."""
        traffic: Dict[str, int] = {}
        by_stage: Dict[str, Dict[str, int]] = {}
        for outcome in self.outcomes:
            for event, count in outcome.store_traffic.items():
                traffic[event] = traffic.get(event, 0) + count
            for event, stages in outcome.store_traffic_by_stage.items():
                bucket = by_stage.setdefault(event, {})
                for stage, count in stages.items():
                    bucket[stage] = bucket.get(stage, 0) + count
        return {
            "designs": len(self.outcomes),
            "jobs": self.jobs,
            "backend": self.backend or "bitengine",
            "store": self.store_root,
            "seconds_total": sum(o.seconds for o in self.outcomes),
            "seconds_by_design": {
                o.name: round(o.seconds, 6) for o in self.outcomes
            },
            "store_traffic": traffic,
            "store_traffic_by_stage": by_stage,
            "store_traffic_by_design": {
                o.name: dict(o.store_traffic) for o in self.outcomes
            },
        }

    def describe(self) -> str:
        counts: Dict[str, int] = {}
        for outcome in self.outcomes:
            counts[outcome.status] = counts.get(outcome.status, 0) + 1
        summary = ", ".join(f"{n} {s}" for s, n in sorted(counts.items()))
        traffic = self.stats()["store_traffic"]
        hits, misses = traffic.get("hit", 0), traffic.get("miss", 0)
        store = (
            f"; store: {hits} hit(s), {misses} miss(es)"
            if self.store_root
            else ""
        )
        return f"batch: {len(self.outcomes)} design(s): {summary}{store}"


def _design_name(path: str) -> str:
    return os.path.splitext(os.path.basename(path))[0]


def _run_design(task: Dict) -> Dict:
    """Worker body: one design through the full pipeline (picklable I/O)."""
    from repro.core.complexgate import CSCViolation
    from repro.core.insertion import InsertionError
    from repro.core.synthesis import SynthesisError
    from repro.pipeline.context import AnalysisContext
    from repro.pipeline.core import Pipeline, PipelineSpec
    from repro.stg.parser import load_g
    from repro.stg.reachability import ReachabilityError
    from repro.verify.budget import Budget, BudgetExceeded

    path = task["spec"]
    started = time.perf_counter()
    outcome = {
        "name": _design_name(path),
        "spec": path,
        "status": _STATUS_ERROR,
        "detail": "",
        "states": 0,
        "inputs": 0,
        "outputs": 0,
        "added_signals": [],
        "equations": "",
        "gates": 0,
        "hazard_free": None,
        "circuit_states": 0,
        "fingerprint": "",
        "seconds": 0.0,
        "store_traffic": {},
        "store_traffic_by_stage": {},
    }
    budget = Budget(
        max_states=task["max_states"], max_seconds=task["timeout_seconds"]
    )
    context = AnalysisContext(
        backend=task["backend"], budget=budget, store=task["store_root"]
    )
    try:
        try:
            stg = load_g(path)
        except (OSError, ValueError) as exc:
            outcome["detail"] = f"cannot load specification: {exc}"
            return outcome
        if not stg.net.transitions:
            outcome["detail"] = "malformed .g file: no transitions"
            return outcome
        spec = PipelineSpec.from_stg(
            stg,
            name=outcome["name"],
            style=task["style"],
            share_gates=task["share_gates"],
            verify=task["verify"],
            max_models=task["max_models"],
            max_states=task["max_states"] or 200_000,
        )
        pipeline = Pipeline(context)
        try:
            netlist = pipeline.run(spec, until="netlist")
            covers = pipeline.run(spec, until="covers")
            reached = pipeline.run(spec, until="reach")
        except (BudgetExceeded, ReachabilityError) as exc:
            reason = getattr(exc, "reason", None) or str(exc)
            outcome["status"] = _STATUS_INCONCLUSIVE
            outcome["detail"] = reason
            return outcome
        except (CSCViolation, InsertionError, SynthesisError) as exc:
            outcome["status"] = _STATUS_FAILED
            outcome["detail"] = f"synthesis failed: {exc}"
            return outcome
        except ValueError as exc:
            outcome["detail"] = f"invalid specification: {exc}"
            return outcome
        outcome["states"] = reached.states
        outcome["inputs"] = len(reached.sg.inputs)
        outcome["outputs"] = len(reached.sg.signals) - len(reached.sg.inputs)
        outcome["added_signals"] = list(covers.added_signals)
        outcome["equations"] = covers.implementation.equations()
        outcome["gates"] = len(netlist.netlist.gates)
        outcome["fingerprint"] = netlist.fingerprint
        report = netlist.hazard_report
        if report is None:
            outcome["status"] = _STATUS_UNVERIFIED
        else:
            outcome["hazard_free"] = bool(report.hazard_free)
            outcome["circuit_states"] = _circuit_states(report)
            if report.hazard_free:
                outcome["status"] = _STATUS_OK
            elif _truncated_without_witness(report):
                outcome["status"] = _STATUS_INCONCLUSIVE
                outcome["detail"] = (
                    "circuit state space truncated before full exploration"
                )
            else:
                outcome["status"] = _STATUS_HAZARD
                outcome["detail"] = f"{_conflict_count(report)} conflict(s)"
        return outcome
    finally:
        outcome["seconds"] = time.perf_counter() - started
        if context.store is not None:
            outcome["store_traffic"] = context.store.totals()
            outcome["store_traffic_by_stage"] = context.store.stats()


def _conflict_count(report) -> int:
    conflicts = report.conflicts
    return conflicts if isinstance(conflicts, int) else len(conflicts)


def _circuit_states(report) -> int:
    if hasattr(report, "circuit_states"):  # cached (detached) verdict
        return report.circuit_states
    return len(report.circuit_sg.state_list)


def _truncated_without_witness(report) -> bool:
    composition = report.composition
    return (
        composition.truncated
        and not _conflict_count(report)
        and not composition.conformance_failures
    )


def run_batch(
    specs: Sequence[str],
    store: Union[str, None] = None,
    jobs: int = 1,
    backend: Optional[str] = None,
    style: str = "C",
    share_gates: object = False,
    verify: bool = True,
    max_models: int = 400,
    max_states: Optional[int] = None,
    timeout_seconds: Optional[float] = None,
    progress: Optional[Callable[[DesignOutcome], None]] = None,
) -> BatchReport:
    """Synthesise every ``.g`` specification in ``specs``.

    Parameters mirror one ``repro-si synth`` run applied per design;
    ``timeout_seconds`` / ``max_states`` bound each design *separately*
    (a blown budget marks that design inconclusive, the batch goes on).
    ``jobs`` > 1 fans designs across a :class:`ProcessPoolExecutor`;
    ``store`` (a directory path) is shared by all workers.  ``progress``
    is called with each :class:`DesignOutcome` as it completes, in
    completion order.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be a positive integer, got {jobs}")
    if not specs:
        raise ValueError("no specifications given")
    tasks = [
        {
            "spec": str(path),
            "store_root": None if store is None else str(store),
            "backend": backend,
            "style": style,
            "share_gates": share_gates,
            "verify": verify,
            "max_models": max_models,
            "max_states": max_states,
            "timeout_seconds": timeout_seconds,
        }
        for path in specs
    ]
    outcomes: List[DesignOutcome] = []

    def collect(raw: Dict) -> None:
        outcome = DesignOutcome(**raw)
        outcomes.append(outcome)
        if progress is not None:
            progress(outcome)

    if jobs == 1 or len(tasks) == 1:
        for task in tasks:
            collect(_run_design(task))
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
            futures = [pool.submit(_run_design, task) for task in tasks]
            for future in as_completed(futures):
                collect(future.result())
    return BatchReport(
        outcomes=outcomes,
        jobs=jobs,
        store_root=None if store is None else str(store),
        backend=backend,
    )


__all__ = [
    "BatchReport",
    "DesignOutcome",
    "MANIFEST_SCHEMA",
    "run_batch",
]
