"""Corpus-level batch synthesis: ``repro-si batch``.

One batch run fans a corpus of specifications across worker processes,
each running the full staged pipeline (reach -> regions -> mc ->
covers -> netlist) under a per-design cooperative budget.  The corpus
is either a list of ``.g`` files or a :class:`repro.corpus.CorpusSpec`
(``run_batch(corpus=...)`` / ``repro-si batch --corpus spec.json``)
whose admitted designs are *streamed* into the scheduler with a
bounded prefetch -- a 100k-design sweep never materialises 100k task
dicts, let alone 100k files.  All workers share one store root -- flat
(:class:`~repro.pipeline.store.ArtifactStore`) or sharded
(:class:`~repro.pipeline.shard.ShardedStore`, ``--shards``) -- so a
repeated sweep -- the second CI invocation, a bench re-run, an edited
corpus -- recomputes only the designs whose specifications changed.

Determinism contract
--------------------
The **manifest** (:meth:`BatchReport.manifest`, schema
``repro-batch-manifest/2``) contains only reproducible facts -- an
options echo with its fingerprint, then per design: name, verdict,
state counts, equations, pipeline fingerprint, specification
fingerprint and shard key -- ordered by design name.  The shard key is
derived from the *specification content* (first byte of its SHA-256),
never from runtime placement, so a sharded run, a flat run and a
resumed run over the same corpus all emit byte-identical manifests; CI
asserts exactly that.  Corpus-backed rows identify their source as
``corpus:<design name>`` and fingerprint the generated ``.g`` text
itself, so the same spec + seed reproduces the same manifest bytes on
any machine.  Wall-clock timings, store traffic and scheduler
counters are deliberately kept apart in :meth:`BatchReport.stats`.

Resumption
----------
``run_batch(..., resume=<manifest path>)`` reloads a previous manifest
(and/or its ``<manifest>.journal`` sidecar, written one NDJSON row per
completed design so an interrupted sweep loses nothing) and re-runs
only designs that are absent or whose specification fingerprint went
stale.  A resume source with incompatible options or no usable rows
raises :class:`ResumeError` instead of silently re-running everything.

Scheduling
----------
``jobs > 1`` fans designs across a ``ProcessPoolExecutor`` through
shard-affine queues: each worker slot drains the queue of "its" shard
(clustering store I/O per shard directory) and **steals** from the
longest queue when its own runs dry, so stragglers never idle the
pool.  ``steals`` / ``resume_skips`` land in the stats sidecar and the
perf counters (``batch-steal`` / ``batch-resume-skip``).

Per-design failures never abort the batch: a malformed file, a blown
budget or a synthesis error each become one manifest row with
``status`` ``"error"`` / ``"inconclusive"`` / ``"failed"``, and the
batch exit code aggregates the worst verdict (hazard/failure beats
inconclusive beats ok, mirroring the single-design CLI exit codes).
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Union,
)

from repro import perf
from repro.pipeline.serialize import fingerprint_document, fingerprint_file
from repro.pipeline.shard import SHARD_EVENTS
from repro.pipeline.store import EVENTS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.corpus.spec import CorpusSpec

# the CLI-wide exit vocabulary (mirrored from repro.cli, which imports
# this module's report; see the exit-code table in that docstring)
EXIT_OK = 0
EXIT_HAZARD = 1
EXIT_INCONCLUSIVE = 3

#: manifest schema stamp (see :meth:`BatchReport.manifest`); ``/2``
#: added the options echo and per-design ``spec_fingerprint``/``shard``
MANIFEST_SCHEMA = "repro-batch-manifest/2"

#: journal schema stamp (one NDJSON row per completed design)
JOURNAL_SCHEMA = "repro-batch-journal/1"

#: suffix appended to the manifest path for the resume journal
JOURNAL_SUFFIX = ".journal"

_STATUS_OK = "hazard-free"
_STATUS_UNVERIFIED = "synthesised"
_STATUS_HAZARD = "hazardous"
_STATUS_INCONCLUSIVE = "inconclusive"
_STATUS_FAILED = "failed"
_STATUS_ERROR = "error"


class ResumeError(ValueError):
    """``--resume`` input unusable: unreadable, foreign or incompatible."""


def batch_options(
    backend: Optional[str] = None,
    style: str = "C",
    share_gates: object = False,
    verify: bool = True,
    max_models: int = 400,
    max_states: Optional[int] = None,
    timeout_seconds: Optional[float] = None,
) -> Dict:
    """The manifest's options echo: every knob that shapes a row.

    ``backend`` is included because the netlist fingerprint chain
    contains the backend name; ``jobs``, ``shards`` and the store root
    are deliberately absent -- they are placement facts that must not
    change the manifest bytes.
    """
    return {
        "backend": backend or "bitengine",
        "style": style,
        "share_gates": share_gates,
        "verify": verify,
        "max_models": max_models,
        "max_states": max_states,
        "timeout_seconds": timeout_seconds,
    }


def _stamped_options(options: Dict) -> Dict:
    """The options echo plus its own canonical-JSON fingerprint."""
    bare = {k: v for k, v in options.items() if k != "fingerprint"}
    stamped = dict(bare)
    stamped["fingerprint"] = fingerprint_document(bare)
    return stamped


def _spec_shard(spec_fingerprint: str) -> str:
    """The design's shard key: first byte of its spec fingerprint.

    Store-independent by construction (pure function of the ``.g``
    file's bytes), so manifests agree across flat, sharded and resumed
    runs.  Unreadable specs get an empty key.
    """
    return spec_fingerprint[:2] if spec_fingerprint else ""


@dataclass
class DesignOutcome:
    """One design's batch result: a manifest row plus run metadata."""

    name: str
    spec: str
    status: str
    #: human-readable reason for non-ok statuses (deterministic text)
    detail: str = ""
    states: int = 0
    inputs: int = 0
    outputs: int = 0
    added_signals: List[str] = field(default_factory=list)
    equations: str = ""
    gates: int = 0
    hazard_free: Optional[bool] = None
    circuit_states: int = 0
    fingerprint: str = ""
    #: SHA-256 of the specification file's bytes (resume staleness test)
    spec_fingerprint: str = ""
    #: content-derived shard key (see :func:`_spec_shard`)
    shard: str = ""
    #: True when this row was reused from a resume source (stats only)
    resumed: bool = False
    #: wall seconds in the worker (stats only, never in the manifest)
    seconds: float = 0.0
    #: this design's store traffic, event -> count (stats only)
    store_traffic: Dict[str, int] = field(default_factory=dict)
    #: per-stage breakdown, event -> {stage: count} (stats only)
    store_traffic_by_stage: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: per-shard breakdown, shard -> {event: count} (stats only)
    store_traffic_by_shard: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status in (_STATUS_OK, _STATUS_UNVERIFIED)

    def manifest_entry(self) -> Dict:
        """The deterministic manifest row (no timings, no cache traffic)."""
        return {
            "name": self.name,
            "spec": self.spec,
            "status": self.status,
            "detail": self.detail,
            "states": self.states,
            "inputs": self.inputs,
            "outputs": self.outputs,
            "added_signals": list(self.added_signals),
            "equations": self.equations,
            "gates": self.gates,
            "hazard_free": self.hazard_free,
            "circuit_states": self.circuit_states,
            "fingerprint": self.fingerprint,
            "spec_fingerprint": self.spec_fingerprint,
            "shard": self.shard,
        }

    def describe(self) -> str:
        extra = f" ({self.detail})" if self.detail else ""
        added = f", +{len(self.added_signals)} signal(s)" if self.added_signals else ""
        resumed = ", resumed" if self.resumed else ""
        return (
            f"{self.name}: {self.status}{extra} "
            f"[{self.states} states{added}, {self.seconds:.2f}s{resumed}]"
        )


@dataclass
class BatchReport:
    """Everything one :func:`run_batch` produced."""

    outcomes: List[DesignOutcome]
    jobs: int = 1
    store_root: Optional[str] = None
    backend: Optional[str] = None
    #: the options echo (see :func:`batch_options`); defaulted lazily
    options: Dict = field(default_factory=dict)
    #: shard count of the store root (None for a flat store)
    shards: Optional[int] = None
    #: scheduler counters: affine dispatches, steals, resume skips
    scheduler: Dict[str, int] = field(default_factory=dict)
    #: the generation seed for corpus-backed runs (None for file input);
    #: recorded in :meth:`stats`, never in the manifest
    seed: Optional[int] = None

    @property
    def exit_code(self) -> int:
        statuses = {outcome.status for outcome in self.outcomes}
        if statuses & {_STATUS_HAZARD, _STATUS_FAILED, _STATUS_ERROR}:
            return EXIT_HAZARD
        if _STATUS_INCONCLUSIVE in statuses:
            return EXIT_INCONCLUSIVE
        return EXIT_OK

    def manifest(self) -> Dict:
        """The deterministic corpus manifest, rows ordered by name."""
        return {
            "schema": MANIFEST_SCHEMA,
            "options": _stamped_options(
                self.options or batch_options(backend=self.backend)
            ),
            "designs": [
                outcome.manifest_entry()
                for outcome in sorted(
                    self.outcomes, key=lambda o: (o.name, o.spec)
                )
            ],
        }

    def manifest_text(self) -> str:
        """The manifest as canonical JSON text (what CI byte-compares)."""
        return json.dumps(self.manifest(), indent=2, sort_keys=True) + "\n"

    def stats(self) -> Dict:
        """Run metadata: timings, store traffic, scheduler counters."""
        traffic: Dict[str, int] = {e: 0 for e in EVENTS + SHARD_EVENTS}
        by_stage: Dict[str, Dict[str, int]] = {}
        by_shard: Dict[str, Dict[str, int]] = {}
        for outcome in self.outcomes:
            for event, count in outcome.store_traffic.items():
                traffic[event] = traffic.get(event, 0) + count
            for event, stages in outcome.store_traffic_by_stage.items():
                bucket = by_stage.setdefault(event, {})
                for stage, count in stages.items():
                    bucket[stage] = bucket.get(stage, 0) + count
            for shard, events in outcome.store_traffic_by_shard.items():
                bucket = by_shard.setdefault(shard, {})
                for event, count in events.items():
                    bucket[event] = bucket.get(event, 0) + count
        scheduler = {"affine": 0, "steals": 0, "resume_skips": 0}
        scheduler.update(self.scheduler)
        return {
            "designs": len(self.outcomes),
            "jobs": self.jobs,
            "seed": self.seed,
            "backend": self.backend or "bitengine",
            "store": self.store_root,
            "shards": self.shards,
            "scheduler": scheduler,
            "resumed_designs": sorted(
                o.name for o in self.outcomes if o.resumed
            ),
            "seconds_total": sum(o.seconds for o in self.outcomes),
            "seconds_by_design": {
                o.name: round(o.seconds, 6) for o in self.outcomes
            },
            "store_traffic": traffic,
            "store_traffic_by_stage": by_stage,
            "store_traffic_by_design": {
                o.name: dict(o.store_traffic) for o in self.outcomes
            },
            "store_traffic_by_shard": by_shard,
        }

    def describe(self) -> str:
        counts: Dict[str, int] = {}
        for outcome in self.outcomes:
            counts[outcome.status] = counts.get(outcome.status, 0) + 1
        summary = ", ".join(f"{n} {s}" for s, n in sorted(counts.items()))
        resumed = sum(1 for o in self.outcomes if o.resumed)
        skipped = f"; {resumed} resumed" if resumed else ""
        traffic = self.stats()["store_traffic"]
        hits, misses = traffic.get("hit", 0), traffic.get("miss", 0)
        store = (
            f"; store: {hits} hit(s), {misses} miss(es)"
            if self.store_root
            else ""
        )
        return f"batch: {len(self.outcomes)} design(s): {summary}{skipped}{store}"


# ----------------------------------------------------------------------
# Resume sources: prior manifests and journals
# ----------------------------------------------------------------------
class BatchJournal:
    """Append-only NDJSON sidecar making an interrupted batch resumable.

    One self-contained row per completed design (each row repeats the
    stamped options block, so a torn tail line never poisons the rest).
    The CLI appends through ``progress`` and removes the journal once
    the manifest itself is written.
    """

    def __init__(self, path: str, options: Dict):
        self.path = str(path)
        self._options = _stamped_options(options)
        self._handle = None

    def append(self, outcome: DesignOutcome) -> None:
        entry = {
            "schema": JOURNAL_SCHEMA,
            "options": self._options,
            "design": outcome.manifest_entry(),
        }
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(
            json.dumps(entry, sort_keys=True, separators=(",", ":")) + "\n"
        )
        self._handle.flush()
        try:
            os.fsync(self._handle.fileno())
        except OSError:  # pragma: no cover - fsync-less filesystems
            pass

    def close(self, remove: bool = False) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        if remove:
            try:
                os.unlink(self.path)
            except OSError:
                pass


def _read_resume_manifest(path: str) -> Dict:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError) as exc:
        raise ResumeError(f"cannot read resume manifest {path}: {exc}")
    schema = document.get("schema") if isinstance(document, dict) else None
    if schema != MANIFEST_SCHEMA:
        raise ResumeError(
            f"resume manifest {path} has schema {schema!r}; "
            f"resuming needs {MANIFEST_SCHEMA!r}"
        )
    return document

def _read_journal(path: str) -> List[Dict]:
    """Journal rows, tolerating a torn final line (interrupted write)."""
    entries: List[Dict] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    except OSError as exc:
        raise ResumeError(f"cannot read resume journal {path}: {exc}")
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except ValueError:
            break  # torn tail from an interrupted append; rows above are good
        if not isinstance(entry, dict) or entry.get("schema") != JOURNAL_SCHEMA:
            raise ResumeError(
                f"resume journal {path} has schema "
                f"{entry.get('schema') if isinstance(entry, dict) else None!r}; "
                f"expected {JOURNAL_SCHEMA!r}"
            )
        entries.append(entry)
    return entries


def _check_options(recorded: Optional[Dict], expected: Dict, source: str) -> None:
    expected_fp = fingerprint_document(expected)
    recorded = recorded or {}
    if recorded.get("fingerprint") == expected_fp:
        return
    bare = {k: v for k, v in recorded.items() if k != "fingerprint"}
    diffs = sorted(
        k
        for k in set(bare) | set(expected)
        if bare.get(k) != expected.get(k)
    )
    raise ResumeError(
        f"{source} was produced with incompatible options "
        f"(differs in: {', '.join(diffs) or 'options fingerprint'}); "
        f"resume only applies to runs with identical synthesis options"
    )


def resume_plan(path: str, options: Dict) -> Dict[str, Dict]:
    """Reusable rows by design name from a manifest and/or its journal.

    ``path`` names the manifest of the interrupted or previous run; its
    ``<path>.journal`` sidecar is merged in (manifest rows win).  Raises
    :class:`ResumeError` when neither exists, either is foreign, or the
    recorded options don't fingerprint-match ``options``.
    """
    rows: Dict[str, Dict] = {}
    found = False
    if os.path.exists(path):
        document = _read_resume_manifest(path)
        _check_options(document.get("options"), options, f"resume manifest {path}")
        for row in document.get("designs", []):
            if isinstance(row, dict) and row.get("name"):
                rows[row["name"]] = row
        found = True
    journal_path = path + JOURNAL_SUFFIX
    if os.path.exists(journal_path):
        for entry in _read_journal(journal_path):
            _check_options(
                entry.get("options"), options, f"resume journal {journal_path}"
            )
            row = entry.get("design")
            if isinstance(row, dict) and row.get("name"):
                rows.setdefault(row["name"], row)
        found = True
    if not found:
        raise ResumeError(
            f"nothing to resume: neither {path} nor {journal_path} exists"
        )
    return rows


def _outcome_from_row(row: Dict, spec: str, spec_fingerprint: str) -> DesignOutcome:
    """A resumed outcome rebuilt from a recorded manifest/journal row.

    ``spec``/``spec_fingerprint`` come from the *current* input (the
    fingerprints are equal by the staleness test; the path may differ),
    so the merged manifest matches a cold run over the current corpus.
    """
    return DesignOutcome(
        name=row["name"],
        spec=spec,
        status=row["status"],
        detail=row.get("detail", ""),
        states=row.get("states", 0),
        inputs=row.get("inputs", 0),
        outputs=row.get("outputs", 0),
        added_signals=list(row.get("added_signals", [])),
        equations=row.get("equations", ""),
        gates=row.get("gates", 0),
        hazard_free=row.get("hazard_free"),
        circuit_states=row.get("circuit_states", 0),
        fingerprint=row.get("fingerprint", ""),
        spec_fingerprint=spec_fingerprint,
        shard=_spec_shard(spec_fingerprint),
        resumed=True,
    )


# ----------------------------------------------------------------------
# The worker body
# ----------------------------------------------------------------------
def _design_name(path: str) -> str:
    return os.path.splitext(os.path.basename(path))[0]


def _open_task_store(task: Dict):
    """The worker's store handle (flat or sharded), or ``None``."""
    root = task.get("store_root")
    if root is None:
        return None
    from repro.pipeline.shard import open_store

    return open_store(
        root,
        shards=task.get("store_shards"),
        remote=task.get("remote_root"),
        max_put_rate=task.get("max_put_rate"),
    )


def _run_design(task: Dict) -> Dict:
    """Worker body: one design through the full pipeline (picklable I/O)."""
    from repro.core.complexgate import CSCViolation
    from repro.core.insertion import InsertionError
    from repro.core.synthesis import SynthesisError
    from repro.pipeline.context import AnalysisContext
    from repro.pipeline.core import Pipeline, PipelineSpec
    from repro.stg.parser import load_g, parse_g
    from repro.stg.reachability import ReachabilityError
    from repro.verify.budget import Budget, BudgetExceeded

    path = task["spec"]
    spec_text = task.get("spec_text")
    started = time.perf_counter()
    outcome = {
        "name": task.get("name") or _design_name(path),
        "spec": path,
        "status": _STATUS_ERROR,
        "detail": "",
        "states": 0,
        "inputs": 0,
        "outputs": 0,
        "added_signals": [],
        "equations": "",
        "gates": 0,
        "hazard_free": None,
        "circuit_states": 0,
        "fingerprint": "",
        "spec_fingerprint": task.get("spec_fingerprint", ""),
        "shard": task.get("shard", ""),
        "resumed": False,
        "seconds": 0.0,
        "store_traffic": {},
        "store_traffic_by_stage": {},
        "store_traffic_by_shard": {},
    }
    budget = Budget(
        max_states=task["max_states"], max_seconds=task["timeout_seconds"]
    )
    context = AnalysisContext(
        backend=task["backend"], budget=budget, store=_open_task_store(task)
    )
    try:
        try:
            if spec_text is not None:
                stg = parse_g(spec_text, name=outcome["name"])
            else:
                stg = load_g(path)
        except (OSError, ValueError) as exc:
            outcome["detail"] = f"cannot load specification: {exc}"
            return outcome
        if not stg.net.transitions:
            outcome["detail"] = "malformed .g file: no transitions"
            return outcome
        spec = PipelineSpec.from_stg(
            stg,
            name=outcome["name"],
            style=task["style"],
            share_gates=task["share_gates"],
            verify=task["verify"],
            max_models=task["max_models"],
            max_states=task["max_states"] or 200_000,
        )
        pipeline = Pipeline(context)
        try:
            netlist = pipeline.run(spec, until="netlist")
            covers = pipeline.run(spec, until="covers")
            reached = pipeline.run(spec, until="reach")
        except (BudgetExceeded, ReachabilityError) as exc:
            reason = getattr(exc, "reason", None) or str(exc)
            outcome["status"] = _STATUS_INCONCLUSIVE
            outcome["detail"] = reason
            return outcome
        except (CSCViolation, InsertionError, SynthesisError) as exc:
            outcome["status"] = _STATUS_FAILED
            outcome["detail"] = f"synthesis failed: {exc}"
            return outcome
        except ValueError as exc:
            outcome["detail"] = f"invalid specification: {exc}"
            return outcome
        outcome["states"] = reached.states
        outcome["inputs"] = len(reached.sg.inputs)
        outcome["outputs"] = len(reached.sg.signals) - len(reached.sg.inputs)
        outcome["added_signals"] = list(covers.added_signals)
        outcome["equations"] = covers.implementation.equations()
        outcome["gates"] = len(netlist.netlist.gates)
        outcome["fingerprint"] = netlist.fingerprint
        report = netlist.hazard_report
        if report is None:
            outcome["status"] = _STATUS_UNVERIFIED
        else:
            outcome["hazard_free"] = bool(report.hazard_free)
            outcome["circuit_states"] = _circuit_states(report)
            if report.hazard_free:
                outcome["status"] = _STATUS_OK
            elif _truncated_without_witness(report):
                outcome["status"] = _STATUS_INCONCLUSIVE
                outcome["detail"] = (
                    "circuit state space truncated before full exploration"
                )
            else:
                outcome["status"] = _STATUS_HAZARD
                outcome["detail"] = f"{_conflict_count(report)} conflict(s)"
        return outcome
    finally:
        outcome["seconds"] = time.perf_counter() - started
        if context.store is not None:
            outcome["store_traffic"] = context.store.totals()
            outcome["store_traffic_by_stage"] = context.store.stats()
            if hasattr(context.store, "shard_totals"):
                outcome["store_traffic_by_shard"] = context.store.shard_totals()


def _conflict_count(report) -> int:
    conflicts = report.conflicts
    return conflicts if isinstance(conflicts, int) else len(conflicts)


def _circuit_states(report) -> int:
    if hasattr(report, "circuit_states"):  # cached (detached) verdict
        return report.circuit_states
    return len(report.circuit_sg.state_list)


def _truncated_without_witness(report) -> bool:
    composition = report.composition
    return (
        composition.truncated
        and not _conflict_count(report)
        and not composition.conformance_failures
    )


# ----------------------------------------------------------------------
# The work-stealing scheduler
# ----------------------------------------------------------------------
def _queue_index(task: Dict, queues: int) -> int:
    shard = task.get("shard") or ""
    try:
        return int(shard, 16) % queues
    except ValueError:
        return 0


def _run_scheduled(
    tasks: Iterable[Dict],
    jobs: int,
    shards: Optional[int],
    scheduler: Dict[str, int],
    collect: Callable[[Dict], None],
) -> None:
    """Run ``tasks`` over shard-affine queues with work stealing.

    With a sharded store there is one queue per shard (clustering each
    worker's I/O in one shard directory); otherwise a single queue.  A
    freed worker slot pops its home queue first and steals from the
    longest queue when its own is dry -- counted under ``steals``.

    ``tasks`` may be a lazy iterator (corpus streaming): the queues are
    topped up to a bounded prefetch window as slots free, so an
    arbitrarily long stream costs O(jobs) buffered tasks, not O(corpus).
    """
    task_iter: Iterator[Dict] = iter(tasks)
    if jobs == 1:
        for task in task_iter:
            scheduler["affine"] += 1
            collect(_run_design(task))
        return
    queue_count = shards if shards and shards > 1 else 1
    queues: List[List[Dict]] = [[] for _ in range(queue_count)]
    prefetch = max(4 * jobs, 2 * queue_count)
    exhausted = False

    def refill() -> None:
        nonlocal exhausted
        while not exhausted and sum(len(q) for q in queues) < prefetch:
            try:
                task = next(task_iter)
            except StopIteration:
                exhausted = True
                return
            queues[_queue_index(task, queue_count)].append(task)

    refill()
    buffered = sum(len(q) for q in queues)
    if buffered == 0:
        return
    if buffered == 1 and exhausted:
        scheduler["affine"] += 1
        collect(_run_design(next(q for q in queues if q).pop(0)))
        return
    # prefetch >= 4 * jobs, so a post-refill buffer below ``jobs`` means
    # the stream is already exhausted and the pool can size to it
    slots = min(jobs, buffered)
    with ProcessPoolExecutor(max_workers=slots) as pool:
        running: Dict = {}

        def launch(slot: int) -> bool:
            refill()
            home = slot % queue_count
            queue = queues[home]
            stolen = False
            if not queue:
                donor = max(range(queue_count), key=lambda i: len(queues[i]))
                queue = queues[donor]
                if not queue:
                    return False
                stolen = donor != home
            task = queue.pop(0)
            running[pool.submit(_run_design, task)] = slot
            if stolen:
                scheduler["steals"] += 1
                perf.count("batch-steal")
            else:
                scheduler["affine"] += 1
            return True

        for slot in range(slots):
            launch(slot)
        while running:
            done, _ = wait(set(running), return_when=FIRST_COMPLETED)
            for future in done:
                slot = running.pop(future)
                collect(future.result())
                launch(slot)


def run_batch(
    specs: Sequence[str] = (),
    store: Union[str, None] = None,
    jobs: int = 1,
    backend: Optional[str] = None,
    style: str = "C",
    share_gates: object = False,
    verify: bool = True,
    max_models: int = 400,
    max_states: Optional[int] = None,
    timeout_seconds: Optional[float] = None,
    shards: Optional[int] = None,
    remote_store: Union[str, None] = None,
    max_put_rate: Optional[float] = None,
    resume: Union[str, Mapping, None] = None,
    progress: Optional[Callable[[DesignOutcome], None]] = None,
    corpus: Optional["CorpusSpec"] = None,
) -> BatchReport:
    """Synthesise every specification in ``specs`` or in ``corpus``.

    Parameters mirror one ``repro-si synth`` run applied per design;
    ``timeout_seconds`` / ``max_states`` bound each design *separately*
    (a blown budget marks that design inconclusive, the batch goes on).
    ``jobs`` > 1 fans designs across a :class:`ProcessPoolExecutor`;
    ``store`` (a directory path) is shared by all workers, partitioned
    into ``shards`` shard directories when given (with ``remote_store``
    as an optional read-through tier and ``max_put_rate`` as per-shard
    put backpressure).  ``resume`` names a previous manifest (or passes
    its loaded rows): designs whose spec fingerprint matches a recorded
    row are reused without running; an unusable resume source raises
    :class:`ResumeError`.  ``progress`` is called with each
    :class:`DesignOutcome` as it completes, in completion order
    (resumed rows first).

    ``corpus`` (a :class:`repro.corpus.CorpusSpec`, exclusive with
    ``specs``) streams generated designs straight into the scheduler:
    the ``.g`` text travels in the task dict, fingerprints are taken
    over that text, and rows identify their source as
    ``corpus:<name>``.  Resume skips happen inline as the stream is
    drawn, so a mostly-resumed sweep touches only the stale designs;
    because overlap with the resume source is only known once the
    stream ends, a corpus resume that matches nothing raises
    :class:`ResumeError` *after* the run instead of before it.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be a positive integer, got {jobs}")
    if shards is not None and shards < 1:
        raise ValueError(f"shards must be a positive integer, got {shards}")
    if corpus is not None and specs:
        raise ValueError("give .g specifications or corpus=, not both")
    if corpus is None and not specs:
        raise ValueError("no specifications given")
    options = batch_options(
        backend=backend,
        style=style,
        share_gates=share_gates,
        verify=verify,
        max_models=max_models,
        max_states=max_states,
        timeout_seconds=timeout_seconds,
    )
    reusable: Optional[Dict[str, Dict]] = None
    if resume is not None:
        reusable = (
            dict(resume)
            if isinstance(resume, Mapping)
            else resume_plan(str(resume), options)
        )

    scheduler = {"affine": 0, "steals": 0, "resume_skips": 0}
    outcomes: List[DesignOutcome] = []
    overlap = {"count": 0}

    def collect(raw: Dict) -> None:
        emit(DesignOutcome(**raw))

    def emit(outcome: DesignOutcome) -> None:
        outcomes.append(outcome)
        if progress is not None:
            progress(outcome)

    def placement() -> Dict:
        """The task-dict fields shared by every design of this run."""
        return {
            "store_root": None if store is None else str(store),
            "store_shards": shards,
            "remote_root": None if remote_store is None else str(remote_store),
            "max_put_rate": max_put_rate,
            "backend": backend,
            "style": style,
            "share_gates": share_gates,
            "verify": verify,
            "max_models": max_models,
            "max_states": max_states,
            "timeout_seconds": timeout_seconds,
        }

    def reuse(name: str, spec_id: str, spec_fp: str) -> bool:
        """Emit the recorded row for ``name`` if it is still fresh."""
        row = None if reusable is None else reusable.get(name)
        if row is None:
            return False
        overlap["count"] += 1
        if not spec_fp or row.get("spec_fingerprint") != spec_fp:
            return False
        scheduler["resume_skips"] += 1
        perf.count("batch-resume-skip")
        emit(_outcome_from_row(row, spec_id, spec_fp))
        return True

    def no_overlap_error() -> ResumeError:
        if overlap["count"]:
            return ResumeError(
                f"resume source matches no current specification: "
                f"{overlap['count']} design name(s) overlap but every spec "
                f"fingerprint is stale; drop --resume to re-run the corpus"
            )
        return ResumeError(
            "resume source shares no design names with the input set"
        )

    if corpus is not None:

        def corpus_tasks() -> Iterator[Dict]:
            from repro.corpus.factory import corpus_stream

            for design in corpus_stream(corpus):
                spec_id = f"corpus:{design.name}"
                if reuse(design.name, spec_id, design.fingerprint):
                    continue
                task = placement()
                task.update(
                    spec=spec_id,
                    name=design.name,
                    spec_text=design.g_text,
                    spec_fingerprint=design.fingerprint,
                    shard=_spec_shard(design.fingerprint),
                )
                yield task

        _run_scheduled(corpus_tasks(), jobs, shards, scheduler, collect)
        if reusable is not None and not scheduler["resume_skips"]:
            raise no_overlap_error()
        return BatchReport(
            outcomes=outcomes,
            jobs=jobs,
            store_root=None if store is None else str(store),
            backend=backend,
            options=options,
            shards=shards,
            scheduler=scheduler,
            seed=corpus.seed,
        )

    tasks: List[Dict] = []
    for path in specs:
        path = str(path)
        name = _design_name(path)
        spec_fp = fingerprint_file(path)
        if reuse(name, path, spec_fp):
            continue
        task = placement()
        task.update(
            spec=path,
            spec_fingerprint=spec_fp,
            shard=_spec_shard(spec_fp),
        )
        tasks.append(task)
    if reusable is not None and not scheduler["resume_skips"]:
        raise no_overlap_error()

    if tasks:
        _run_scheduled(tasks, jobs, shards, scheduler, collect)
    return BatchReport(
        outcomes=outcomes,
        jobs=jobs,
        store_root=None if store is None else str(store),
        backend=backend,
        options=options,
        shards=shards,
        scheduler=scheduler,
    )


__all__ = [
    "BatchJournal",
    "BatchReport",
    "DesignOutcome",
    "JOURNAL_SCHEMA",
    "JOURNAL_SUFFIX",
    "MANIFEST_SCHEMA",
    "ResumeError",
    "batch_options",
    "resume_plan",
    "run_batch",
]
