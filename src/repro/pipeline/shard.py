"""Key-space sharded composition of :class:`~repro.pipeline.store.ArtifactStore`.

One :class:`ShardedStore` partitions a store root into ``N`` shard
directories, each an ordinary content-addressed store::

    <root>/shards.json            {"schema": "repro-shard-layout/1", "shards": 4}
    <root>/shard-00/<stage>/<digest>.json
    <root>/shard-01/<stage>/<digest>.json
    ...

Routing is by entry digest -- ``int(digest[:2], 16) % shards`` over the
same SHA-256 that names the entry file -- so placement is a pure
function of the memo key: any process opening the root with the same
shard count reads and writes the same files, and batch workers racing
on one key still land on one path (atomic-write semantics unchanged).

The layout marker (``shards.json``) records the shard count so later
opens -- ``repro-si serve`` over a sharded root, a resumed batch, a
remote tier -- can autodetect it via :func:`open_store`.  Opening a
root whose marker disagrees with an explicit ``shards=`` request raises
``ValueError`` (a silent mismatch would re-route every key and degrade
the whole store to misses); a marker that is unreadable or foreign is
rewritten.  Entries of a *flat* store living at the same root are never
read by the sharded composition (they simply age out) and foreign files
inside shard directories degrade per the flat store's rules: corrupt
entries are counted misses and deleted best-effort.

Composed policies:

* **Per-shard LRU budgets.**  ``max_entries`` is the whole-store cap,
  split evenly across shards; each shard trims itself oldest-first
  exactly as a flat store does.
* **Remote read-through tier.**  ``remote`` names a second store root
  (flat or sharded, autodetected, never trimmed) consulted on local
  miss; a remote hit is promoted -- written into the owning local
  shard -- and counted under ``remote-hit``/``promote``.
* **Put-rate backpressure.**  Per-shard put timestamps are kept over a
  one-second sliding window; with ``max_put_rate`` set, puts beyond the
  rate are dropped and counted under ``throttle``.  Dropping a put is
  always safe: the store is a cache, the memo keeps the artifact
  in-memory and the next sweep re-offers it.

Traffic counters keep the flat store's ``stats()``/``totals()`` shape
with three extra events (``remote-hit``, ``promote``, ``throttle``), so
everything that consumes store traffic -- ``repro-si --profile``, batch
sidecars, the service stats endpoint -- works unchanged over either
layout.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional, Tuple, Union

from repro import perf
from repro.pipeline.store import EVENTS, ArtifactStore

#: layout marker schema (``<root>/shards.json``)
LAYOUT_SCHEMA = "repro-shard-layout/1"
LAYOUT_FILE = "shards.json"

#: events counted by the sharded composition itself, on top of the
#: per-shard :data:`repro.pipeline.store.EVENTS`
SHARD_EVENTS = ("remote-hit", "promote", "throttle")

#: seconds of put history per shard backing the put-rate accounting
PUT_RATE_WINDOW = 1.0


def shard_name(index: int) -> str:
    """Directory name of shard ``index`` (``shard-00`` .. ``shard-NN``)."""
    return f"shard-{index:02d}"


def shard_index(digest: str, shards: int) -> int:
    """The shard owning an entry digest (pure function of the key)."""
    return int(digest[:2], 16) % shards


def detect_layout(root: Union[str, os.PathLike]) -> Optional[int]:
    """The shard count of an existing sharded root, or ``None`` if flat.

    The ``shards.json`` marker wins; without one (or with an unreadable
    or foreign marker) the shard directories themselves are counted.
    """
    root = str(root)
    marker = os.path.join(root, LAYOUT_FILE)
    try:
        with open(marker, "r", encoding="utf-8") as handle:
            envelope = json.load(handle)
        count = envelope["shards"]
        if envelope["schema"] == LAYOUT_SCHEMA and isinstance(count, int) and count >= 1:
            return count
    except (OSError, ValueError, KeyError, TypeError):
        pass
    try:
        names = sorted(os.listdir(root))
    except OSError:
        return None
    found = [
        name
        for name in names
        if name.startswith("shard-") and os.path.isdir(os.path.join(root, name))
    ]
    return len(found) or None


class ShardedStore:
    """``N`` flat stores behind the one-store cache protocol.

    Parameters
    ----------
    root:
        Directory holding the shard directories and the layout marker.
    shards:
        Shard count (>= 1); ``None`` autodetects from an existing
        layout and raises ``ValueError`` when there is none.
    max_entries:
        Whole-store LRU cap, split evenly across shards; ``None``
        disables eviction.
    remote:
        Optional read-through tier: a second store root (flat or
        sharded, autodetected) consulted on local miss, never trimmed.
    max_put_rate:
        Optional per-shard put ceiling (puts per second); excess puts
        are dropped and counted under ``throttle``.
    """

    def __init__(
        self,
        root: Union[str, os.PathLike],
        shards: Optional[int] = None,
        max_entries: Optional[int] = 4096,
        remote: Union[str, os.PathLike, None] = None,
        max_put_rate: Optional[float] = None,
    ):
        self.root = str(root)
        if shards is None:
            shards = detect_layout(self.root)
            if shards is None:
                raise ValueError(
                    f"no sharded layout at {self.root!r} and no shard count given"
                )
        if shards < 1:
            raise ValueError(f"shards must be positive, got {shards}")
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        if max_put_rate is not None and max_put_rate <= 0:
            raise ValueError(f"max_put_rate must be positive, got {max_put_rate}")
        self.shards = shards
        self.max_entries = max_entries
        self.max_put_rate = max_put_rate
        self.remote_root = None if remote is None else str(remote)
        self._ensure_layout()
        per_shard = (
            None
            if max_entries is None
            else max(1, -(-max_entries // shards))  # ceil division
        )
        self._stores: List[ArtifactStore] = [
            ArtifactStore(
                os.path.join(self.root, shard_name(i)), max_entries=per_shard
            )
            for i in range(shards)
        ]
        # eager shard directories: the layout stays detectable by
        # directory scan even if the marker file is lost or corrupted
        for store in self._stores:
            try:
                os.makedirs(store.root, exist_ok=True)
            except OSError:  # pragma: no cover - unwritable root
                pass
        #: the read-through tier; opened lazily so a sharded remote is
        #: autodetected and a missing remote just misses
        self._remote = (
            None
            if self.remote_root is None
            else open_store(self.remote_root, max_entries=None)
        )
        self._counters: Dict[str, Dict[str, int]] = {e: {} for e in SHARD_EVENTS}
        #: per-shard put timestamps within :data:`PUT_RATE_WINDOW`
        self._put_times: List[List[float]] = [[] for _ in range(shards)]

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    def _ensure_layout(self) -> None:
        recorded = detect_layout(self.root)
        if recorded is not None and recorded != self.shards:
            raise ValueError(
                f"shard layout mismatch at {self.root!r}: "
                f"laid out with {recorded} shard(s), requested {self.shards}"
            )
        marker = os.path.join(self.root, LAYOUT_FILE)
        if recorded == self.shards and os.path.exists(marker):
            return
        os.makedirs(self.root, exist_ok=True)
        tmp = os.path.join(self.root, f".tmp-{LAYOUT_FILE}-{os.getpid()}")
        envelope = {"schema": LAYOUT_SCHEMA, "shards": self.shards}
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(envelope, handle, separators=(",", ":"))
            os.replace(tmp, marker)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def shard_for(self, stage: str, key: Tuple) -> int:
        """The shard index owning ``(stage, key)``."""
        return shard_index(ArtifactStore.entry_digest(stage, key), self.shards)

    def path_for(self, stage: str, key: Tuple) -> str:
        """The entry path answering for ``(stage, key)``."""
        return self._stores[self.shard_for(stage, key)].path_for(stage, key)

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------
    def _count(self, event: str, stage: str) -> None:
        bucket = self._counters[event]
        bucket[stage] = bucket.get(stage, 0) + 1
        perf.count(f"store-{event}:{stage}")

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-stage traffic merged over shards, plus the shard events."""
        merged: Dict[str, Dict[str, int]] = {e: {} for e in EVENTS + SHARD_EVENTS}
        sources = [store.stats() for store in self._stores]
        sources.append({e: dict(s) for e, s in self._counters.items()})
        for stats in sources:
            for event, stages in stats.items():
                bucket = merged.setdefault(event, {})
                for stage, count in stages.items():
                    bucket[stage] = bucket.get(stage, 0) + count
        return merged

    def totals(self) -> Dict[str, int]:
        """Whole-store traffic: event -> count summed over stages."""
        return {
            event: sum(stages.values()) for event, stages in self.stats().items()
        }

    def shard_totals(self) -> Dict[str, Dict[str, int]]:
        """Per-shard traffic: ``{"shard-00": {"hit": 3, ...}, ...}``."""
        return {
            shard_name(i): store.totals()
            for i, store in enumerate(self._stores)
        }

    def put_rates(self) -> Dict[str, int]:
        """Puts within the last rate window, per shard (backpressure view)."""
        now = time.monotonic()
        rates = {}
        for i, times in enumerate(self._put_times):
            rates[shard_name(i)] = sum(
                1 for t in times if now - t <= PUT_RATE_WINDOW
            )
        return rates

    # ------------------------------------------------------------------
    # The cache protocol
    # ------------------------------------------------------------------
    def get(self, stage: str, key: Tuple):
        """The artifact for ``(stage, key)`` from its shard or the remote tier."""
        shard = self._stores[self.shard_for(stage, key)]
        artifact = shard.get(stage, key)
        if artifact is not None or self._remote is None:
            return artifact
        artifact = self._remote.get(stage, key)
        if artifact is None:
            return None
        self._count("remote-hit", stage)
        if shard.put(stage, key, artifact):
            self._count("promote", stage)
        return artifact

    def put(self, stage: str, key: Tuple, artifact) -> bool:
        """Persist into the owning shard, subject to the put-rate cap."""
        index = self.shard_for(stage, key)
        if self._throttled(index):
            self._count("throttle", stage)
            return False
        written = self._stores[index].put(stage, key, artifact)
        if written:
            self._put_times[index].append(time.monotonic())
        return written

    def _throttled(self, index: int) -> bool:
        times = self._put_times[index]
        now = time.monotonic()
        while times and now - times[0] > PUT_RATE_WINDOW:
            times.pop(0)
        if self.max_put_rate is None:
            return False
        return len(times) >= self.max_put_rate

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def trim(self, protect: Optional[str] = None) -> int:
        """Trim every shard to its budget; returns entries evicted."""
        return sum(store.trim(protect=protect) for store in self._stores)

    def clear(self) -> int:
        """Delete every entry in every shard; returns the number removed."""
        return sum(store.clear() for store in self._stores)

    def __len__(self) -> int:
        return sum(len(store) for store in self._stores)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ShardedStore(root={self.root!r}, shards={self.shards}, "
            f"max_entries={self.max_entries!r}, remote={self.remote_root!r})"
        )


def open_store(
    root: Union[str, os.PathLike],
    shards: Optional[int] = None,
    max_entries: Optional[int] = 4096,
    remote: Union[str, os.PathLike, None] = None,
    max_put_rate: Optional[float] = None,
) -> Union[ArtifactStore, ShardedStore]:
    """Open ``root`` with the right layout.

    An explicit ``shards`` count (or a ``remote`` tier, which only the
    sharded composition supports) opens a :class:`ShardedStore`;
    otherwise an existing sharded layout is autodetected and a plain
    flat :class:`~repro.pipeline.store.ArtifactStore` is the default.
    This is what the CLI, the batch workers and the service use, so one
    store root keeps its layout across entry points.
    """
    if shards is None and remote is None and max_put_rate is None:
        detected = detect_layout(root)
        if detected is None:
            return ArtifactStore(str(root), max_entries=max_entries)
        shards = detected
    return ShardedStore(
        root,
        shards=shards if shards is not None else (detect_layout(root) or 1),
        max_entries=max_entries,
        remote=remote,
        max_put_rate=max_put_rate,
    )


__all__ = [
    "LAYOUT_FILE",
    "LAYOUT_SCHEMA",
    "PUT_RATE_WINDOW",
    "SHARD_EVENTS",
    "ShardedStore",
    "detect_layout",
    "open_store",
    "shard_index",
    "shard_name",
]
