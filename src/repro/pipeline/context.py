"""The shared AnalysisContext threaded through every pipeline stage.

One context = one analysis world: *which engine* decides MC
(:mod:`repro.pipeline.backends`), *how much* state/wall-clock it may
spend (:class:`repro.verify.budget.Budget`), *where* per-stage artifacts
are memoised, and *who* records phase timings
(:mod:`repro.perf`).  Because every entry point -- ``repro-si``, the
bench suite, the verify campaigns, the examples -- builds its flow on
the same context type, budgets and profiling are started exactly once
per run: nesting a pipeline inside a verify campaign shares the
campaign's context instead of opening a second clock, so each
wall-clock second and each elaborated state is charged once.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Dict, Optional, Tuple, Union

from repro import perf
from repro.pipeline.backends import AnalysisBackend, get_backend

if TYPE_CHECKING:  # pragma: no cover - import cycle: repro.verify -> pipeline
    from repro.pipeline.store import ArtifactStore
    from repro.verify.budget import Budget


class AnalysisContext:
    """Backend + budget + memo cache + profiling for one analysis world.

    Parameters
    ----------
    backend:
        Backend name (``"bitengine"``, ``"reference"``) or an
        :class:`~repro.pipeline.backends.AnalysisBackend` instance.
    budget:
        The single :class:`Budget` every stage charges; defaults to an
        unbounded no-op guard.  Pass the *enclosing* campaign's budget
        when nesting a pipeline inside a larger run -- contexts never
        start a second clock of their own.
    jobs:
        Default thread fan-out for analyses that support it.
    recorder:
        Optional :class:`repro.perf.PerfRecorder` installed for the
        duration of each ``Pipeline.run`` on this context.  ``None``
        leaves the process-global recorder (CLI ``--profile``) alone.
    store:
        Optional persistent artifact store backing the in-process memo
        cache: an :class:`~repro.pipeline.store.ArtifactStore` or a
        directory path to open one at.  A memo miss consults the store
        before computing, and computed artifacts are spilled to it, so
        separate processes (CLI runs, batch workers) share warm starts.
    memo:
        Optional artifact dict *shared between contexts*: several
        analysis worlds (e.g. the job server's per-request contexts,
        each carrying its own budget and recorder) can hand in the same
        dict and reuse one resident in-memory cache.  Memo keys chain
        the stage name with upstream fingerprints, so sharing is safe
        across backends and specs.  Defaults to a private dict.
    """

    def __init__(
        self,
        backend: Union[str, AnalysisBackend, None] = None,
        budget: Optional["Budget"] = None,
        jobs: Optional[int] = None,
        recorder: Optional[perf.PerfRecorder] = None,
        store: Union["ArtifactStore", str, None] = None,
        memo: Optional[Dict[Tuple, object]] = None,
    ):
        from repro.verify.budget import Budget

        if isinstance(store, (str, os.PathLike)):
            from repro.pipeline.store import ArtifactStore

            store = ArtifactStore(str(store))
        self.backend: AnalysisBackend = get_backend(backend)
        self.budget: Budget = budget if budget is not None else Budget()
        self.jobs = jobs
        self.recorder = recorder
        self.store: Optional["ArtifactStore"] = store
        self._memo: Dict[Tuple, object] = memo if memo is not None else {}
        #: per-stage memo traffic, e.g. ``{"regions": 1}``
        self.cache_hits_by_stage: Dict[str, int] = {}
        self.cache_misses_by_stage: Dict[str, int] = {}
        #: per-stage reuse ledger of the most recent ``Pipeline.run``:
        #: stage -> {"mode": "hit"|"miss"|"partial", ...counts}
        self.last_reuse: Dict[str, Dict[str, object]] = {}
        self._incremental = None

    # ------------------------------------------------------------------
    @property
    def cache_hits(self) -> int:
        """Total artifact-cache hits across all stages."""
        return sum(self.cache_hits_by_stage.values())

    @property
    def cache_misses(self) -> int:
        """Total artifact-cache misses (stage computations performed)."""
        return sum(self.cache_misses_by_stage.values())

    def cache_info(self) -> Dict[str, Tuple[int, int]]:
        """Stage -> (hits, misses) for everything this context ran."""
        stages = set(self.cache_hits_by_stage) | set(self.cache_misses_by_stage)
        return {
            stage: (
                self.cache_hits_by_stage.get(stage, 0),
                self.cache_misses_by_stage.get(stage, 0),
            )
            for stage in sorted(stages)
        }

    def clear_cache(self) -> None:
        """Drop memoised artifacts (counters are kept for inspection)."""
        self._memo.clear()

    # ------------------------------------------------------------------
    @property
    def incremental(self):
        """Lazy per-context :class:`~repro.pipeline.incremental.IncrementalIndex`.

        Holds reachability exploration snapshots and the insertion-search
        analysis cache that power ``Pipeline.run(spec, delta=...)``.
        """
        if self._incremental is None:
            from repro.pipeline.incremental import IncrementalIndex

            self._incremental = IncrementalIndex()
        return self._incremental

    def note_reuse(self, stage: str, mode: str, **counts) -> None:
        """Record how much of ``stage``'s latest run was incremental.

        ``mode`` is ``"hit"`` (artifact served from memo/store),
        ``"miss"`` (computed from scratch) or ``"partial"`` (computed,
        but with per-signal/per-function/per-marking reuse recorded in
        ``counts``).  The ledger is reset at the start of each
        ``Pipeline.run`` and surfaced on ``PipelineResult.reuse`` and
        the service's stage events.
        """
        entry: Dict[str, object] = {"mode": mode}
        entry.update(counts)
        self.last_reuse[stage] = entry

    def probe(self, stage: str, key: Tuple):
        """Look up an artifact without counting a hit or a miss.

        Used by the delta path to fetch *base-spec* artifacts as reuse
        hints: a probe is not part of the edited run's cache traffic, so
        it must not skew the hit/miss counters (store ``get`` stats do
        register, which is accurate — the store was really consulted).
        """
        full_key = (stage,) + key
        if full_key in self._memo:
            return self._memo[full_key]
        if self.store is not None:
            artifact = self.store.get(stage, key)
            if artifact is not None:
                self._memo[full_key] = artifact
                return artifact
        return None

    # ------------------------------------------------------------------
    def memoize(self, stage: str, key: Tuple, compute, cache_if=None):
        """Return the memoised artifact for ``key``, computing on miss.

        ``key`` must chain the upstream artifact's fingerprint with every
        option that can change this stage's result; see
        :mod:`repro.pipeline.artifacts`.

        ``cache_if``, when given, is called with a freshly computed
        artifact; returning False keeps it out of the memo *and* the
        store.  Stages use it when a run's budget lowered their
        effective cap below what ``key`` promises: a truncated result
        must never be served to later full-budget runs sharing the
        caches.
        """
        full_key = (stage,) + key
        if full_key in self._memo:
            self.cache_hits_by_stage[stage] = (
                self.cache_hits_by_stage.get(stage, 0) + 1
            )
            perf.count(f"pipeline-cache-hit:{stage}")
            self.note_reuse(stage, "hit")
            return self._memo[full_key]
        self.cache_misses_by_stage[stage] = (
            self.cache_misses_by_stage.get(stage, 0) + 1
        )
        if self.store is not None:
            artifact = self.store.get(stage, key)
            if artifact is not None:
                self._memo[full_key] = artifact
                self.note_reuse(stage, "hit")
                return artifact
        self.note_reuse(stage, "miss")
        artifact = compute()
        if cache_if is not None and not cache_if(artifact):
            perf.count(f"pipeline-cache-skip:{stage}")
            return artifact
        self._memo[full_key] = artifact
        if self.store is not None:
            self.store.put(stage, key, artifact)
        return artifact

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"AnalysisContext(backend={self.backend.name!r}, "
            f"budget={self.budget!r}, jobs={self.jobs!r}, "
            f"cached={len(self._memo)})"
        )


__all__ = ["AnalysisContext"]
