"""Shared JSON round-tripping for pipeline result artifacts.

``SynthesisResult`` (the library's end-to-end outcome),
``PipelineResult`` (the Table-1 harness row) and ``MCReport`` (the
per-region MC analysis) all serialise through this module, so
``repro-si diff --json``, ``BENCH_pipeline.json`` and
``benchmarks/check_regression.py`` compare *structured artifacts* with a
single schema instead of ad-hoc dicts.

The contract is a stable round-trip::

    X.from_json(x.to_json()).to_json() == x.to_json()

Reconstruction is faithful where the repo has a full interchange format
(state graphs via :mod:`repro.sg.io`, netlists via
:mod:`repro.netlist.io`) and *detached* where it does not: a detached
stand-in carries exactly the serialised facts (equations text, hazard
verdict, inserted-signal names) and re-serialises identically, but does
not pretend to be re-runnable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


# ----------------------------------------------------------------------
# Detached stand-ins (duck-typed against the real result classes)
# ----------------------------------------------------------------------
class _Sized:
    """A state-graph stand-in knowing only its name and state count."""

    def __init__(self, name: str, states: int = 0):
        self.name = name
        self._states = states

    def __len__(self) -> int:
        return self._states

    @property
    def state_list(self) -> Tuple[None, ...]:
        return (None,) * self._states


@dataclass
class DetachedInsertion:
    """Serialised view of an :class:`repro.core.insertion.InsertionResult`."""

    sg: object
    report: object
    added_signals: List[str] = field(default_factory=list)

    @property
    def satisfied(self) -> bool:
        return self.report.satisfied

    def describe(self) -> str:
        if not self.added_signals:
            return "no state signals inserted"
        return f"{len(self.added_signals)} state signal(s) inserted: " + ", ".join(
            self.added_signals
        )


@dataclass
class DetachedImplementation:
    """Serialised view of a :class:`repro.core.synthesis.Implementation`."""

    equations_text: str
    shared: bool = False
    method: str = "mc"

    def equations(self) -> str:
        return self.equations_text


@dataclass
class DetachedHazardReport:
    """Serialised verdict of a :class:`repro.netlist.hazards.HazardReport`."""

    hazard_free: bool
    conflicts: int
    truncated: bool
    circuit_states: int

    def as_json(self) -> Dict:
        return {
            "hazard_free": self.hazard_free,
            "conflicts": self.conflicts,
            "truncated": self.truncated,
            "circuit_states": self.circuit_states,
        }


def _hazard_to_json(report) -> Optional[Dict]:
    if report is None:
        return None
    if isinstance(report, DetachedHazardReport):
        return report.as_json()
    return {
        "hazard_free": report.hazard_free,
        "conflicts": len(report.conflicts),
        "truncated": report.composition.truncated,
        "circuit_states": len(report.circuit_sg.state_list),
    }


def _hazard_from_json(data: Optional[Dict]) -> Optional[DetachedHazardReport]:
    if data is None:
        return None
    return DetachedHazardReport(
        hazard_free=data["hazard_free"],
        conflicts=data["conflicts"],
        truncated=data["truncated"],
        circuit_states=data["circuit_states"],
    )


# ----------------------------------------------------------------------
# MCReport
# ----------------------------------------------------------------------
def _cube_to_json(cube) -> Optional[Dict[str, int]]:
    if cube is None:
        return None
    return {signal: value for signal, value in sorted(cube.literals)}


def _parse_transition_name(name: str):
    from repro.sg.regions import ExcitationRegion

    head, index = name.rsplit("/", 1)
    signal, sign = head[:-1], head[-1]
    return ExcitationRegion(
        signal=signal,
        direction=1 if sign == "+" else -1,
        index=int(index),
        states=frozenset(),
    )


def mc_report_to_json(report) -> Dict:
    """Schema ``repro-mc-report/1``: every claim the report makes."""
    verdicts = []
    for verdict in report.verdicts:
        verdicts.append(
            {
                "region": verdict.er.transition_name,
                "unique_entry": verdict.unique_entry,
                "cube": _cube_to_json(verdict.mc_cube),
                "private": verdict.private,
                "group": sorted(e.transition_name for e in verdict.group),
                "stuck_stable": sorted(map(str, verdict.stuck_stable)),
                "stuck_opposite": sorted(map(str, verdict.stuck_opposite)),
            }
        )
    return {
        "schema": "repro-mc-report/1",
        "name": report.sg.name,
        "satisfied": report.satisfied,
        "verdicts": verdicts,
    }


def mc_report_from_json(data: Dict):
    """Rebuild a comparable :class:`~repro.core.mc.MCReport`.

    Excitation regions come back with their identity (signal, direction,
    occurrence index) but empty state sets -- state membership is not
    part of the serialised claims.
    """
    from repro.boolean.cube import Cube
    from repro.core.mc import MCReport, RegionVerdict

    verdicts = []
    for entry in data["verdicts"]:
        cube = None if entry["cube"] is None else Cube(dict(entry["cube"]))
        verdicts.append(
            RegionVerdict(
                er=_parse_transition_name(entry["region"]),
                cfr=frozenset(),
                unique_entry=entry["unique_entry"],
                mc_cube=cube,
                group=tuple(
                    _parse_transition_name(name) for name in entry["group"]
                ),
                private=entry["private"],
                stuck_stable=frozenset(entry["stuck_stable"]),
                stuck_opposite=frozenset(entry["stuck_opposite"]),
            )
        )
    return MCReport(sg=_Sized(data["name"]), verdicts=verdicts)


# ----------------------------------------------------------------------
# SynthesisResult
# ----------------------------------------------------------------------
def synthesis_result_to_json(result) -> Dict:
    """Schema ``repro-synthesis-result/1``: the full end-to-end outcome."""
    import json as _json

    from repro.netlist.io import netlist_to_json
    from repro.sg import io as sg_io

    return {
        "schema": "repro-synthesis-result/1",
        "spec": sg_io.dumps(result.spec),
        "added_signals": list(result.insertion.added_signals),
        "mc_report": mc_report_to_json(result.insertion.report),
        "equations": result.implementation.equations(),
        "shared": result.implementation.shared,
        "method": result.implementation.method,
        "netlist": _json.loads(netlist_to_json(result.netlist)),
        "hazard": _hazard_to_json(result.hazard_report),
    }


def synthesis_result_from_json(data: Dict):
    """Rebuild a :class:`repro.SynthesisResult` (detached where needed)."""
    import json as _json

    import repro
    from repro.netlist.io import netlist_from_json
    from repro.sg import io as sg_io

    spec = sg_io.loads(data["spec"])
    report = mc_report_from_json(data["mc_report"])
    return repro.SynthesisResult(
        spec=spec,
        insertion=DetachedInsertion(
            sg=spec, report=report, added_signals=list(data["added_signals"])
        ),
        implementation=DetachedImplementation(
            equations_text=data["equations"],
            shared=data["shared"],
            method=data["method"],
        ),
        netlist=netlist_from_json(_json.dumps(data["netlist"])),
        hazard_report=_hazard_from_json(data["hazard"]),
    )


# ----------------------------------------------------------------------
# PipelineResult (the Table-1 harness row)
# ----------------------------------------------------------------------
class _DetachedInterface:
    """An STG stand-in knowing only its name and interface sizes."""

    def __init__(self, name: str, inputs: int, outputs: int):
        self.name = name
        self.inputs = tuple(f"in{i}" for i in range(inputs))
        self.non_inputs = tuple(f"out{i}" for i in range(outputs))


def pipeline_result_to_json(result) -> Dict:
    """One Table-1 row; exactly the ``table1`` section row schema of
    ``BENCH_pipeline.json`` (key-compatible with frozen baselines)."""
    from repro.bench.suite import BENCHMARKS, paper_row

    row = {
        "name": result.name,
        "inputs": len(result.stg.inputs),
        "outputs": len(result.stg.non_inputs),
        "added_signals": len(result.insertion.added_signals),
        "paper_added_signals": (
            paper_row(result.name)[2] if result.name in BENCHMARKS else None
        ),
        "spec_states": len(result.spec_sg),
        "final_states": len(result.insertion.sg),
        "hazard_free": (
            None
            if result.hazard_report is None
            else result.hazard_report.hazard_free
        ),
        "elapsed_seconds": result.elapsed_seconds,
    }
    if result.profile is not None:
        row["profile"] = result.profile
    return row


def pipeline_result_from_json(data: Dict):
    """Rebuild a comparable :class:`repro.bench.suite.PipelineResult`."""
    from repro.bench.suite import PipelineResult

    hazard = None
    if data["hazard_free"] is not None:
        hazard = DetachedHazardReport(
            hazard_free=data["hazard_free"],
            conflicts=0,
            truncated=False,
            circuit_states=0,
        )
    return PipelineResult(
        name=data["name"],
        stg=_DetachedInterface(data["name"], data["inputs"], data["outputs"]),
        spec_sg=_Sized(data["name"], data["spec_states"]),
        insertion=DetachedInsertion(
            sg=_Sized(data["name"], data["final_states"]),
            report=None,
            added_signals=[f"x{i}" for i in range(data["added_signals"])],
        ),
        implementation=None,
        hazard_report=hazard,
        elapsed_seconds=data["elapsed_seconds"],
        profile=data.get("profile"),
    )


__all__ = [
    "DetachedHazardReport",
    "DetachedImplementation",
    "DetachedInsertion",
    "mc_report_from_json",
    "mc_report_to_json",
    "pipeline_result_from_json",
    "pipeline_result_to_json",
    "synthesis_result_from_json",
    "synthesis_result_to_json",
]
