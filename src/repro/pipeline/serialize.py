"""Shared JSON round-tripping for pipeline result artifacts.

``SynthesisResult`` (the library's end-to-end outcome),
``PipelineResult`` (the Table-1 harness row) and ``MCReport`` (the
per-region MC analysis) all serialise through this module, so
``repro-si diff --json``, ``BENCH_pipeline.json`` and
``benchmarks/check_regression.py`` compare *structured artifacts* with a
single schema instead of ad-hoc dicts.

The contract is a stable round-trip::

    X.from_json(x.to_json()).to_json() == x.to_json()

Reconstruction is faithful where the repo has a full interchange format
(state graphs via :mod:`repro.sg.io`, netlists via
:mod:`repro.netlist.io`) and *detached* where it does not: a detached
stand-in carries exactly the serialised facts (equations text, hazard
verdict, inserted-signal names) and re-serialises identically, but does
not pretend to be re-runnable.

A second family of codecs (:func:`stage_artifact_to_json` /
:func:`stage_artifact_from_json`) serialises the five *pipeline stage
artifacts* for the persistent artifact store
(:mod:`repro.pipeline.store`).  Unlike the detached result codecs these
round-trips are **faithful**: a loaded artifact must be able to drive
every downstream stage to byte-identical results, so excitation-region
state sets, MC diagnostics, cover ordering and degenerate flags are all
preserved exactly.  Cubes inside stage payloads are stored in the
compiled IR form -- a ``[mask, value]`` big-int pair resolved against
the embedded state graph's signal order (store envelope
``repro-artifact-store/3``, which also carries the per-signal and
per-function fingerprints backing delta re-synthesis; older envelopes
are no longer read, old entries degrade to counted misses).  The only intentionally detached piece is the hazard
report inside a loaded ``SynthesizedNetlist`` (the final stage -- no
downstream stage consumes it, only its verdict is kept).  State ids may
be strings, ints or arbitrarily nested tuples thereof (state-signal
insertion produces ``(state, phase)`` pairs); artifacts using any other
id type raise :class:`ArtifactCodingError`, which the store treats as
"do not persist", never as an error.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple


# ----------------------------------------------------------------------
# Detached stand-ins (duck-typed against the real result classes)
# ----------------------------------------------------------------------
class _Sized:
    """A state-graph stand-in knowing only its name and state count."""

    def __init__(self, name: str, states: int = 0):
        self.name = name
        self._states = states

    def __len__(self) -> int:
        return self._states

    @property
    def state_list(self) -> Tuple[None, ...]:
        return (None,) * self._states


@dataclass
class DetachedInsertion:
    """Serialised view of an :class:`repro.core.insertion.InsertionResult`."""

    sg: object
    report: object
    added_signals: List[str] = field(default_factory=list)

    @property
    def satisfied(self) -> bool:
        return self.report.satisfied

    def describe(self) -> str:
        if not self.added_signals:
            return "no state signals inserted"
        return f"{len(self.added_signals)} state signal(s) inserted: " + ", ".join(
            self.added_signals
        )


@dataclass
class DetachedImplementation:
    """Serialised view of a :class:`repro.core.synthesis.Implementation`."""

    equations_text: str
    shared: bool = False
    method: str = "mc"

    def equations(self) -> str:
        return self.equations_text


@dataclass
class _DetachedComposition:
    """Composition stand-in: just the facts the CLI verdict logic reads."""

    truncated: bool = False
    conformance_failures: Tuple = ()


@dataclass
class DetachedHazardReport:
    """Serialised verdict of a :class:`repro.netlist.hazards.HazardReport`.

    Carries exactly the serialised facts; ``conflicts`` is a *count*,
    not the witness list.  ``netlist`` is attached when the report is
    rebuilt next to its netlist (the store's ``SynthesizedNetlist``
    codec does) so harness code reading ``hazard_report.netlist`` keeps
    working on cached verdicts.
    """

    hazard_free: bool
    conflicts: int
    truncated: bool
    circuit_states: int
    #: the synthesised netlist, when rebuilt alongside one (not serialised)
    netlist: Optional[object] = None

    @property
    def composition(self) -> _DetachedComposition:
        """Duck-typed composition view (truncation flag only)."""
        return _DetachedComposition(truncated=self.truncated)

    def describe(self) -> str:
        verdict = (
            "HAZARD-FREE"
            if self.hazard_free
            else f"HAZARDOUS ({self.conflicts} conflict(s))"
        )
        suffix = ", truncated" if self.truncated else ""
        return (
            f"speed independence: {verdict} "
            f"(cached verdict, {self.circuit_states} circuit states{suffix})"
        )

    def as_json(self) -> Dict:
        return {
            "hazard_free": self.hazard_free,
            "conflicts": self.conflicts,
            "truncated": self.truncated,
            "circuit_states": self.circuit_states,
        }


def _hazard_to_json(report) -> Optional[Dict]:
    if report is None:
        return None
    if isinstance(report, DetachedHazardReport):
        return report.as_json()
    return {
        "hazard_free": report.hazard_free,
        "conflicts": len(report.conflicts),
        "truncated": report.composition.truncated,
        "circuit_states": len(report.circuit_sg.state_list),
    }


def _hazard_from_json(data: Optional[Dict]) -> Optional[DetachedHazardReport]:
    if data is None:
        return None
    return DetachedHazardReport(
        hazard_free=data["hazard_free"],
        conflicts=data["conflicts"],
        truncated=data["truncated"],
        circuit_states=data["circuit_states"],
    )


# ----------------------------------------------------------------------
# MCReport
# ----------------------------------------------------------------------
def _cube_to_json(cube) -> Optional[Dict[str, int]]:
    if cube is None:
        return None
    return {signal: value for signal, value in sorted(cube.literals)}


def _parse_transition_name(name: str):
    from repro.sg.regions import ExcitationRegion

    head, index = name.rsplit("/", 1)
    signal, sign = head[:-1], head[-1]
    return ExcitationRegion(
        signal=signal,
        direction=1 if sign == "+" else -1,
        index=int(index),
        states=frozenset(),
    )


def mc_report_to_json(report) -> Dict:
    """Schema ``repro-mc-report/1``: every claim the report makes."""
    verdicts = []
    for verdict in report.verdicts:
        verdicts.append(
            {
                "region": verdict.er.transition_name,
                "unique_entry": verdict.unique_entry,
                "cube": _cube_to_json(verdict.mc_cube),
                "private": verdict.private,
                "group": sorted(e.transition_name for e in verdict.group),
                "stuck_stable": sorted(map(str, verdict.stuck_stable)),
                "stuck_opposite": sorted(map(str, verdict.stuck_opposite)),
            }
        )
    return {
        "schema": "repro-mc-report/1",
        "name": report.sg.name,
        "satisfied": report.satisfied,
        "verdicts": verdicts,
    }


def mc_report_from_json(data: Dict):
    """Rebuild a comparable :class:`~repro.core.mc.MCReport`.

    Excitation regions come back with their identity (signal, direction,
    occurrence index) but empty state sets -- state membership is not
    part of the serialised claims.
    """
    from repro.boolean.cube import Cube
    from repro.core.mc import MCReport, RegionVerdict

    verdicts = []
    for entry in data["verdicts"]:
        cube = None if entry["cube"] is None else Cube(dict(entry["cube"]))
        verdicts.append(
            RegionVerdict(
                er=_parse_transition_name(entry["region"]),
                cfr=frozenset(),
                unique_entry=entry["unique_entry"],
                mc_cube=cube,
                group=tuple(
                    _parse_transition_name(name) for name in entry["group"]
                ),
                private=entry["private"],
                stuck_stable=frozenset(entry["stuck_stable"]),
                stuck_opposite=frozenset(entry["stuck_opposite"]),
            )
        )
    return MCReport(sg=_Sized(data["name"]), verdicts=verdicts)


# ----------------------------------------------------------------------
# SynthesisResult
# ----------------------------------------------------------------------
def synthesis_result_to_json(result) -> Dict:
    """Schema ``repro-synthesis-result/1``: the full end-to-end outcome."""
    import json as _json

    from repro.netlist.io import netlist_to_json
    from repro.sg import io as sg_io

    return {
        "schema": "repro-synthesis-result/1",
        "spec": sg_io.dumps(result.spec),
        "added_signals": list(result.insertion.added_signals),
        "mc_report": mc_report_to_json(result.insertion.report),
        "equations": result.implementation.equations(),
        "shared": result.implementation.shared,
        "method": result.implementation.method,
        "netlist": _json.loads(netlist_to_json(result.netlist)),
        "hazard": _hazard_to_json(result.hazard_report),
    }


def synthesis_result_from_json(data: Dict):
    """Rebuild a :class:`repro.SynthesisResult` (detached where needed)."""
    import json as _json

    import repro
    from repro.netlist.io import netlist_from_json
    from repro.sg import io as sg_io

    spec = sg_io.loads(data["spec"])
    report = mc_report_from_json(data["mc_report"])
    return repro.SynthesisResult(
        spec=spec,
        insertion=DetachedInsertion(
            sg=spec, report=report, added_signals=list(data["added_signals"])
        ),
        implementation=DetachedImplementation(
            equations_text=data["equations"],
            shared=data["shared"],
            method=data["method"],
        ),
        netlist=netlist_from_json(_json.dumps(data["netlist"])),
        hazard_report=_hazard_from_json(data["hazard"]),
    )


# ----------------------------------------------------------------------
# PipelineResult (the Table-1 harness row)
# ----------------------------------------------------------------------
class _DetachedInterface:
    """An STG stand-in knowing only its name and interface sizes."""

    def __init__(self, name: str, inputs: int, outputs: int):
        self.name = name
        self.inputs = tuple(f"in{i}" for i in range(inputs))
        self.non_inputs = tuple(f"out{i}" for i in range(outputs))


def pipeline_result_to_json(result) -> Dict:
    """One Table-1 row; exactly the ``table1`` section row schema of
    ``BENCH_pipeline.json`` (key-compatible with frozen baselines)."""
    from repro.bench.suite import BENCHMARKS, paper_row

    row = {
        "name": result.name,
        "inputs": len(result.stg.inputs),
        "outputs": len(result.stg.non_inputs),
        "added_signals": len(result.insertion.added_signals),
        "paper_added_signals": (
            paper_row(result.name)[2] if result.name in BENCHMARKS else None
        ),
        "spec_states": len(result.spec_sg),
        "final_states": len(result.insertion.sg),
        "hazard_free": (
            None
            if result.hazard_report is None
            else result.hazard_report.hazard_free
        ),
        "elapsed_seconds": result.elapsed_seconds,
    }
    if result.profile is not None:
        row["profile"] = result.profile
    if result.reuse is not None:
        row["reuse"] = result.reuse
    return row


def pipeline_result_from_json(data: Dict):
    """Rebuild a comparable :class:`repro.bench.suite.PipelineResult`."""
    from repro.bench.suite import PipelineResult

    hazard = None
    if data["hazard_free"] is not None:
        hazard = DetachedHazardReport(
            hazard_free=data["hazard_free"],
            conflicts=0,
            truncated=False,
            circuit_states=0,
        )
    return PipelineResult(
        name=data["name"],
        stg=_DetachedInterface(data["name"], data["inputs"], data["outputs"]),
        spec_sg=_Sized(data["name"], data["spec_states"]),
        insertion=DetachedInsertion(
            sg=_Sized(data["name"], data["final_states"]),
            report=None,
            added_signals=[f"x{i}" for i in range(data["added_signals"])],
        ),
        implementation=None,
        hazard_report=hazard,
        elapsed_seconds=data["elapsed_seconds"],
        profile=data.get("profile"),
        reuse=data.get("reuse"),
    )


# ----------------------------------------------------------------------
# Stage artifacts (the persistent artifact store payloads)
# ----------------------------------------------------------------------
class ArtifactCodingError(ValueError):
    """The artifact cannot be spilled faithfully (e.g. state ids of an
    unsupported type -- anything but strings, ints and tuples thereof).

    The store treats this as "keep the artifact in memory only" -- it is
    a capability signal, never a failure of the pipeline run.
    """


def _encode_state(state):
    """Encode one state id losslessly.

    STG elaboration names states ``"m0"``-style; state-signal insertion
    nests them into ``(state, phase)`` tuples; hand-built graphs may use
    ints.  Strings pass through, everything else is tagged so the type
    survives JSON (``{"i": 3}`` vs ``"3"``, ``{"t": [...]}`` for tuples).
    """
    if isinstance(state, str):
        return state
    if isinstance(state, bool):
        raise ArtifactCodingError(f"unsupported state id type: {state!r}")
    if isinstance(state, int):
        return {"i": state}
    if isinstance(state, tuple):
        return {"t": [_encode_state(part) for part in state]}
    raise ArtifactCodingError(f"unsupported state id type: {state!r}")


def _decode_state(data):
    if isinstance(data, str):
        return data
    if "i" in data:
        return data["i"]
    return tuple(_decode_state(part) for part in data["t"])


def _states_to_json(states) -> List:
    """A state *set* as a deterministically ordered JSON list."""
    return [_encode_state(state) for state in sorted(states, key=repr)]


def _states_from_json(data) -> FrozenSet:
    return frozenset(_decode_state(entry) for entry in data)


def _sg_to_json(sg) -> Dict:
    """A state graph as a faithful JSON document (unlike the ``.sg``
    text format, arbitrary str/int/tuple state ids survive)."""
    states = list(sg.state_list)
    index = {state: position for position, state in enumerate(states)}
    return {
        "name": sg.name,
        "signals": list(sg.signals),
        "inputs": sorted(sg.inputs),
        "states": [_encode_state(state) for state in states],
        "codes": [list(sg.code(state)) for state in states],
        "arcs": sorted(
            [index[s], event.signal, event.direction, index[t]]
            for s, event, t in sg.arcs()
        ),
        "initial": index[sg.initial],
    }


def _sg_from_json(data: Dict):
    from repro.sg.graph import SignalEvent, StateGraph

    states = [_decode_state(entry) for entry in data["states"]]
    return StateGraph(
        tuple(data["signals"]),
        frozenset(data["inputs"]),
        {state: tuple(code) for state, code in zip(states, data["codes"])},
        [
            (states[s], SignalEvent(signal, direction), states[t])
            for s, signal, direction, t in data["arcs"]
        ],
        states[data["initial"]],
        name=data["name"],
    )


def _er_to_json(er) -> Dict:
    return {
        "signal": er.signal,
        "direction": er.direction,
        "index": er.index,
        "states": _states_to_json(er.states),
    }


def _er_from_json(data: Dict):
    from repro.sg.regions import ExcitationRegion

    return ExcitationRegion(
        signal=data["signal"],
        direction=data["direction"],
        index=data["index"],
        states=_states_from_json(data["states"]),
    )


def _space_of(sg):
    """The interned signal space of an embedded state graph."""
    from repro.boolean.compiled import SignalSpace

    return SignalSpace.of(tuple(sg.signals))


def _cube_packed(cube, space) -> Optional[List[int]]:
    """A cube as its compiled ``[mask, value]`` pair against ``space``."""
    if cube is None:
        return None
    try:
        compiled = cube.compiled(space)
    except KeyError as error:  # literal outside the embedded graph
        raise ArtifactCodingError(
            f"cube constrains a signal outside the graph: {error}"
        ) from error
    return [compiled.mask, compiled.value]


def _cube_from_packed(data, space):
    from repro.boolean.compiled import CompiledCube

    if data is None:
        return None
    mask, value = data
    return CompiledCube(space, int(mask), int(value)).to_cube()


def _mc_report_to_full_json(report, space) -> Dict:
    """Every verdict with its *full* state sets (unlike the detached
    :func:`mc_report_to_json`): loaded reports must be able to drive the
    insertion engine and the synthesiser exactly like fresh ones.  MC
    cubes are stored compiled (``[mask, value]`` against ``space``)."""
    verdicts = []
    for verdict in report.verdicts:
        verdicts.append(
            {
                "er": _er_to_json(verdict.er),
                "cfr": _states_to_json(verdict.cfr),
                "unique_entry": verdict.unique_entry,
                "cube": _cube_packed(verdict.mc_cube, space),
                "group": [_er_to_json(er) for er in verdict.group],
                "private": verdict.private,
                "stuck_stable": _states_to_json(verdict.stuck_stable),
                "stuck_opposite": _states_to_json(verdict.stuck_opposite),
            }
        )
    return {"verdicts": verdicts}


def _mc_report_from_full_json(data: Dict, sg, space):
    from repro.core.mc import MCReport, RegionVerdict

    verdicts = []
    for entry in data["verdicts"]:
        verdicts.append(
            RegionVerdict(
                er=_er_from_json(entry["er"]),
                cfr=_states_from_json(entry["cfr"]),
                unique_entry=entry["unique_entry"],
                mc_cube=_cube_from_packed(entry["cube"], space),
                group=tuple(_er_from_json(er) for er in entry["group"]),
                private=entry["private"],
                stuck_stable=_states_from_json(entry["stuck_stable"]),
                stuck_opposite=_states_from_json(entry["stuck_opposite"]),
            )
        )
    return MCReport(sg=sg, verdicts=verdicts)


def reached_sg_to_json(artifact) -> Dict:
    """Stage ``reach``.  The source STG is not persisted -- no
    downstream stage reads it, and the store key already identifies it."""
    return {
        "sg": _sg_to_json(artifact.sg),
        "fingerprint": artifact.fingerprint,
    }


def reached_sg_from_json(data: Dict):
    from repro.pipeline.artifacts import ReachedSG

    return ReachedSG(
        sg=_sg_from_json(data["sg"]),
        source=None,
        fingerprint=data["fingerprint"],
    )


def region_map_to_json(artifact) -> Dict:
    """Stage ``regions``: the region tuple in analysis order."""
    return {
        "regions": [_er_to_json(er) for er in artifact.regions],
        "fingerprint": artifact.fingerprint,
        "signal_fingerprints": [list(pair) for pair in artifact.signal_fingerprints],
    }


def region_map_from_json(data: Dict):
    from repro.pipeline.artifacts import RegionMap

    return RegionMap(
        regions=tuple(_er_from_json(er) for er in data["regions"]),
        fingerprint=data["fingerprint"],
        signal_fingerprints=tuple(
            (str(signal), str(digest))
            for signal, digest in data.get("signal_fingerprints", ())
        ),
    )


def mc_verdict_to_json(artifact) -> Dict:
    """Stage ``mc``: the full report plus the graph it analysed.

    The graph is embedded so a loaded report is self-contained: its
    region verdicts compare equal (state sets included) to those a
    fresh analysis of the same graph would produce.
    """
    space = _space_of(artifact.report.sg)
    return {
        "sg": _sg_to_json(artifact.report.sg),
        "report": _mc_report_to_full_json(artifact.report, space),
        "backend": artifact.backend,
        "fingerprint": artifact.fingerprint,
        "function_fingerprints": [
            list(pair) for pair in artifact.function_fingerprints
        ],
    }


def mc_verdict_from_json(data: Dict):
    from repro.pipeline.artifacts import MCVerdict

    sg = _sg_from_json(data["sg"])
    space = _space_of(sg)
    return MCVerdict(
        report=_mc_report_from_full_json(data["report"], sg, space),
        backend=data["backend"],
        fingerprint=data["fingerprint"],
        function_fingerprints=tuple(
            (str(name), str(digest))
            for name, digest in data.get("function_fingerprints", ())
        ),
    )


def _network_to_json(network, space) -> Dict:
    def region_mapping(mapping) -> List:
        return [
            [_cube_packed(cube, space), [_er_to_json(er) for er in regions]]
            for cube, regions in mapping.items()
        ]

    return {
        "set_cover": [_cube_packed(c, space) for c in network.set_cover.cubes],
        "reset_cover": [_cube_packed(c, space) for c in network.reset_cover.cubes],
        "set_regions": region_mapping(network.set_regions),
        "reset_regions": region_mapping(network.reset_regions),
        "degenerate_set": network.degenerate_set,
        "degenerate_reset": network.degenerate_reset,
    }


def _network_from_json(signal: str, data: Dict, space):
    from repro.boolean.cover import Cover
    from repro.core.synthesis import SignalNetwork

    def region_mapping(entries) -> Dict:
        return {
            _cube_from_packed(cube, space): tuple(
                _er_from_json(er) for er in regions
            )
            for cube, regions in entries
        }

    return SignalNetwork(
        signal=signal,
        set_cover=Cover(
            [_cube_from_packed(c, space) for c in data["set_cover"]]
        ),
        reset_cover=Cover(
            [_cube_from_packed(c, space) for c in data["reset_cover"]]
        ),
        set_regions=region_mapping(data["set_regions"]),
        reset_regions=region_mapping(data["reset_regions"]),
        degenerate_set=data["degenerate_set"],
        degenerate_reset=data["degenerate_reset"],
    )


def cover_plan_to_json(artifact) -> Dict:
    """Stage ``covers``: insertion outcome + implementation, faithfully.

    Cube order inside each cover is preserved (it determines gate
    naming and equation text downstream), and the final MC report
    keeps its full state sets.  The per-round SAT labellings are the one
    thing dropped: nothing downstream of the stage reads them.
    """
    insertion = artifact.insertion
    implementation = artifact.implementation
    if implementation.sg is not insertion.sg:
        from repro.pipeline.artifacts import fingerprint_state_graph

        if fingerprint_state_graph(implementation.sg) != fingerprint_state_graph(
            insertion.sg
        ):
            raise ArtifactCodingError(
                "insertion and implementation disagree on the state graph"
            )
    space = _space_of(insertion.sg)
    return {
        "sg": _sg_to_json(insertion.sg),
        "report": _mc_report_to_full_json(insertion.report, space),
        "rounds": [
            {
                "signal": r.signal,
                "failures_before": r.failures_before,
                "failures_after": r.failures_after,
                "models_tried": r.models_tried,
            }
            for r in insertion.rounds
        ],
        "networks": {
            signal: _network_to_json(network, space)
            for signal, network in implementation.networks.items()
        },
        "shared": implementation.shared,
        "method": implementation.method,
        "fingerprint": artifact.fingerprint,
    }


def cover_plan_from_json(data: Dict):
    from repro.core.insertion import InsertionResult, InsertionRound
    from repro.core.synthesis import Implementation
    from repro.pipeline.artifacts import CoverPlan

    sg = _sg_from_json(data["sg"])
    space = _space_of(sg)
    report = _mc_report_from_full_json(data["report"], sg, space)
    rounds = [
        InsertionRound(
            signal=entry["signal"],
            labelling={},  # the SAT labelling is not persisted
            failures_before=entry["failures_before"],
            failures_after=entry["failures_after"],
            models_tried=entry["models_tried"],
        )
        for entry in data["rounds"]
    ]
    implementation = Implementation(
        sg=sg,
        networks={
            signal: _network_from_json(signal, entry, space)
            for signal, entry in data["networks"].items()
        },
        shared=data["shared"],
        method=data["method"],
    )
    return CoverPlan(
        insertion=InsertionResult(sg=sg, report=report, rounds=rounds),
        implementation=implementation,
        fingerprint=data["fingerprint"],
    )


def synthesized_netlist_to_json(artifact) -> Dict:
    """Stage ``netlist``: the netlist faithfully, the hazard report as
    its verdict (no downstream stage consumes the witness traces)."""
    import json as _json

    from repro.netlist.io import netlist_to_json

    return {
        "netlist": _json.loads(netlist_to_json(artifact.netlist)),
        "hazard": _hazard_to_json(artifact.hazard_report),
        "fingerprint": artifact.fingerprint,
    }


def synthesized_netlist_from_json(data: Dict):
    import json as _json

    from repro.netlist.io import netlist_from_json
    from repro.pipeline.artifacts import SynthesizedNetlist

    netlist = netlist_from_json(_json.dumps(data["netlist"]))
    hazard = _hazard_from_json(data["hazard"])
    if hazard is not None:
        hazard.netlist = netlist
    return SynthesizedNetlist(
        netlist=netlist,
        hazard_report=hazard,
        fingerprint=data["fingerprint"],
    )


#: stage name -> (encode, decode) for the persistent artifact store
STAGE_CODECS = {
    "reach": (reached_sg_to_json, reached_sg_from_json),
    "regions": (region_map_to_json, region_map_from_json),
    "mc": (mc_verdict_to_json, mc_verdict_from_json),
    "covers": (cover_plan_to_json, cover_plan_from_json),
    "netlist": (synthesized_netlist_to_json, synthesized_netlist_from_json),
}


def stage_artifact_to_json(stage: str, artifact) -> Dict:
    """Serialise one pipeline stage artifact for the persistent store.

    Raises :class:`ArtifactCodingError` when the artifact cannot be
    spilled faithfully and :class:`KeyError` for an unknown stage.
    """
    encode, _ = STAGE_CODECS[stage]
    return encode(artifact)


def stage_artifact_from_json(stage: str, data: Dict):
    """Rebuild one pipeline stage artifact from its store payload."""
    _, decode = STAGE_CODECS[stage]
    return decode(data)


# ----------------------------------------------------------------------
# Canonical-JSON fingerprints (batch manifests / resume journals)
# ----------------------------------------------------------------------
def canonical_json(document) -> str:
    """``document`` as canonical compact JSON (sorted keys, no spaces).

    This is the byte form that fingerprints are computed over, so it
    must stay stable: the batch resume check compares fingerprints of
    option blocks recorded by *earlier* runs.
    """
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def fingerprint_document(document) -> str:
    """SHA-256 hex digest of ``document``'s canonical JSON form."""
    return hashlib.sha256(canonical_json(document).encode("utf-8")).hexdigest()


def fingerprint_file(path: str) -> str:
    """SHA-256 hex digest of a file's bytes, ``""`` if unreadable.

    Identifies a batch design's *specification content* independently
    of its path, mtime or store placement -- the staleness test behind
    ``repro-si batch --resume``.
    """
    try:
        with open(path, "rb") as handle:
            return hashlib.sha256(handle.read()).hexdigest()
    except OSError:
        return ""


__all__ = [
    "ArtifactCodingError",
    "DetachedHazardReport",
    "DetachedImplementation",
    "DetachedInsertion",
    "STAGE_CODECS",
    "canonical_json",
    "fingerprint_document",
    "fingerprint_file",
    "mc_report_from_json",
    "mc_report_to_json",
    "pipeline_result_from_json",
    "pipeline_result_to_json",
    "stage_artifact_from_json",
    "stage_artifact_to_json",
    "synthesis_result_from_json",
    "synthesis_result_to_json",
]
