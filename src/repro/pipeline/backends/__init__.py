"""Pluggable analysis backends for the staged synthesis pipeline.

A backend is the *analysis engine* the pipeline threads through every
stage: the thing that decides, for a state graph, which excitation
regions admit monotonous covers (Definitions 17-19 of the paper).  Two
implementations are registered out of the box:

* ``bitengine`` -- the production path: packed state codes and big-int
  bitset arithmetic (:mod:`repro.sg.bitengine` driving
  :func:`repro.core.mc.analyze_mc`), with the optional ``jobs=`` thread
  fan-out over excitation functions.
* ``reference`` -- the retained pure dictionary-based semantics exactly
  as they stood before the bitengine rewrite
  (:mod:`repro.pipeline.backends.reference`).  Deliberately slow, shares
  no code with the fast path; exists so differential verification can
  run the *same* pipeline twice with different backends and diff the
  typed artifacts claim for claim.
* ``wordlane`` -- the word-parallel uint64 lane engine
  (:mod:`repro.sg.wordlane` over the kernels of :mod:`repro.sg.lanes`):
  the bitengine's bulk primitives lowered to whole-frontier array
  operations, numpy-accelerated when the ``fast`` extra is installed and
  bit-for-bit identical through the pure-python kernel when not.

Backends are selected by name (``get_backend("reference")``) so callers
-- the CLI, the bench suite, the verify campaigns -- never fork their
orchestration per engine.  Third-party engines register with
:func:`register_backend`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Union

try:  # pragma: no cover - Protocol moved in 3.8, runtime use is duck-typed
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


from repro.core.mc import MCReport
from repro.sg.graph import StateGraph


@runtime_checkable
class AnalysisBackend(Protocol):
    """The contract every pipeline analysis engine satisfies.

    ``name`` identifies the backend in registries, artifact fingerprints
    and reports; ``analyze_mc`` performs the whole-graph Monotonous
    Cover analysis and must return the same :class:`MCReport` shape as
    the fast path so reports stay comparable field by field.

    Backends that additionally accept an ``analyze_mc(reuse=...)``
    mapping of previously computed per-function verdicts (delta
    re-synthesis, see ``pipeline/incremental.py``) advertise it with a
    truthy ``supports_reuse`` class attribute; the pipeline only passes
    ``reuse`` to backends that opt in, so third-party backends are
    unaffected.
    """

    name: str

    def analyze_mc(
        self, sg: StateGraph, jobs: Optional[int] = None
    ) -> MCReport:
        """Whole-state-graph MC analysis (Definitions 18-19)."""
        ...  # pragma: no cover


#: registry of backend factories, keyed by backend name
_REGISTRY: Dict[str, Callable[[], AnalysisBackend]] = {}


def register_backend(name: str, factory: Callable[[], AnalysisBackend]) -> None:
    """Register (or replace) a backend factory under ``name``."""
    _REGISTRY[name] = factory


def available_backends() -> List[str]:
    """The registered backend names, sorted."""
    return sorted(_REGISTRY)


def get_backend(backend: Union[str, AnalysisBackend, None]) -> AnalysisBackend:
    """Resolve a backend by name (``None`` means the bitengine default).

    Already-constructed backend objects pass through unchanged, so APIs
    can accept ``backend="reference"`` and ``backend=MyEngine()`` alike.
    """
    if backend is None:
        backend = "bitengine"
    if not isinstance(backend, str):
        return backend
    try:
        factory = _REGISTRY[backend]
    except KeyError:
        raise KeyError(
            f"unknown analysis backend {backend!r}; "
            f"registered: {available_backends()}"
        ) from None
    return factory()


def _register_builtins() -> None:
    from repro.pipeline.backends.bitengine import BitengineBackend
    from repro.pipeline.backends.reference import ReferenceBackend
    from repro.pipeline.backends.wordlane import WordlaneBackend

    register_backend("bitengine", BitengineBackend)
    register_backend("reference", ReferenceBackend)
    register_backend("wordlane", WordlaneBackend)


_register_builtins()

__all__ = [
    "AnalysisBackend",
    "available_backends",
    "get_backend",
    "register_backend",
]
