"""The retained pure-reference analysis path (pre-bitengine semantics).

The bitmask engine (:mod:`repro.sg.bitengine`) rewrote every hot
primitive of the cover machinery -- cube evaluation, correctness
filtering, monotonicity scanning -- as big-int bitset arithmetic.  This
module retains the original dictionary-based semantics of
:mod:`repro.core.covers` and :mod:`repro.core.mc` exactly as they stood
before that rewrite: every predicate is decided by walking states and
evaluating ``Cube.covers`` on ``sg.code_dict``, with no shared code on
the bitengine path and no reads of the packed-state caches.

It exists for one purpose: to be the independent oracle the
differential-verification campaign (:mod:`repro.verify.differential`)
diffs the fast path against.  It is deliberately slow, and it is
reachable only as the registered ``reference`` analysis backend
(:class:`ReferenceBackend`); nothing on the bitengine path may import
it.

Equivalence is claim-for-claim, not merely verdict-for-verdict: the
candidate enumeration orders (smallest-first subsets of the smallest
cover cube's literal tuple, finest-first region partitions) mirror the
fast path, so both paths must select the *same* cube for every region,
agree on sharing groups, and report identical stuck-state diagnostics.
The only freedom the fast path's data layout introduced -- which
0 -> 1 change edge a greedy wide-region search picks as its witness --
is pinned here to the same canonical order (``sg.state_list`` position,
highest-index successor) so that even the >18-literal fallback remains
bit-for-bit comparable.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro import perf
from repro.boolean.cube import Cube
from repro.core.covers import CoverDiagnostics
from repro.core.mc import MCReport, RegionVerdict, _classify_stuck
from repro.sg.graph import State, StateGraph
from repro.sg.regions import (
    ExcitationRegion,
    all_excitation_regions,
    constant_function_region,
    excited_value_sets,
    has_unique_entry,
    ordered_signals,
)


# ----------------------------------------------------------------------
# Cover cubes (Definition 15, Lemma 3)
# ----------------------------------------------------------------------
def smallest_cover_cube(sg: StateGraph, er: ExcitationRegion) -> Cube:
    """The maximal-literal cover cube of the region (Lemma 3)."""
    some_state = next(iter(er.states))
    literals = {}
    for signal in ordered_signals(sg, er):
        literals[signal] = sg.value(some_state, signal)
    return Cube(literals)


def _is_sub_cover(sg: StateGraph, er: ExcitationRegion, cube: Cube) -> bool:
    smallest = smallest_cover_cube(sg, er)
    for signal, value in cube.literals:
        if smallest.value_of(signal) != value:
            return False
    return True


# ----------------------------------------------------------------------
# Correct covering (Definition 16)
# ----------------------------------------------------------------------
def covers_correctly(sg: StateGraph, er: ExcitationRegion, cube: Cube) -> bool:
    """Definition 16 by brute force over the forbidden value sets."""
    sets = excited_value_sets(sg, er.signal)
    if er.direction == 1:
        forbidden = sets["1*-set"] | sets["0-set"]
    else:
        forbidden = sets["0*-set"] | sets["1-set"]
    return not any(cube.covers(sg.code_dict(state)) for state in forbidden)


# ----------------------------------------------------------------------
# Monotonous covers (Definition 17)
# ----------------------------------------------------------------------
def _monotonicity_violation(
    sg: StateGraph, cfr: FrozenSet[State], cube: Cube
) -> Optional[Tuple[State, State, State, State]]:
    """First 0 -> 1 change edge inside the CFR, in canonical order.

    The canonical order -- 0-states scanned by their ``sg.state_list``
    position, the highest-positioned 1-successor chosen -- matches the
    fast path's bit-scan order exactly, so greedy searches seeded by
    this witness drop the same literals on both paths.
    """
    position = {state: i for i, state in enumerate(sg.state_list)}
    values = {s: cube.covers(sg.code_dict(s)) for s in cfr}
    for state in sorted(cfr, key=position.__getitem__):
        if values[state]:
            continue
        rising = [
            target
            for _, target in sg.arcs_from(state)
            if values.get(target)
        ]
        if rising:
            target = max(rising, key=position.__getitem__)
            return (state, target, state, target)
    return None


def check_monotonous_cover(
    sg: StateGraph,
    er: ExcitationRegion,
    cube: Cube,
    cfr: Optional[FrozenSet[State]] = None,
) -> CoverDiagnostics:
    """Full Definition-17 check, one ``Cube.covers`` call per state."""
    if cfr is None:
        cfr = constant_function_region(sg, er)
    covers_all = all(cube.covers(sg.code_dict(s)) for s in er.states)
    outside = frozenset(
        s for s in sg.states if s not in cfr and cube.covers(sg.code_dict(s))
    )
    witness = _monotonicity_violation(sg, cfr, cube)
    return CoverDiagnostics(
        cube=cube,
        covers_all_er=covers_all,
        monotonous=witness is None,
        outside_cfr=outside,
        change_witness=witness,
    )


def find_monotonous_cover(
    sg: StateGraph,
    er: ExcitationRegion,
    max_literal_budget: int = 18,
) -> Optional[Cube]:
    """Reference MC-cube search, same enumeration order as the fast path.

    Subsets of the smallest cover cube's literal tuple are tried
    smallest-first; condition (3) is pre-filtered by a per-state walk
    instead of cached exclusion bitsets, and the monotonicity check is
    the per-state :func:`_monotonicity_violation` scan.
    """
    cfr = constant_function_region(sg, er)
    full = smallest_cover_cube(sg, er)
    outside_states = [s for s in sg.state_list if s not in cfr]
    if any(full.covers(sg.code_dict(s)) for s in outside_states):
        return None  # condition (3) can only get worse with fewer literals

    literals = full.literals
    if len(literals) > max_literal_budget:
        if check_monotonous_cover(sg, er, full, cfr).is_mc:
            return full
        return _greedy_mc_search(sg, er, full, cfr)

    # Condition (3) as a hitting set: every reachable state outside the
    # CFR must be excluded by at least one kept literal.
    exclusion: List[Set[State]] = []
    for signal, value in literals:
        exclusion.append(
            {s for s in outside_states if sg.code_dict(s)[signal] != value}
        )
    need = set(outside_states)

    indices = range(len(literals))
    for size in range(0, len(literals) + 1):
        for subset in combinations(indices, size):
            excluded: Set[State] = set()
            for i in subset:
                excluded |= exclusion[i]
            if excluded != need:
                continue
            cube = Cube(dict(literals[i] for i in subset))
            if _monotonicity_violation(sg, cfr, cube) is None:
                return cube
    return None


def _greedy_mc_search(
    sg: StateGraph, er: ExcitationRegion, full: Cube, cfr: FrozenSet[State]
) -> Optional[Cube]:
    """Greedy literal dropping for regions too wide to enumerate."""
    cube = full
    for _ in range(len(full)):
        diagnostics = check_monotonous_cover(sg, er, cube, cfr)
        if diagnostics.is_mc:
            return cube
        witness = diagnostics.change_witness
        if witness is None:
            return None
        u2, v2 = witness[2], witness[3]
        changed = [
            s for s, _ in cube.literals if sg.value(u2, s) != sg.value(v2, s)
        ]
        if not changed:
            return None
        cube = cube.without(changed[:1])
        if check_monotonous_cover(sg, er, cube, cfr).outside_cfr:
            return None
    diagnostics = check_monotonous_cover(sg, er, cube, cfr)
    return cube if diagnostics.is_mc else None


# ----------------------------------------------------------------------
# Generalised MC over region sets (Definition 19)
# ----------------------------------------------------------------------
def check_generalized_mc(
    sg: StateGraph, ers: Sequence[ExcitationRegion], cube: Cube
) -> bool:
    """Definition 19 by per-state evaluation (see the fast-path docs)."""
    if not ers:
        return False
    for er in ers:
        if not _is_sub_cover(sg, er, cube):
            return False
        if not covers_correctly(sg, er, cube):
            return False
    union_cfr: Set[State] = set()
    for er in ers:
        cfr = constant_function_region(sg, er)
        union_cfr |= cfr
        if not all(cube.covers(sg.code_dict(s)) for s in er.states):
            return False
        if _monotonicity_violation(sg, cfr, cube) is not None:
            return False
    if any(
        s not in union_cfr and cube.covers(sg.code_dict(s)) for s in sg.states
    ):
        return False
    return True


def find_generalized_monotonous_cover(
    sg: StateGraph, ers: Sequence[ExcitationRegion]
) -> Optional[Cube]:
    """Shared-cube search over a region set, smallest subsets first."""
    if not ers:
        return None
    if len(ers) == 1:
        return find_monotonous_cover(sg, ers[0])
    common = set(smallest_cover_cube(sg, ers[0]).literals)
    for er in ers[1:]:
        common &= set(smallest_cover_cube(sg, er).literals)
    if not common:
        return None
    literals = sorted(common)
    full = Cube(dict(literals))
    union_cfr: Set[State] = set()
    for er in ers:
        union_cfr |= constant_function_region(sg, er)
    if any(
        s not in union_cfr and full.covers(sg.code_dict(s)) for s in sg.states
    ):
        return None  # condition (3) unfixable by dropping literals
    for size in range(1, len(literals) + 1):
        for subset in combinations(literals, size):
            cube = Cube(dict(subset))
            if check_generalized_mc(sg, ers, cube):
                return cube
    return None


def _partitions(items: Sequence):
    """All set partitions of ``items`` (finest first by construction)."""
    items = list(items)
    if not items:
        yield []
        return
    head, rest = items[0], items[1:]
    for partition in _partitions(rest):
        yield [[head]] + partition
        for i in range(len(partition)):
            yield partition[:i] + [[head] + partition[i]] + partition[i + 1 :]


def find_region_cover_assignment(
    sg: StateGraph,
    regions: Sequence[ExcitationRegion],
    precomputed: Optional[Dict[ExcitationRegion, Optional[Cube]]] = None,
    max_regions_exact: int = 6,
) -> Optional[Dict[ExcitationRegion, Cube]]:
    """Theorem-5 assignment search, finest partitions first."""
    regions = list(regions)
    if not regions:
        return {}
    single = dict(precomputed or {})
    for er in regions:
        if er not in single:
            single[er] = find_monotonous_cover(sg, er)
    if all(single[er] is not None for er in regions):
        return {er: single[er] for er in regions}
    if len(regions) > max_regions_exact:
        return _greedy_cover_assignment(sg, regions, single)

    group_cache: Dict[Tuple[ExcitationRegion, ...], Optional[Cube]] = {}

    def cube_for(group: Tuple[ExcitationRegion, ...]) -> Optional[Cube]:
        if len(group) == 1:
            return single[group[0]]
        if group not in group_cache:
            group_cache[group] = find_generalized_monotonous_cover(sg, group)
        return group_cache[group]

    for partition in _partitions(regions):
        assignment: Dict[ExcitationRegion, Cube] = {}
        for group in partition:
            key = tuple(sorted(group, key=lambda er: er.transition_name))
            cube = cube_for(key)
            if cube is None:
                assignment = {}
                break
            for er in group:
                assignment[er] = cube
        if assignment:
            return assignment
    return None


def _greedy_cover_assignment(
    sg: StateGraph,
    regions: Sequence[ExcitationRegion],
    single: Dict[ExcitationRegion, Optional[Cube]],
) -> Optional[Dict[ExcitationRegion, Cube]]:
    """Fallback for functions with many regions: grow groups greedily."""
    assignment: Dict[ExcitationRegion, Cube] = {
        er: cube for er, cube in single.items() if cube is not None
    }
    failed = [er for er in regions if er not in assignment]
    for er in failed:
        if er in assignment:
            continue
        placed = False
        for size in range(2, len(regions) + 1):
            for group in combinations(regions, size):
                if er not in group:
                    continue
                cube = find_generalized_monotonous_cover(sg, list(group))
                if cube is not None:
                    for member in group:
                        assignment[member] = cube
                    placed = True
                    break
            if placed:
                break
        if not placed:
            return None
    return assignment


# ----------------------------------------------------------------------
# Whole-graph MC analysis (Definitions 18-19), reference path
# ----------------------------------------------------------------------
def _function_verdicts(
    sg: StateGraph, regions: List[ExcitationRegion]
) -> List[RegionVerdict]:
    """Reference mirror of :func:`repro.core.mc._function_verdicts`."""
    verdicts: List[RegionVerdict] = []
    private: Dict[ExcitationRegion, Optional[Cube]] = {
        er: find_monotonous_cover(sg, er) for er in regions
    }
    assignment = find_region_cover_assignment(sg, regions, precomputed=private)
    groups: Dict[Cube, List[ExcitationRegion]] = {}
    if assignment:
        for er, cube in assignment.items():
            groups.setdefault(cube, []).append(er)
    for er in regions:
        cfr = constant_function_region(sg, er)
        cube = assignment.get(er) if assignment else private[er]
        stuck_stable: FrozenSet[State] = frozenset()
        stuck_opposite: FrozenSet[State] = frozenset()
        if cube is None:
            smallest = smallest_cover_cube(sg, er)
            outside = check_monotonous_cover(sg, er, smallest, cfr).outside_cfr
            stuck_stable, stuck_opposite = _classify_stuck(sg, er, outside)
        verdicts.append(
            RegionVerdict(
                er=er,
                cfr=frozenset(cfr),
                unique_entry=has_unique_entry(sg, er),
                mc_cube=cube,
                group=tuple(groups.get(cube, [er])) if cube else (),
                private=private.get(er) is not None
                and cube == private.get(er),
                stuck_stable=stuck_stable,
                stuck_opposite=stuck_opposite,
            )
        )
    return verdicts


def analyze_mc_reference(sg: StateGraph) -> MCReport:
    """Serial, dictionary-based MC analysis of a whole state graph.

    Returns the same :class:`~repro.core.mc.MCReport` shape as the fast
    path, so reports are comparable field by field.
    """
    by_function: Dict[Tuple[str, int], List[ExcitationRegion]] = {}
    for er in all_excitation_regions(sg, only_non_inputs=True):
        by_function.setdefault((er.signal, er.direction), []).append(er)
    verdicts: List[RegionVerdict] = []
    for _, regions in sorted(by_function.items()):
        verdicts.extend(_function_verdicts(sg, regions))
    return MCReport(sg=sg, verdicts=verdicts)


class ReferenceBackend:
    """Pure dictionary-based oracle path as a registered pipeline backend.

    ``jobs`` is accepted for interface parity and ignored: the reference
    path is deliberately serial so its claims cannot be perturbed by
    scheduling.
    """

    name = "reference"

    def analyze_mc(
        self, sg: StateGraph, jobs: Optional[int] = None
    ) -> MCReport:
        perf.count("backend.reference.analyze_mc")
        return analyze_mc_reference(sg)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<AnalysisBackend reference>"


#: the public surface forwarded by the :mod:`repro.verify.reference` shim
__all__ = [
    "ReferenceBackend",
    "analyze_mc_reference",
    "check_generalized_mc",
    "check_monotonous_cover",
    "covers_correctly",
    "find_generalized_monotonous_cover",
    "find_monotonous_cover",
    "find_region_cover_assignment",
    "smallest_cover_cube",
]
