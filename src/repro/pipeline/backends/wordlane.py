"""The word-lane vectorised analysis backend.

Installs a :class:`~repro.sg.wordlane.LaneEngine` into the graph's
analysis cache and then delegates to the shared
:func:`repro.core.mc.analyze_mc` orchestration: every region, cube and
verdict is produced by exactly the code the ``bitengine`` backend runs,
but all bulk primitives underneath resolve to uint64 lane kernels
(numpy when installed via the ``fast`` extra, the pure-python
``array('Q')`` kernel otherwise).  Output equality with ``bitengine``
and ``reference`` is enforced claim-for-claim by the differential
oracle.
"""

from __future__ import annotations

from typing import Optional

from repro import perf
from repro.core.mc import MCReport, analyze_mc
from repro.sg.graph import StateGraph
from repro.sg.wordlane import lane_analysis


class WordlaneBackend:
    """AnalysisBackend running the MC analysis on the lane engine."""

    name = "wordlane"
    #: accepts analyze_mc(reuse=...) with previously computed per-function
    #: verdicts (delta re-synthesis); see pipeline/incremental.py
    supports_reuse = True

    def analyze_mc(
        self, sg: StateGraph, jobs: Optional[int] = None, reuse=None
    ) -> MCReport:
        perf.count("backend.wordlane.analyze_mc")
        lane_analysis(sg)
        return analyze_mc(sg, jobs=jobs, reuse=reuse)
