"""The production analysis backend: big-int bitset MC analysis.

A thin adapter giving :func:`repro.core.mc.analyze_mc` -- the packed
state-code engine of :mod:`repro.sg.bitengine` -- the uniform
:class:`~repro.pipeline.backends.AnalysisBackend` shape.  This is the
default backend of every pipeline; the ``jobs=`` fan-out (threads over
excitation functions) passes straight through.
"""

from __future__ import annotations

from typing import Optional

from repro import perf
from repro.core.mc import MCReport, analyze_mc
from repro.sg.graph import StateGraph


class BitengineBackend:
    """Bitmask fast path (the synthesis engine the paper's tables use)."""

    name = "bitengine"
    #: accepts analyze_mc(reuse=...) with previously computed per-function
    #: verdicts (delta re-synthesis); see pipeline/incremental.py
    supports_reuse = True

    def analyze_mc(
        self, sg: StateGraph, jobs: Optional[int] = None, reuse=None
    ) -> MCReport:
        perf.count("backend.bitengine.analyze_mc")
        return analyze_mc(sg, jobs=jobs, reuse=reuse)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<AnalysisBackend bitengine>"
