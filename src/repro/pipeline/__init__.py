"""Staged synthesis pipeline with pluggable analysis backends.

This package is the single orchestration layer of the repo: every
end-to-end flow (CLI, library wrappers, bench harness, verify
campaigns) is a :class:`Pipeline` run over a shared
:class:`AnalysisContext`.

* :mod:`repro.pipeline.core` -- the five-stage pipeline and
  :class:`PipelineSpec`;
* :mod:`repro.pipeline.artifacts` -- the typed frozen stage artifacts
  and their fingerprint chain;
* :mod:`repro.pipeline.context` -- backend + budget + memo cache +
  profiling for one analysis world;
* :mod:`repro.pipeline.backends` -- the ``bitengine`` / ``reference``
  analysis backends behind one protocol;
* :mod:`repro.pipeline.serialize` -- shared JSON round-tripping of
  result artifacts and the faithful stage-artifact codecs;
* :mod:`repro.pipeline.store` -- the content-addressed persistent
  artifact store backing :class:`AnalysisContext` memo caches on disk;
* :mod:`repro.pipeline.shard` -- the key-space sharded composition of
  that store (``--shards``), with a remote read-through tier and
  put-rate backpressure;
* :mod:`repro.pipeline.batch` -- corpus-level batch synthesis over a
  shared store (``repro-si batch``), resumable via manifests/journals
  and scheduled over shard-affine work-stealing queues.

Quick start::

    from repro.pipeline import AnalysisContext, Pipeline, PipelineSpec

    spec = PipelineSpec.from_benchmark("delement")
    pipeline = Pipeline(AnalysisContext(backend="bitengine"))
    plan = pipeline.run(spec, until="covers")
    print(plan.implementation.equations())
"""

from repro.pipeline.artifacts import (
    CoverPlan,
    MCVerdict,
    ReachedSG,
    RegionMap,
    SynthesizedNetlist,
)
from repro.pipeline.backends import (
    AnalysisBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.pipeline.batch import BatchReport, DesignOutcome, run_batch
from repro.pipeline.context import AnalysisContext
from repro.pipeline.core import STAGES, Pipeline, PipelineSpec
from repro.pipeline.shard import ShardedStore, open_store
from repro.pipeline.store import ArtifactStore

__all__ = [
    "AnalysisBackend",
    "AnalysisContext",
    "ArtifactStore",
    "BatchReport",
    "CoverPlan",
    "DesignOutcome",
    "MCVerdict",
    "Pipeline",
    "PipelineSpec",
    "ReachedSG",
    "RegionMap",
    "STAGES",
    "ShardedStore",
    "SynthesizedNetlist",
    "available_backends",
    "get_backend",
    "open_store",
    "register_backend",
    "run_batch",
]
