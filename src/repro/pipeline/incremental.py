"""Dependency-scoped reuse for delta re-synthesis.

Whole-stage memo keys (``pipeline/core.py``) only help when an edit
leaves a stage's *entire* input untouched.  This module provides the
finer-grained machinery that lets stages reuse the parts of their output
whose actual input cone did not move:

- :func:`signal_region_digest` — a per-signal fingerprint of everything
  :func:`repro.sg.regions.excitation_regions` reads: the excited state
  sets of both directions, their BFS discovery ranks (component
  numbering) and the adjacency among excited states (component
  splitting).  Equal digests ⇒ the signal's ER list is identical.
- :func:`function_digest` — a per-``a+``/``a-`` fingerprint of the full
  input cone of the MC verdict search in ``core/mc.py`` /
  ``core/covers.py``: state values on the ordered-signal columns, the
  paper's four value sets, each region's states / CFR / minimal states /
  ordered signals / smallest cover cube, and the CFR-internal arcs the
  rise-edge monotonicity checks walk.  Equal digests ⇒ recomputing the
  function's verdicts would reproduce them bit-for-bit, so the cached
  verdicts are adopted instead.  (When a smallest cover cube exceeds the
  exhaustive-search literal budget the greedy fallback becomes sensitive
  to global state order, so the digest then also pins that order.)
- :class:`IncrementalIndex` — per-:class:`AnalysisContext` cache of
  reachability :class:`~repro.stg.reachability.ExplorationSnapshot` s
  (keyed by STG fingerprint) and of insertion-search MC analyses (keyed
  by expanded-graph fingerprint).

The digests are *sufficient* conditions for reuse, never necessary
ones: a missed reuse costs time, an adopted reuse is provably identical
to a recomputation — byte-identity of incremental artifacts is the
invariant everything here preserves.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sg.graph import StateGraph
from repro.sg.regions import (
    ExcitationRegion,
    _bfs_order,
    constant_function_region,
    excited_value_sets,
    minimal_states,
    ordered_signals,
)

__all__ = [
    "IncrementalIndex",
    "signal_region_digest",
    "region_signal_fingerprints",
    "function_digest",
    "function_fingerprints",
    "function_name",
]

# Mirrors find_monotonous_cover(max_literal_budget=18): above it the
# greedy fallback's rise-edge witnesses depend on global state order.
_EXACT_SEARCH_LITERAL_BUDGET = 18


def _digest(parts) -> str:
    from repro.pipeline.artifacts import _digest as chain_digest

    return chain_digest(*parts)


def function_name(signal: str, direction: int) -> str:
    """The ``a+`` / ``a-`` key used for per-function fingerprints."""
    return f"{signal}{'+' if direction == 1 else '-'}"


# ----------------------------------------------------------------------
# Per-signal region digests (RegionMap.signal_fingerprints)
# ----------------------------------------------------------------------
def signal_region_digest(sg: StateGraph, signal: str) -> str:
    """Fingerprint of the inputs of ``excitation_regions(sg, signal)``.

    Captures, per direction: the excited states at the pre-transition
    value with their BFS discovery ranks (which order the components and
    assign occurrence indices), and the arcs among those states (which
    split them into weakly connected components).
    """
    position = sg.signal_position(signal)
    discovery = _bfs_order(sg)
    fallback = len(discovery)
    parts: List[str] = [signal]
    for direction in (+1, -1):
        before = 0 if direction == 1 else 1
        excited = {
            state
            for state in sg.state_list
            if sg.code(state)[position] == before and sg.is_excited(state, signal)
        }
        members = sorted(
            f"{state!r}@{discovery.get(state, fallback)}" for state in excited
        )
        edges = sorted(
            f"{source!r}~{target!r}"
            for source in excited
            for _, target in sg.arcs_from(source)
            if target in excited
        )
        parts.append("+" if direction == 1 else "-")
        parts.extend(members)
        parts.append("|")
        parts.extend(edges)
    return _digest(parts)


def region_signal_fingerprints(sg: StateGraph) -> Tuple[Tuple[str, str], ...]:
    """``(signal, digest)`` pairs for every non-input signal, sorted."""
    return tuple(
        (signal, signal_region_digest(sg, signal))
        for signal in sorted(sg.non_inputs)
    )


# ----------------------------------------------------------------------
# Per-function MC digests (MCVerdict.function_fingerprints)
# ----------------------------------------------------------------------
def function_digest(
    sg: StateGraph,
    signal: str,
    direction: int,
    ers: Sequence[ExcitationRegion],
) -> str:
    """Fingerprint of the input cone of one function's MC verdicts.

    The verdict search (``core/mc.py`` → ``core/covers.py``) reads, for
    the regions of ``signal``/``direction``: state values on the
    ordered-signal columns over *all* states (cover-cube coverage and
    outside-CFR exclusion), the four excited value sets of the signal
    (forbidden bitsets and stuck classification), each region's states,
    CFR, minimal states, ordered signals and smallest cover cube, and
    the arcs incident to the CFR (rise-edge monotonicity).  All of that
    is digested here; the expensive cover-lattice search is *not* run.
    """
    parts: List[str] = [function_name(signal, direction)]

    columns = {signal}
    for er in ers:
        columns.update(ordered_signals(sg, er))
    ordered_columns = sorted(columns)
    parts.append("cols:" + ",".join(ordered_columns))

    positions = [sg.signal_position(s) for s in ordered_columns]
    for state in sorted(sg.state_list, key=repr):
        code = sg.code(state)
        parts.append(f"{state!r}=" + "".join(str(code[i]) for i in positions))

    value_sets = excited_value_sets(sg, signal)
    for set_name in ("0-set", "0*-set", "1-set", "1*-set"):
        parts.append(set_name)
        parts.extend(sorted(repr(state) for state in value_sets[set_name]))

    from repro.core.covers import smallest_cover_cube

    all_arcs = sg.arcs()
    pin_state_order = False
    for er in ers:
        cfr = constant_function_region(sg, er)
        cube = smallest_cover_cube(sg, er)
        if len(cube.literals) > _EXACT_SEARCH_LITERAL_BUDGET:
            pin_state_order = True
        parts.append("er:" + er.transition_name)
        parts.extend(sorted(repr(state) for state in er.states))
        parts.append("cfr")
        parts.extend(sorted(repr(state) for state in cfr))
        parts.append("min")
        parts.extend(sorted(repr(state) for state in minimal_states(sg, er)))
        parts.append("ord:" + ",".join(sorted(ordered_signals(sg, er))))
        parts.append(
            "scc:" + ",".join(f"{s}={v}" for s, v in cube.literals)
        )
        parts.append("arcs")
        parts.extend(
            sorted(
                f"{source!r}>{event}>{target!r}"
                for source, event, target in all_arcs
                if source in cfr or target in cfr
            )
        )
    if pin_state_order:
        # greedy fallback territory: witnesses follow global state order
        parts.append("order:" + "|".join(repr(s) for s in sg.state_list))
    return _digest(parts)


def function_fingerprints(
    sg: StateGraph, regions: Sequence[ExcitationRegion]
) -> Tuple[Tuple[str, str], ...]:
    """``(function, digest)`` pairs for every (signal, direction) group.

    Groups and orders exactly like ``core.mc.analyze_mc`` so the pairs
    line up with the verdict assembly order.
    """
    by_function: Dict[Tuple[str, int], List[ExcitationRegion]] = {}
    for er in regions:
        by_function.setdefault((er.signal, er.direction), []).append(er)
    return tuple(
        (function_name(signal, direction), function_digest(sg, signal, direction, ers))
        for (signal, direction), ers in sorted(by_function.items())
    )


# ----------------------------------------------------------------------
# Context-scoped caches
# ----------------------------------------------------------------------
class _LRU:
    """Small insertion-order LRU used by :class:`IncrementalIndex`."""

    def __init__(self, capacity: int):
        self.capacity = max(1, int(capacity))
        self._entries: "OrderedDict" = OrderedDict()

    def get(self, key, default=None):
        entry = self._entries.get(key)
        if entry is None:
            return default
        self._entries.move_to_end(key)
        return entry

    def __setitem__(self, key, value) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)


class IncrementalIndex:
    """Delta-reuse state carried by an :class:`AnalysisContext`.

    ``reach`` maps STG fingerprints to exploration snapshots (for replay
    on edited nets); ``insertion_cache`` maps expanded-state-graph
    fingerprints to ``(graph, MCReport)`` pairs so the insertion beam
    search skips re-analyzing candidates it (or a previous edit's
    search) has already scored.
    """

    def __init__(self, max_snapshots: int = 8, max_insertion_entries: int = 128):
        self._reach = _LRU(max_snapshots)
        self.insertion_cache = _LRU(max_insertion_entries)

    def reach_snapshot(self, stg_fingerprint: str):
        return self._reach.get(stg_fingerprint)

    def put_reach_snapshot(self, stg_fingerprint: str, snapshot) -> None:
        self._reach[stg_fingerprint] = snapshot
