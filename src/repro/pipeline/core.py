"""The staged synthesis pipeline: one orchestrator for every flow.

Every end-to-end run in the repo -- the ``repro-si`` CLI, the library
wrappers (:func:`repro.synthesize_from_stg`), the Table-1 bench harness
and the verify campaigns -- is a :class:`Pipeline` driving the same five
stages over a shared :class:`~repro.pipeline.context.AnalysisContext`::

    reach ──> regions ──> mc ──> covers ──> netlist

========== ============================================================
reach      elaborate the STG (or adopt a ready state graph)
regions    excitation regions of every non-input signal
mc         the context backend's Monotonous Cover analysis (Defs. 17-19)
covers     MC-driven state-signal insertion + standard implementation
netlist    basic-gate netlist + optional speed-independence check
========== ============================================================

``Pipeline.run(spec, until=<stage>)`` returns that stage's typed frozen
artifact (:mod:`repro.pipeline.artifacts`).  Results are memoised on the
context, keyed on the upstream artifact's fingerprint chained with every
option that feeds the stage -- running the same spec twice in one
context performs each analysis exactly once, while a mutated
specification recomputes exactly the stages downstream of the mutation.

The context also carries the single :class:`~repro.verify.budget.Budget`
the run charges (circuit composition and specification elaboration are
charged here, in the stage that performs them, and nowhere else) and the
optional perf recorder installed for the duration of each ``run``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Union

from repro import perf
from repro.pipeline.artifacts import (
    CoverPlan,
    MCVerdict,
    ReachedSG,
    RegionMap,
    SynthesizedNetlist,
    fingerprint_cover_plan,
    fingerprint_mc_report,
    fingerprint_netlist,
    fingerprint_region_map,
    fingerprint_state_graph,
    fingerprint_stg,
)
from repro.pipeline.context import AnalysisContext
from repro.sg.graph import StateGraph
from repro.stg.stg import STG

#: stage names, in execution order (the ``until=`` vocabulary)
STAGES = ("reach", "regions", "mc", "covers", "netlist")


@dataclass(frozen=True)
class PipelineSpec:
    """What to synthesise and with which options.

    Exactly one of ``stg`` / ``sg`` is the entry point; every other
    field is a stage option.  Specs are immutable values -- derive
    variants with :func:`dataclasses.replace` (the pipeline's
    memoisation keys on the fields that matter per stage, so an
    option-only variant reuses every unaffected upstream artifact).
    """

    stg: Optional[STG] = None
    sg: Optional[StateGraph] = None
    name: str = ""
    style: str = "C"
    #: ``False``, ``True`` (greedy Sec.-VI sharing) or ``"optimal"``
    share_gates: object = False
    verify: bool = True
    max_models: int = 400
    #: reachability cap when elaborating ``stg``
    max_states: int = 200_000
    #: circuit-composition cap for the hazard check
    verify_max_states: int = 500_000

    def __post_init__(self):
        if (self.stg is None) == (self.sg is None):
            raise ValueError("exactly one of stg/sg must be given")
        if not self.name:
            source = self.stg if self.stg is not None else self.sg
            object.__setattr__(self, "name", source.name)

    # ------------------------------------------------------------------
    @classmethod
    def from_stg(cls, stg: STG, **options) -> "PipelineSpec":
        return cls(stg=stg, **options)

    @classmethod
    def from_state_graph(cls, sg: StateGraph, **options) -> "PipelineSpec":
        return cls(sg=sg, **options)

    @classmethod
    def from_benchmark(cls, name: str, **options) -> "PipelineSpec":
        """A Table-1 design by name (see :data:`repro.bench.BENCHMARKS`)."""
        from repro.bench.suite import load_benchmark

        return cls(stg=load_benchmark(name), name=name, **options)

    def with_options(self, **options) -> "PipelineSpec":
        return replace(self, **options)

    def apply_delta(self, delta) -> "PipelineSpec":
        """The spec with a :class:`~repro.pipeline.delta.SpecDelta` applied.

        ``delta`` may be a ``SpecDelta``, edit text (``"add a+ b-"``
        lines) or the JSON form; only STG-based specs can be edited.
        """
        delta = _coerce_delta(delta)
        if self.stg is None:
            raise ValueError("apply_delta needs an STG-based spec")
        return replace(self, stg=delta.apply_to_stg(self.stg))


def _coerce_delta(delta):
    from repro.pipeline.delta import SpecDelta

    if isinstance(delta, SpecDelta):
        return delta
    if isinstance(delta, dict):
        return SpecDelta.from_json(delta)
    return SpecDelta.parse(delta)


@dataclass
class _DeltaHints:
    """Base-spec artifacts offered to the stages of a delta run.

    Every field is optional: absent hints degrade each stage to its
    plain from-scratch compute.  Hints never change results — they only
    let stages skip recomputing sub-results whose input cone provably
    matches the base (see :mod:`repro.pipeline.incremental`).
    """

    snapshot: object = None  # ExplorationSnapshot of the base STG
    base_regions: Optional[RegionMap] = None
    base_mc: Optional[MCVerdict] = None


class Pipeline:
    """Drives the staged flow over one :class:`AnalysisContext`."""

    stages = STAGES

    def __init__(self, context: Optional[AnalysisContext] = None):
        self.context = context if context is not None else AnalysisContext()

    # ------------------------------------------------------------------
    def run(
        self,
        spec: Union[PipelineSpec, STG, StateGraph],
        until: str = "netlist",
        delta=None,
    ):
        """Run the pipeline up to (and including) stage ``until``.

        Returns that stage's artifact; upstream artifacts land in the
        context's memo cache, so a later ``run`` of an earlier stage (or
        a re-run) is a cache hit.  Raw ``STG`` / ``StateGraph`` inputs
        are coerced to a default :class:`PipelineSpec`.

        ``delta`` switches to incremental re-synthesis: ``spec`` is the
        *base*, the pipeline runs on ``spec.apply_delta(delta)``, and
        the base spec's artifacts (probed from the context caches, plus
        the base exploration snapshot when this context elaborated it)
        are offered to each stage as reuse hints.  Incremental results
        are byte-identical to running the edited spec from scratch — the
        hints only scope *recomputation* to what the edit dirtied.
        ``delta`` accepts a :class:`~repro.pipeline.delta.SpecDelta`,
        edit text lines or the JSON form.
        """
        if until not in STAGES:
            raise ValueError(f"unknown stage {until!r}; stages are {STAGES}")
        if isinstance(spec, STG):
            spec = PipelineSpec.from_stg(spec)
        elif isinstance(spec, StateGraph):
            spec = PipelineSpec.from_state_graph(spec)
        hints: Optional[_DeltaHints] = None
        if delta is not None:
            if spec.stg is None:
                raise ValueError("delta re-synthesis needs an STG-based spec")
            base_spec = spec
            spec = base_spec.apply_delta(delta)
            hints = self._delta_hints(base_spec)
        self.context.last_reuse = {}
        with perf.recording(self.context.recorder):
            reached = self._reach(spec, hints)
            if until == "reach":
                return reached
            regions = self._regions(reached, hints)
            if until == "regions":
                return regions
            mc = self._mc(reached, regions, hints)
            if until == "mc":
                return mc
            covers = self._covers(spec, reached, mc)
            if until == "covers":
                return covers
            return self._netlist(spec, covers)

    def _delta_hints(self, base_spec: PipelineSpec) -> _DeltaHints:
        """Probe the context caches for the base spec's artifacts.

        Probes bypass the hit/miss counters (they are not part of the
        edited run's traffic).  Anything not found simply leaves the
        corresponding hint empty.
        """
        ctx = self.context
        hints = _DeltaHints()
        if base_spec.sg is not None:
            base_reached = ctx.probe("reach", (fingerprint_state_graph(base_spec.sg),))
        else:
            base_stg_fp = fingerprint_stg(base_spec.stg)
            hints.snapshot = ctx.incremental.reach_snapshot(base_stg_fp)
            base_reached = ctx.probe("reach", (base_stg_fp, base_spec.max_states))
        if base_reached is not None:
            hints.base_regions = ctx.probe("regions", (base_reached.fingerprint,))
            if hints.base_regions is not None:
                hints.base_mc = ctx.probe(
                    "mc", (hints.base_regions.fingerprint, ctx.backend.name)
                )
        return hints

    # ------------------------------------------------------------------
    def _reach(
        self, spec: PipelineSpec, hints: Optional[_DeltaHints] = None
    ) -> ReachedSG:
        ctx = self.context
        if spec.sg is not None:
            key = (fingerprint_state_graph(spec.sg),)

            def adopt() -> ReachedSG:
                return ReachedSG(sg=spec.sg, source=None, fingerprint=key[0])

            return ctx.memoize("reach", key, adopt)

        key = (fingerprint_stg(spec.stg), spec.max_states)

        def elaborate() -> ReachedSG:
            from repro.stg.reachability import stg_to_state_graph

            # The budget may lower the cap below spec.max_states, but it
            # cannot poison the shared memo/store: stg_to_state_graph
            # raises on hitting its cap instead of returning a truncated
            # graph, so a graph that elaborated successfully is
            # identical for every cap >= its size.
            cap = ctx.budget.remaining_states(spec.max_states)
            snapshot = hints.snapshot if hints is not None else None
            stats: dict = {}
            sg = stg_to_state_graph(
                spec.stg,
                max_states=min(cap, spec.max_states),
                snapshot=snapshot,
                on_snapshot=lambda snap: ctx.incremental.put_reach_snapshot(
                    key[0], snap
                ),
                stats=stats,
            )
            ctx.budget.charge_states(
                len(sg.state_list), "specification elaboration"
            )
            if snapshot is not None:
                ctx.note_reuse(
                    "reach",
                    "partial",
                    replayed_markings=stats.get("replayed", 0),
                    expanded_markings=stats.get("expanded", 0),
                )
            return ReachedSG(
                sg=sg, source=spec.stg, fingerprint=fingerprint_state_graph(sg)
            )

        return ctx.memoize("reach", key, elaborate)

    def _regions(
        self, reached: ReachedSG, hints: Optional[_DeltaHints] = None
    ) -> RegionMap:
        ctx = self.context
        key = (reached.fingerprint,)

        def compute() -> RegionMap:
            from repro.pipeline.incremental import signal_region_digest
            from repro.sg.regions import excitation_regions

            sg = reached.sg
            base_digests = {}
            base_by_signal: dict = {}
            if hints is not None and hints.base_regions is not None:
                base_digests = dict(hints.base_regions.signal_fingerprints)
                for er in hints.base_regions.regions:
                    base_by_signal.setdefault(er.signal, []).append(er)
            regions_list = []
            fingerprints = []
            reused = fresh = 0
            with perf.phase("regions"):
                for signal in sorted(sg.non_inputs):
                    digest = signal_region_digest(sg, signal)
                    fingerprints.append((signal, digest))
                    base_ers = base_by_signal.get(signal)
                    if base_ers is not None and base_digests.get(signal) == digest:
                        # identical input cone: adopt the base ER list and
                        # seed the graph's region cache so downstream
                        # analyses agree object-for-object
                        ers = list(base_ers)
                        sg._analysis_cache.setdefault(("regions", signal), ers)
                        reused += 1
                    else:
                        ers = excitation_regions(sg, signal)
                        fresh += 1
                    regions_list.extend(ers)
            if reused:
                ctx.note_reuse(
                    "regions", "partial", reused_signals=reused, computed_signals=fresh
                )
            regions = tuple(regions_list)
            return RegionMap(
                regions=regions,
                fingerprint=fingerprint_region_map(reached.fingerprint, regions),
                signal_fingerprints=tuple(fingerprints),
            )

        return ctx.memoize("regions", key, compute)

    def _mc(
        self,
        reached: ReachedSG,
        regions: RegionMap,
        hints: Optional[_DeltaHints] = None,
    ) -> MCVerdict:
        ctx = self.context
        key = (regions.fingerprint, ctx.backend.name)

        def analyze() -> MCVerdict:
            from repro.pipeline.incremental import function_digest, function_name

            sg = reached.sg
            by_function: dict = {}
            for er in regions.regions:
                by_function.setdefault((er.signal, er.direction), []).append(er)
            base_digests = {}
            base_verdicts: dict = {}
            if hints is not None and hints.base_mc is not None:
                base_digests = dict(hints.base_mc.function_fingerprints)
                for verdict in hints.base_mc.report.verdicts:
                    base_verdicts.setdefault(
                        function_name(verdict.er.signal, verdict.er.direction), []
                    ).append(verdict)
            fingerprints = []
            reuse_map: dict = {}
            for (signal, direction), ers in sorted(by_function.items()):
                fname = function_name(signal, direction)
                digest = function_digest(sg, signal, direction, ers)
                fingerprints.append((fname, digest))
                if base_digests.get(fname) == digest and fname in base_verdicts:
                    reuse_map[(signal, direction)] = base_verdicts[fname]
            if reuse_map and getattr(ctx.backend, "supports_reuse", False):
                report = ctx.backend.analyze_mc(sg, jobs=ctx.jobs, reuse=reuse_map)
                ctx.note_reuse(
                    "mc",
                    "partial",
                    reused_functions=len(reuse_map),
                    computed_functions=len(by_function) - len(reuse_map),
                )
            else:
                report = ctx.backend.analyze_mc(sg, jobs=ctx.jobs)
            return MCVerdict(
                report=report,
                backend=ctx.backend.name,
                fingerprint=fingerprint_mc_report(
                    regions.fingerprint, ctx.backend.name, report
                ),
                function_fingerprints=tuple(fingerprints),
            )

        return ctx.memoize("mc", key, analyze)

    def _covers(
        self, spec: PipelineSpec, reached: ReachedSG, mc: MCVerdict
    ) -> CoverPlan:
        ctx = self.context
        key = (mc.fingerprint, spec.max_models, spec.share_gates)

        def plan() -> CoverPlan:
            from repro.core.insertion import insert_state_signals
            from repro.core.synthesis import synthesize

            with perf.phase("insertion"):
                insertion = insert_state_signals(
                    reached.sg,
                    max_models=spec.max_models,
                    report=mc.report,
                    analysis_cache=ctx.incremental.insertion_cache,
                )
            with perf.phase("synthesis"):
                implementation = synthesize(
                    insertion.sg,
                    share_gates=spec.share_gates,
                    report=insertion.report,
                )
            return CoverPlan(
                insertion=insertion,
                implementation=implementation,
                fingerprint=fingerprint_cover_plan(
                    mc.fingerprint, insertion, implementation
                ),
            )

        return ctx.memoize("covers", key, plan)

    def _netlist(self, spec: PipelineSpec, covers: CoverPlan) -> SynthesizedNetlist:
        ctx = self.context
        key = (
            covers.fingerprint,
            spec.style,
            spec.verify,
            spec.verify_max_states,
        )
        # the cap the hazard check actually runs under: the spec's
        # request, lowered by whatever the run's budget has left
        verify_cap = min(
            spec.verify_max_states,
            ctx.budget.remaining_states(spec.verify_max_states),
        )

        def build() -> SynthesizedNetlist:
            from repro.netlist.hazards import verify_speed_independence
            from repro.netlist.netlist import netlist_from_implementation

            with perf.phase("netlist"):
                netlist = netlist_from_implementation(
                    covers.implementation, spec.style
                )
            report = None
            if spec.verify:
                with perf.phase("hazard-check"):
                    report = verify_speed_independence(
                        netlist, covers.sg, max_states=verify_cap
                    )
                ctx.budget.charge_states(
                    len(report.circuit_sg.state_list), "circuit composition"
                )
                ctx.budget.check_time("speed-independence check")
            return SynthesizedNetlist(
                netlist=netlist,
                hazard_report=report,
                fingerprint=fingerprint_netlist(
                    covers.fingerprint, netlist, report
                ),
            )

        def cap_independent(artifact: SynthesizedNetlist) -> bool:
            # ``key`` promises the spec's full verify_max_states.  When
            # the budget lowered the cap, only a complete exploration is
            # byte-identical to the full-cap artifact; a truncated
            # report would poison the shared memo/store for later
            # full-budget runs.
            if verify_cap >= spec.verify_max_states:
                return True
            report = artifact.hazard_report
            return report is None or not report.composition.truncated

        return ctx.memoize("netlist", key, build, cache_if=cap_independent)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Pipeline(context={self.context!r})"


__all__ = ["Pipeline", "PipelineSpec", "STAGES"]
