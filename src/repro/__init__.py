"""repro -- Monotonous-Cover synthesis of speed-independent circuits.

A reproduction of A. Kondratyev, M. Kishinevsky, B. Lin, P. Vanbekbergen
and A. Yakovlev, *Basic Gate Implementation of Speed-Independent
Circuits*, DAC 1994.

The library implements the paper's theory and tooling end to end:

* **State graphs** (:mod:`repro.sg`): the specification model, with all
  behavioural properties (semi-modularity, distributivity, persistency,
  CSC) and region machinery (excitation/quiescent/constant-function
  regions, unique entry, triggers, ordered/concurrent signals).
* **Signal transition graphs** (:mod:`repro.stg`): 1-safe labelled Petri
  nets in the ``.g`` format, elaborated to state graphs by token-flow
  reachability.
* **Monotonous Cover theory** (:mod:`repro.core`): cover cubes, correct
  covers, monotonous covers and their generalised (gate-sharing) form;
  MC analysis; synthesis of standard C- and RS-implementations; the
  Beerel-Meng-style correct-cover baseline; and SAT-driven state-signal
  insertion (generalized state assignment) repairing MC violations.
* **Gate-level verification** (:mod:`repro.netlist`): netlists over
  basic gates, composition with the specification environment into a
  circuit-level state graph, and speed-independence checking (output
  semi-modularity over every gate) under the pure unbounded-delay model.
* **Benchmarks** (:mod:`repro.bench`): the paper's figures entered
  verbatim and the nine Table-1 designs with the full pipeline driver.

Quick start::

    from repro import synthesize_from_stg
    from repro.bench import load_benchmark

    result = synthesize_from_stg(load_benchmark("delement"))
    print(result.implementation.equations())
"""

from dataclasses import dataclass
from typing import Optional

from repro.boolean import Cube, Cover
from repro.core import (
    analyze_mc,
    baseline_synthesize,
    insert_state_signals,
    synthesize,
    Implementation,
    InsertionResult,
    MCReport,
    SynthesisError,
)
from repro.netlist import (
    Netlist,
    netlist_from_implementation,
    verify_speed_independence,
    HazardReport,
)
from repro.sg import StateGraph, SignalEvent
from repro.stg import STG, parse_g, load_g, stg_to_state_graph

__version__ = "1.0.0"

__all__ = [
    "Cube",
    "Cover",
    "StateGraph",
    "SignalEvent",
    "STG",
    "parse_g",
    "load_g",
    "stg_to_state_graph",
    "analyze_mc",
    "synthesize",
    "baseline_synthesize",
    "insert_state_signals",
    "Implementation",
    "InsertionResult",
    "MCReport",
    "SynthesisError",
    "Netlist",
    "netlist_from_implementation",
    "verify_speed_independence",
    "HazardReport",
    "SynthesisResult",
    "synthesize_from_stg",
    "synthesize_from_state_graph",
]


@dataclass
class SynthesisResult:
    """End-to-end synthesis outcome (see :func:`synthesize_from_stg`)."""

    spec: StateGraph
    insertion: InsertionResult
    implementation: Implementation
    netlist: Netlist
    hazard_report: Optional[HazardReport]

    @property
    def added_signals(self):
        return self.insertion.added_signals

    @property
    def hazard_free(self) -> bool:
        return bool(self.hazard_report and self.hazard_report.hazard_free)


def synthesize_from_state_graph(
    sg: StateGraph,
    style: str = "C",
    share_gates: bool = False,
    verify: bool = True,
    max_models: int = 400,
    verify_max_states: int = 500_000,
) -> SynthesisResult:
    """The paper's full synthesis procedure from a state graph.

    1. insert state signals until the (generalised) MC requirement holds,
    2. derive the standard C- or RS-implementation,
    3. optionally verify speed independence at the gate level
       (``verify_max_states`` caps the circuit-level composition; a
       truncated composition makes the hazard report *inconclusive*
       rather than hazard-free).
    """
    from repro import perf

    with perf.phase("insertion"):
        insertion = insert_state_signals(sg, max_models=max_models)
    with perf.phase("synthesis"):
        implementation = synthesize(insertion.sg, share_gates=share_gates)
    with perf.phase("netlist"):
        netlist = netlist_from_implementation(implementation, style)
    with perf.phase("hazard-check"):
        report = (
            verify_speed_independence(
                netlist, insertion.sg, max_states=verify_max_states
            )
            if verify
            else None
        )
    return SynthesisResult(
        spec=sg,
        insertion=insertion,
        implementation=implementation,
        netlist=netlist,
        hazard_report=report,
    )


def synthesize_from_stg(
    stg: STG,
    style: str = "C",
    share_gates: bool = False,
    verify: bool = True,
    max_models: int = 400,
) -> SynthesisResult:
    """Convenience wrapper: elaborate the STG, then synthesise."""
    return synthesize_from_state_graph(
        stg_to_state_graph(stg),
        style=style,
        share_gates=share_gates,
        verify=verify,
        max_models=max_models,
    )
