"""repro -- Monotonous-Cover synthesis of speed-independent circuits.

A reproduction of A. Kondratyev, M. Kishinevsky, B. Lin, P. Vanbekbergen
and A. Yakovlev, *Basic Gate Implementation of Speed-Independent
Circuits*, DAC 1994.

The library implements the paper's theory and tooling end to end:

* **State graphs** (:mod:`repro.sg`): the specification model, with all
  behavioural properties (semi-modularity, distributivity, persistency,
  CSC) and region machinery (excitation/quiescent/constant-function
  regions, unique entry, triggers, ordered/concurrent signals).
* **Signal transition graphs** (:mod:`repro.stg`): 1-safe labelled Petri
  nets in the ``.g`` format, elaborated to state graphs by token-flow
  reachability.
* **Monotonous Cover theory** (:mod:`repro.core`): cover cubes, correct
  covers, monotonous covers and their generalised (gate-sharing) form;
  MC analysis; synthesis of standard C- and RS-implementations; the
  Beerel-Meng-style correct-cover baseline; and SAT-driven state-signal
  insertion (generalized state assignment) repairing MC violations.
* **Gate-level verification** (:mod:`repro.netlist`): netlists over
  basic gates, composition with the specification environment into a
  circuit-level state graph, and speed-independence checking (output
  semi-modularity over every gate) under the pure unbounded-delay model.
* **Benchmarks** (:mod:`repro.bench`): the paper's figures entered
  verbatim and the nine Table-1 designs with the full pipeline driver.

Quick start::

    from repro import synthesize_from_stg
    from repro.bench import load_benchmark

    result = synthesize_from_stg(load_benchmark("delement"))
    print(result.implementation.equations())
"""

from dataclasses import dataclass
from typing import Optional

from repro.boolean import Cube, Cover
from repro.core import (
    analyze_mc,
    baseline_synthesize,
    insert_state_signals,
    synthesize,
    Implementation,
    InsertionResult,
    MCReport,
    SynthesisError,
)
from repro.netlist import (
    Netlist,
    netlist_from_implementation,
    verify_speed_independence,
    HazardReport,
)
from repro.sg import StateGraph, SignalEvent
from repro.stg import STG, parse_g, load_g, stg_to_state_graph

__version__ = "1.0.0"

__all__ = [
    "Cube",
    "Cover",
    "StateGraph",
    "SignalEvent",
    "STG",
    "parse_g",
    "load_g",
    "stg_to_state_graph",
    "analyze_mc",
    "synthesize",
    "baseline_synthesize",
    "insert_state_signals",
    "Implementation",
    "InsertionResult",
    "MCReport",
    "SynthesisError",
    "Netlist",
    "netlist_from_implementation",
    "verify_speed_independence",
    "HazardReport",
    "SynthesisResult",
    "synthesize_from_stg",
    "synthesize_from_state_graph",
    "Pipeline",
    "PipelineSpec",
    "AnalysisContext",
]

#: orchestration names re-exported lazily (repro.pipeline imports parts
#: of this package, so a module-level import here would be a cycle)
_PIPELINE_EXPORTS = ("Pipeline", "PipelineSpec", "AnalysisContext")


def __getattr__(name):
    if name in _PIPELINE_EXPORTS:
        from repro import pipeline as _pipeline

        return getattr(_pipeline, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass
class SynthesisResult:
    """End-to-end synthesis outcome (see :func:`synthesize_from_stg`)."""

    spec: StateGraph
    insertion: InsertionResult
    implementation: Implementation
    netlist: Netlist
    hazard_report: Optional[HazardReport]

    @property
    def added_signals(self):
        return self.insertion.added_signals

    @property
    def hazard_free(self) -> bool:
        return bool(self.hazard_report and self.hazard_report.hazard_free)

    def to_json(self) -> dict:
        """Structured artifact (see :mod:`repro.pipeline.serialize`)."""
        from repro.pipeline.serialize import synthesis_result_to_json

        return synthesis_result_to_json(self)

    @classmethod
    def from_json(cls, data: dict) -> "SynthesisResult":
        """Rebuild from :meth:`to_json` output (detached where needed)."""
        from repro.pipeline.serialize import synthesis_result_from_json

        return synthesis_result_from_json(data)


def _run_synthesis(spec, context) -> SynthesisResult:
    """Drive the staged pipeline and package the classic result shape."""
    from repro.pipeline import AnalysisContext, Pipeline

    pipeline = Pipeline(context if context is not None else AnalysisContext())
    synthesized = pipeline.run(spec, until="netlist")
    plan = pipeline.run(spec, until="covers")  # memo hit: same artifacts
    reached = pipeline.run(spec, until="reach")
    return SynthesisResult(
        spec=reached.sg,
        insertion=plan.insertion,
        implementation=plan.implementation,
        netlist=synthesized.netlist,
        hazard_report=synthesized.hazard_report,
    )


def synthesize_from_state_graph(
    sg: StateGraph,
    style: str = "C",
    share_gates: bool = False,
    verify: bool = True,
    max_models: int = 400,
    verify_max_states: int = 500_000,
    context=None,
) -> SynthesisResult:
    """The paper's full synthesis procedure from a state graph.

    1. insert state signals until the (generalised) MC requirement holds,
    2. derive the standard C- or RS-implementation,
    3. optionally verify speed independence at the gate level
       (``verify_max_states`` caps the circuit-level composition; a
       truncated composition makes the hazard report *inconclusive*
       rather than hazard-free).

    A thin wrapper over :class:`repro.pipeline.Pipeline`; pass an
    :class:`~repro.pipeline.AnalysisContext` to choose the analysis
    backend, share a budget, or reuse memoised stage artifacts.
    """
    from repro.pipeline import PipelineSpec

    spec = PipelineSpec.from_state_graph(
        sg,
        style=style,
        share_gates=share_gates,
        verify=verify,
        max_models=max_models,
        verify_max_states=verify_max_states,
    )
    return _run_synthesis(spec, context)


def synthesize_from_stg(
    stg: STG,
    style: str = "C",
    share_gates: bool = False,
    verify: bool = True,
    max_models: int = 400,
    context=None,
) -> SynthesisResult:
    """Convenience wrapper: elaborate the STG, then synthesise."""
    from repro.pipeline import PipelineSpec

    spec = PipelineSpec.from_stg(
        stg,
        style=style,
        share_gates=share_gates,
        verify=verify,
        max_models=max_models,
    )
    return _run_synthesis(spec, context)
