"""Command-line interface: ``repro-si``.

Subcommands mirror the library pipeline::

    repro-si info spec.g          # properties + MC analysis of an STG
    repro-si synth spec.g         # full synthesis, equations + netlist
    repro-si verify spec.g        # synthesise and model-check (exit code)
    repro-si simulate spec.g      # Monte-Carlo random-delay simulation
    repro-si diff                 # differential oracle sweep (CI gate)
    repro-si table1               # regenerate the paper's Table 1
    repro-si batch *.g            # corpus synthesis over a process pool
    repro-si batch --corpus c.json  # ... over a generated design stream
    repro-si serve                # resident HTTP job server (asyncio)

``synth`` accepts ``--style C|RS``, ``--share`` (Section-VI gate
sharing), ``--verilog FILE`` and ``--dot FILE`` exports.  ``verify``
accepts ``--budget-states`` / ``--budget-seconds`` graceful-degradation
bounds and ``--fault-model`` dynamic fault injection.

Exit codes distinguish *verdicts* from *non-answers*:

========  =====================================================
``0``     success / hazard-free
``1``     definite negative: hazard found or synthesis failed
``2``     usage or load error (missing file, malformed ``.g``)
``3``     inconclusive: a budget tripped or the state space was
          truncated -- neither proven clean nor shown hazardous
========  =====================================================
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import perf, synthesize_from_state_graph
from repro.netlist.render import netlist_to_dot, netlist_to_verilog, sg_to_dot
from repro.netlist.simulate import monte_carlo
from repro.sg.csc import has_csc, has_usc
from repro.sg.graph import InconsistentStateGraph
from repro.sg.properties import (
    is_output_distributive,
    is_output_semi_modular,
    is_persistent,
)
from repro.stg.parser import load_g
from repro.stg.reachability import ReachabilityError, stg_to_state_graph

EXIT_OK = 0
EXIT_HAZARD = 1
EXIT_USAGE = 2
EXIT_INCONCLUSIVE = 3


class CliError(Exception):
    """A usage/input problem: reported on stderr, exit :data:`EXIT_USAGE`."""


def _load(path: str, max_states: int = 1_000_000):
    try:
        stg = load_g(path)
    except OSError as exc:
        raise CliError(f"cannot read specification: {exc}") from exc
    except ValueError as exc:
        raise CliError(f"malformed .g file {path!r}: {exc}") from exc
    if not stg.net.transitions:
        raise CliError(f"malformed .g file {path!r}: no transitions")
    try:
        return stg, stg_to_state_graph(stg, max_states=max_states)
    except ReachabilityError:
        raise  # state blowup: inconclusive, handled in main()
    except (InconsistentStateGraph, ValueError) as exc:
        raise CliError(f"invalid specification {path!r}: {exc}") from exc


def parse_jobs(text: str) -> int:
    """argparse type for ``--jobs`` (and ``--shards``): positive int.

    The one shared validator for every verb that fans out (``info``,
    ``synth``, ``verify``, ``diff``, ``table1``, ``batch``) and for the
    shard counts of ``batch``/``serve``: rejecting 0/negative values
    loudly (usage error, exit 2) replaces the old behaviour where
    non-positive job counts silently ran serial.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid integer value: {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer (got {value})"
        )
    return value


def parse_seed(text: str) -> int:
    """argparse type for ``--seed``: non-negative int (usage error, exit 2).

    The one shared validator for every verb that seeds pseudo-random
    generation (``verify``, ``simulate``, ``diff``, ``batch``): garbage
    like ``--seed banana`` or ``--seed -3`` is a loud exit-2 usage
    error instead of a mid-run traceback, and seed 0 stays legal (the
    CI gates pin it).
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid integer value: {text!r}"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be a non-negative integer (got {value})"
        )
    return value


def validated_store(path: Optional[str]) -> Optional[str]:
    """Validate a ``--store`` directory up front (usage error, exit 2).

    Long-running verbs (``batch``, ``serve``) previously surfaced a bad
    store path as a mid-run :class:`OSError` traceback from
    ``ArtifactStore`` -- after minutes of work.  This checks the three
    failure shapes eagerly: the path collides with an existing
    *file*, the directory cannot be created, or it is not writable.
    """
    if path is None:
        return None
    import os
    import tempfile

    if os.path.exists(path) and not os.path.isdir(path):
        raise CliError(
            f"--store path {path!r} is a file, not a directory"
        )
    try:
        os.makedirs(path, exist_ok=True)
    except OSError as exc:
        raise CliError(f"cannot create --store directory {path!r}: {exc}") from exc
    try:
        with tempfile.NamedTemporaryFile(dir=path, prefix=".store-probe-"):
            pass
    except OSError as exc:
        raise CliError(f"--store directory {path!r} is not writable: {exc}") from exc
    return path


def validated_shards(store: Optional[str], shards: Optional[int]) -> Optional[int]:
    """Reject ``--shards`` contradicting an existing sharded layout.

    The mismatch is detected inside :class:`ShardedStore` anyway, but
    from a worker it surfaces as a mid-run traceback; checking the
    recorded layout up front turns it into a usage error (exit 2).
    """
    if store is None or shards is None:
        return shards
    from repro.pipeline.shard import detect_layout

    recorded = detect_layout(store)
    if recorded is not None and recorded != shards:
        raise CliError(
            f"--shards {shards} contradicts the store at {store!r}, "
            f"which is laid out with {recorded} shard(s); reuse the "
            f"recorded count or start a fresh store root"
        )
    return shards


def validated_remote(path: Optional[str]) -> Optional[str]:
    """Validate a ``--remote-store`` read-through tier up front.

    The remote tier is pre-warmed by some earlier sweep; a missing or
    non-directory path would silently degrade every lookup to a local
    miss, so it is a usage error (exit 2) instead.
    """
    if path is None:
        return None
    import os

    if not os.path.isdir(path):
        raise CliError(
            f"--remote-store path {path!r} is not an existing directory"
        )
    return path


def _start_profile(args: argparse.Namespace) -> Optional[perf.PerfRecorder]:
    """Install a perf recorder when the subcommand got ``--profile``."""
    return perf.enable() if getattr(args, "profile", False) else None


def _finish_profile(recorder: Optional[perf.PerfRecorder], context=None) -> None:
    if recorder is not None:
        print()
        print(recorder.report())
        store = getattr(context, "store", None)
        if store is not None:
            print()
            print(_store_traffic_report(store))
        perf.disable()


def _store_traffic_report(store) -> str:
    """Per-stage artifact-store traffic lines for ``--profile`` output."""
    from repro.pipeline.shard import SHARD_EVENTS
    from repro.pipeline.store import EVENTS

    lines = ["artifact store traffic:"]
    stats = store.stats()
    stages = sorted({s for stages in stats.values() for s in stages})
    if not stages:
        lines.append("  (no store traffic)")
        return "\n".join(lines)
    events = [e for e in EVENTS + SHARD_EVENTS if stats.get(e)]
    for stage in stages:
        parts = ", ".join(
            f"{event} {stats[event][stage]}"
            for event in events
            if stats[event].get(stage)
        )
        lines.append(f"  {stage:<8} {parts}")
    totals = store.totals()
    summary = ", ".join(
        f"{event} {count}" for event, count in sorted(totals.items()) if count
    )
    lines.append(f"  total    {summary or '(none)'}")
    return "\n".join(lines)


def cmd_info(args: argparse.Namespace) -> int:
    from repro.pipeline import AnalysisContext, Pipeline

    recorder = _start_profile(args)
    stg, sg = _load(args.spec)
    from repro.sg.analysis import statistics

    print(f"{stg}")
    print(f"state graph: {statistics(sg).describe()}")
    print(f"  output semi-modular : {is_output_semi_modular(sg)}")
    print(f"  output distributive : {is_output_distributive(sg)}")
    print(f"  persistent          : {is_persistent(sg)}")
    print(f"  USC / CSC           : {has_usc(sg)} / {has_csc(sg)}")
    context = AnalysisContext(
        backend=args.backend, jobs=args.jobs, store=args.store
    )
    report = Pipeline(context).run(sg, until="mc").report
    print(report.describe())
    if args.dot:
        with open(args.dot, "w") as handle:
            handle.write(sg_to_dot(sg))
        print(f"state graph written to {args.dot}")
    _finish_profile(recorder, context)
    return 0


def _edit_synthesis(args, context, stg):
    """``synth --edit``: base synthesis, then delta re-synthesis.

    Runs the unedited specification first (warming the context's memo
    cache and exploration snapshot), applies the ``--edit`` lines as a
    :class:`~repro.pipeline.delta.SpecDelta`, and re-synthesises
    incrementally.  The returned result is for the *edited* design and
    is byte-identical to a from-scratch run; a per-stage reuse summary
    goes to stderr.
    """
    from repro import _run_synthesis
    from repro.pipeline import Pipeline, PipelineSpec
    from repro.pipeline.delta import DeltaError, SpecDelta

    try:
        delta = SpecDelta.parse(args.edit)
    except DeltaError as exc:
        raise CliError(f"bad --edit: {exc}") from exc
    spec = PipelineSpec.from_stg(
        stg,
        style=args.style,
        share_gates=args.share,
        verify=not args.no_verify,
        max_models=args.max_models,
    )
    pipeline = Pipeline(context)
    pipeline.run(spec)  # base synthesis: warms snapshot + artifacts
    try:
        pipeline.run(spec, delta=delta)
    except DeltaError as exc:
        raise CliError(f"--edit does not apply: {exc}") from exc
    reuse = dict(context.last_reuse)
    print(f"edit: {delta.describe()}", file=sys.stderr)
    for stage, entry in reuse.items():
        counts = ", ".join(
            f"{k}={v}" for k, v in entry.items() if k != "mode"
        )
        suffix = f" ({counts})" if counts else ""
        print(f"  {stage}: {entry['mode']}{suffix}", file=sys.stderr)
    # package the classic result shape for the edited spec (memo hits)
    return _run_synthesis(spec.apply_delta(delta), context)


def cmd_synth(args: argparse.Namespace) -> int:
    from repro.pipeline import AnalysisContext

    recorder = _start_profile(args)
    context = AnalysisContext(
        backend=args.backend, jobs=args.jobs, store=args.store
    )
    if getattr(args, "edit", None):
        stg, _ = _load(args.spec)
        result = _edit_synthesis(args, context, stg)
    else:
        _, sg = _load(args.spec)
        result = synthesize_from_state_graph(
            sg,
            style=args.style,
            share_gates=args.share,
            verify=not args.no_verify,
            max_models=args.max_models,
            context=context,
        )
    if result.added_signals:
        print(result.insertion.describe())
    print(result.implementation.equations())
    if args.regions:
        print()
        print(result.implementation.region_report())
    if args.area:
        from repro.netlist.area import area_report

        print()
        print(area_report(result.netlist))
    print()
    print(result.netlist.describe())
    if result.hazard_report is not None:
        print()
        print(result.hazard_report.describe())
    if args.verilog:
        with open(args.verilog, "w") as handle:
            handle.write(netlist_to_verilog(result.netlist))
        print(f"Verilog written to {args.verilog}")
    if args.save_netlist:
        from repro.netlist.io import save_netlist

        save_netlist(result.netlist, args.save_netlist)
        print(f"netlist JSON written to {args.save_netlist}")
    if args.save_stg:
        from repro.stg.synthesis import stg_from_state_graph
        from repro.stg.writer import dumps_g

        repaired = stg_from_state_graph(result.insertion.sg)
        with open(args.save_stg, "w") as handle:
            handle.write(dumps_g(repaired))
        print(f"repaired specification written to {args.save_stg}")
    if args.dot:
        with open(args.dot, "w") as handle:
            handle.write(netlist_to_dot(result.netlist))
        print(f"netlist graph written to {args.dot}")
    _finish_profile(recorder, context)
    if result.hazard_report is not None and not result.hazard_free:
        return 1
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    from repro.pipeline import AnalysisContext
    from repro.verify.budget import Budget

    recorder = _start_profile(args)
    budget = Budget(max_states=args.budget_states, max_seconds=args.budget_seconds)
    _, sg = _load(args.spec, max_states=budget.remaining_states(1_000_000))
    budget.charge_states(len(sg.state_list), "specification elaboration")
    # the pipeline's netlist stage charges the circuit composition and
    # runs the wall-clock check against this same budget -- exactly once
    context = AnalysisContext(
        backend=args.backend, budget=budget, jobs=args.jobs, store=args.store
    )
    run_si = args.oracle in ("si", "both")
    result = synthesize_from_state_graph(
        sg,
        style=args.style,
        verify=run_si,
        context=context,
    )
    exit_code = EXIT_OK
    if run_si:
        print(result.hazard_report.describe())
        exit_code = EXIT_OK if result.hazard_free else EXIT_HAZARD
        report = result.hazard_report
        if report.composition.truncated and not result.hazard_free:
            # truncated with no hazard witness so far: nothing is proven
            if not report.conflicts and not report.composition.conformance_failures:
                print(
                    "repro-si: inconclusive: circuit state space truncated "
                    "before full exploration",
                    file=sys.stderr,
                )
                exit_code = EXIT_INCONCLUSIVE
    if args.oracle in ("demorgan", "both"):
        from repro.verify.hazard_free import cross_check_verdicts, demorgan_check

        demorgan = demorgan_check(result.implementation)
        print(demorgan.describe())
        if args.oracle == "demorgan":
            if demorgan.claims:
                exit_code = EXIT_HAZARD
            elif not demorgan.conclusive:
                exit_code = EXIT_INCONCLUSIVE
        elif exit_code != EXIT_INCONCLUSIVE:
            # only cross-check against a *conclusive* SI verdict
            mismatch = cross_check_verdicts(
                args.spec, demorgan, result.hazard_free
            )
            if mismatch is not None:
                print(f"repro-si: {mismatch}", file=sys.stderr)
                exit_code = EXIT_HAZARD
    if args.fault_model:
        from repro.verify.faults import run_fault_injection

        fault_report = run_fault_injection(
            result.netlist,
            result.insertion.sg,
            models=args.fault_model,
            runs=args.fault_runs,
            seed=args.seed,
            context=context,
        )
        print()
        print(fault_report.describe())
        if not fault_report.mc_robust:
            exit_code = EXIT_HAZARD
        elif fault_report.truncated and exit_code == EXIT_OK:
            exit_code = EXIT_INCONCLUSIVE
    _finish_profile(recorder, context)
    return exit_code


def cmd_simulate(args: argparse.Namespace) -> int:
    _, sg = _load(args.spec)
    result = synthesize_from_state_graph(sg, style=args.style, verify=False)
    reports = monte_carlo(
        result.netlist,
        result.insertion.sg,
        runs=args.runs,
        max_events=args.events,
        seed=args.seed,
    )
    bad = [r for r in reports if not r.hazard_free]
    total_events = sum(r.fired_events for r in reports)
    print(
        f"{len(reports)} runs, {total_events} events, "
        f"{len(bad)} hazardous run(s)"
    )
    for report in bad[:3]:
        print(report.describe())
    return 0 if not bad else 1


def _diff_table1() -> int:
    """Pipeline parity: run the Table-1 designs through both backends.

    Every design's MC stage runs once per registered analysis backend;
    the serialized artifacts (:mod:`repro.pipeline.serialize`) must be
    identical.  Any artifact diff is a definite failure (exit 1).
    """
    from repro.bench.suite import BENCHMARKS, load_benchmark
    from repro.pipeline import AnalysisContext, Pipeline, PipelineSpec
    from repro.pipeline.backends import available_backends
    from repro.pipeline.serialize import mc_report_to_json
    from repro.verify.differential import diff_reports

    backends = available_backends()
    divergent = 0
    for name in BENCHMARKS:
        spec = PipelineSpec.from_stg(load_benchmark(name), name=name)
        verdicts = {
            backend: Pipeline(AnalysisContext(backend=backend)).run(spec, until="mc")
            for backend in backends
        }
        artifacts = {b: mc_report_to_json(v.report) for b, v in verdicts.items()}
        baseline_name, *other_names = backends
        mismatches = []
        for other in other_names:
            if artifacts[other] != artifacts[baseline_name]:
                mismatches += diff_reports(
                    verdicts[baseline_name].report,
                    verdicts[other].report,
                    label=f"{baseline_name} vs {other}",
                ) or [f"{baseline_name} vs {other}: artifacts differ"]
        status = "parity" if not mismatches else "DIVERGED"
        print(f"{name}: {status} ({', '.join(backends)})")
        for line in mismatches:
            print(f"  {line}")
        divergent += bool(mismatches)
    print(
        f"pipeline parity: {len(BENCHMARKS)} design(s) x "
        f"{len(backends)} backend(s), {divergent} divergent"
    )
    return EXIT_OK if divergent == 0 else EXIT_HAZARD


def cmd_diff(args: argparse.Namespace) -> int:
    """Differential oracle sweep: fast backend vs reference path (CI gate)."""
    from repro.verify.differential import differential_campaign

    if args.table1:
        return _diff_table1()
    progress = None
    if args.verbose:
        progress = lambda record: print(record.describe(), file=sys.stderr)  # noqa: E731
    report = differential_campaign(
        count=args.count,
        seed=args.seed,
        repair=not args.no_repair,
        max_states=args.max_states,
        max_seconds_each=args.max_seconds_each,
        repair_seconds=args.repair_seconds,
        progress=progress,
        jobs=args.jobs,
        store=args.store,
        backend=args.backend or "bitengine",
    )
    print(report.describe())
    if report.divergent:
        return EXIT_HAZARD
    if report.checked == 0:
        print(
            "repro-si: inconclusive: every design blew its budget",
            file=sys.stderr,
        )
        return EXIT_INCONCLUSIVE
    return EXIT_OK


def cmd_check(args: argparse.Namespace) -> int:
    """Verify an externally-provided netlist against a specification."""
    from repro.netlist.hazards import verify_speed_independence
    from repro.netlist.io import load_netlist

    _, sg = _load(args.spec)
    try:
        netlist = load_netlist(args.netlist)
    except OSError as exc:
        raise CliError(f"cannot read netlist: {exc}") from exc
    except ValueError as exc:
        raise CliError(f"malformed netlist {args.netlist!r}: {exc}") from exc
    report = verify_speed_independence(netlist, sg, max_states=args.max_states)
    print(report.describe())
    if report.hazard_free:
        return EXIT_OK
    if (
        report.composition.truncated
        and not report.conflicts
        and not report.composition.conformance_failures
    ):
        print(
            "repro-si: inconclusive: circuit state space truncated "
            "before full exploration",
            file=sys.stderr,
        )
        return EXIT_INCONCLUSIVE
    return EXIT_HAZARD


def cmd_table1(args: argparse.Namespace) -> int:
    from repro.bench.suite import (
        BENCHMARKS,
        format_table1,
        run_pipeline,
        run_table1,
        write_pipeline_json,
    )

    names = args.designs or list(BENCHMARKS)
    if args.jobs and args.jobs > 1 and not args.profile:
        print(f"running {len(names)} designs with jobs={args.jobs} ...", file=sys.stderr)
        results = run_table1(
            verify=not args.no_verify, names=names, jobs=args.jobs,
            store=args.store, backend=args.backend,
        )
    else:
        results = []
        for name in names:
            print(f"running {name} ...", file=sys.stderr)
            results.append(
                run_pipeline(
                    name, verify=not args.no_verify, profile=args.profile,
                    store=args.store, backend=args.backend,
                )
            )
    print(format_table1(results))
    if args.json:
        path = write_pipeline_json(results, args.json)
        print(f"pipeline metrics written to {path}", file=sys.stderr)
    return 0


def cmd_batch(args: argparse.Namespace) -> int:
    """Corpus synthesis: every ``.g`` spec through the full pipeline."""
    from repro.corpus import CorpusError, CorpusSpecError, load_corpus_spec
    from repro.pipeline.batch import (
        JOURNAL_SUFFIX,
        BatchJournal,
        ResumeError,
        batch_options,
        run_batch,
    )

    corpus = None
    if args.corpus:
        if args.specs:
            raise CliError("give .g specifications or --corpus, not both")
        try:
            corpus = load_corpus_spec(args.corpus)
        except (OSError, CorpusSpecError) as exc:
            raise CliError(f"cannot load corpus spec: {exc}") from exc
        if args.seed is not None:
            corpus = corpus.with_seed(args.seed)
    elif args.seed is not None:
        raise CliError("--seed only applies to --corpus runs")
    elif not args.specs:
        raise CliError("no specifications given (pass .g files or --corpus)")

    journal = None
    if args.manifest:
        # every completed design lands in the journal as it finishes, so
        # an interrupted sweep resumes from exactly where it died
        journal = BatchJournal(
            args.manifest + JOURNAL_SUFFIX,
            batch_options(
                backend=args.backend,
                style=args.style,
                share_gates=args.share,
                verify=not args.no_verify,
                max_models=args.max_models,
                max_states=args.max_states,
                timeout_seconds=args.timeout_seconds,
            ),
        )

    def stream(outcome) -> None:
        print(outcome.describe(), file=sys.stderr)
        if journal is not None:
            journal.append(outcome)

    try:
        store = validated_store(args.store)
        report = run_batch(
            args.specs,
            store=store,
            jobs=args.jobs,
            backend=args.backend,
            style=args.style,
            share_gates=args.share,
            verify=not args.no_verify,
            max_models=args.max_models,
            max_states=args.max_states,
            timeout_seconds=args.timeout_seconds,
            shards=validated_shards(store, args.shards),
            remote_store=validated_remote(args.remote_store),
            max_put_rate=args.store_put_rate,
            resume=args.resume,
            progress=stream,
            corpus=corpus,
        )
    except (ResumeError, CorpusError) as exc:
        raise CliError(str(exc)) from exc
    finally:
        if journal is not None:
            journal.close()
    print(report.describe())
    if args.manifest:
        with open(args.manifest, "w", encoding="utf-8") as handle:
            handle.write(report.manifest_text())
        print(f"manifest written to {args.manifest}", file=sys.stderr)
        if journal is not None:
            journal.close(remove=True)  # the manifest now has every row
    else:
        print(report.manifest_text(), end="")
    if args.stats:
        import json as _json

        with open(args.stats, "w", encoding="utf-8") as handle:
            _json.dump(report.stats(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"run stats written to {args.stats}", file=sys.stderr)
    return report.exit_code


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the resident synthesis job server (see docs/API.md)."""
    from repro.service.server import serve

    store = validated_store(args.store)
    return serve(
        host=args.host,
        port=args.port,
        store=store,
        shards=validated_shards(store, args.shards),
        remote_store=validated_remote(args.remote_store),
        backend=args.backend,
        workers=args.workers,
        tenant_tokens=args.tenant_tokens,
        tenant_refill=args.tenant_refill,
        job_max_states=args.job_max_states,
        job_max_seconds=args.job_max_seconds,
        max_queued=args.max_queued,
        memo_entries=args.memo_entries,
        keep_jobs=args.keep_jobs,
        port_file=args.port_file,
    )


def _add_backend_option(parser: argparse.ArgumentParser) -> None:
    """``--backend`` with choices drawn from the live backend registry.

    The choice list comes from :func:`available_backends` at parser
    build time, so backends added via ``register_backend`` appear here
    without touching the CLI; argparse rejects an unknown name with
    exit status 2 and a message enumerating the registered names.
    """
    from repro.pipeline.backends import available_backends

    names = available_backends()
    parser.add_argument(
        "--backend", default=None, choices=names, metavar="NAME",
        help="analysis backend: " + " | ".join(names),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-si",
        description="Monotonous-cover synthesis of speed-independent "
        "circuits (Kondratyev et al., DAC 1994)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="analyse an STG specification")
    p_info.add_argument("spec", help=".g file")
    p_info.add_argument("--dot", help="write the state graph as Graphviz")
    p_info.add_argument(
        "--jobs", type=parse_jobs, default=None,
        help="parallel MC analysis fan-out (threads over signals)",
    )
    _add_backend_option(p_info)
    p_info.add_argument(
        "--store", default=None, metavar="DIR",
        help="persistent artifact store directory (warm-start cache)",
    )
    p_info.add_argument(
        "--profile", action="store_true",
        help="print per-phase wall time and primitive-op counts",
    )
    p_info.set_defaults(func=cmd_info)

    p_synth = sub.add_parser("synth", help="synthesise an implementation")
    p_synth.add_argument("spec", help=".g file")
    p_synth.add_argument("--style", choices=["C", "RS", "RS-NOR", "C-INV"], default="C")
    p_synth.add_argument(
        "--share",
        nargs="?",
        const=True,
        default=False,
        choices=[True, "optimal"],
        help="Sec.-VI gate sharing (pass 'optimal' for the exact optimiser)",
    )
    p_synth.add_argument("--no-verify", action="store_true")
    p_synth.add_argument(
        "--edit", action="append", metavar="EDIT", default=None,
        help="delta re-synthesis: synthesise the spec, apply this edit "
        "('add a+ b- [marked]' | 'drop a+ b-' | 'retype x internal' | "
        "'marking p1 p2'; repeatable) and re-synthesise incrementally",
    )
    p_synth.add_argument(
        "--regions", action="store_true",
        help="print the per-region cube mapping report",
    )
    p_synth.add_argument(
        "--area", action="store_true",
        help="print the transistor-count area estimate",
    )
    p_synth.add_argument("--max-models", type=int, default=400)
    p_synth.add_argument("--verilog", help="write structural Verilog")
    p_synth.add_argument("--save-netlist", help="write the netlist as JSON")
    p_synth.add_argument(
        "--save-stg",
        help="write the (repaired) specification back as a .g STG",
    )
    p_synth.add_argument("--dot", help="write the netlist as Graphviz")
    _add_backend_option(p_synth)
    p_synth.add_argument(
        "--jobs", type=parse_jobs, default=None,
        help="thread fan-out for the MC analysis (positive integer)",
    )
    p_synth.add_argument(
        "--store", default=None, metavar="DIR",
        help="persistent artifact store directory (warm-start cache)",
    )
    p_synth.add_argument(
        "--profile", action="store_true",
        help="print per-phase wall time and primitive-op counts",
    )
    p_synth.set_defaults(func=cmd_synth)

    p_verify = sub.add_parser("verify", help="synthesise and model-check")
    p_verify.add_argument("spec", help=".g file")
    p_verify.add_argument("--style", choices=["C", "RS", "RS-NOR", "C-INV"], default="C")
    p_verify.add_argument(
        "--budget-states", type=int, default=None,
        help="total state budget across elaboration + composition "
        "(exceeded -> exit 3, inconclusive)",
    )
    p_verify.add_argument(
        "--budget-seconds", type=float, default=None,
        help="wall-clock budget for the whole run (exceeded -> exit 3)",
    )
    p_verify.add_argument(
        "--fault-model", action="append", default=None,
        choices=["delay", "glitch", "stuck"],
        help="additionally run dynamic fault injection (repeatable); "
        "a delay-storm hazard on the MC circuit -> exit 1",
    )
    p_verify.add_argument(
        "--fault-runs", type=int, default=20,
        help="simulation runs per fault model (default 20)",
    )
    p_verify.add_argument(
        "--seed", type=parse_seed, default=0,
        help="random seed for fault injection (non-negative integer)",
    )
    p_verify.add_argument(
        "--oracle", choices=["si", "demorgan", "both"], default="si",
        help="hazard oracle: 'si' composes the circuit state graph "
        "(default), 'demorgan' runs the derivation-independent ternary "
        "check on the SOP covers, 'both' runs the two and fails on any "
        "disagreement",
    )
    _add_backend_option(p_verify)
    p_verify.add_argument(
        "--jobs", type=parse_jobs, default=None,
        help="thread fan-out for the MC analysis (positive integer)",
    )
    p_verify.add_argument(
        "--store", default=None, metavar="DIR",
        help="persistent artifact store directory (warm-start cache)",
    )
    p_verify.add_argument(
        "--profile", action="store_true",
        help="print per-phase wall time and primitive-op counts",
    )
    p_verify.set_defaults(func=cmd_verify)

    p_diff = sub.add_parser(
        "diff",
        help="differential oracle: a fast backend vs reference on "
        "random STGs",
    )
    p_diff.add_argument(
        "--count", type=int, default=200,
        help="number of randomized specifications (default 200)",
    )
    p_diff.add_argument(
        "--seed", type=parse_seed, default=0,
        help="corpus generation seed (non-negative integer)",
    )
    p_diff.add_argument(
        "--max-states", type=int, default=20_000,
        help="per-design state budget (blown -> design skipped)",
    )
    p_diff.add_argument(
        "--max-seconds-each", type=float, default=30.0,
        help="per-design wall-clock budget (blown -> design skipped)",
    )
    p_diff.add_argument(
        "--repair-seconds", type=float, default=5.0,
        help="per-design deadline for the insertion cross-check "
        "(expired -> cross-check skipped for that design)",
    )
    p_diff.add_argument(
        "--no-repair", action="store_true",
        help="skip the insertion-engine repair cross-check",
    )
    p_diff.add_argument(
        "--verbose", action="store_true",
        help="stream one line per design to stderr",
    )
    p_diff.add_argument(
        "--table1", action="store_true",
        help="pipeline parity: run the Table-1 designs through every "
        "registered backend and fail on any artifact diff",
    )
    _add_backend_option(p_diff)
    p_diff.add_argument(
        "--jobs", type=parse_jobs, default=None,
        help="thread fan-out for each design's MC analyses "
        "(positive integer)",
    )
    p_diff.add_argument(
        "--store", default=None, metavar="DIR",
        help="persistent artifact store directory; NOTE: a warm store "
        "serves previous verdicts instead of re-running both engines",
    )
    p_diff.set_defaults(func=cmd_diff)

    p_sim = sub.add_parser("simulate", help="Monte-Carlo delay simulation")
    p_sim.add_argument("spec", help=".g file")
    p_sim.add_argument("--style", choices=["C", "RS"], default="C")
    p_sim.add_argument("--runs", type=int, default=20)
    p_sim.add_argument("--events", type=int, default=1000)
    p_sim.add_argument("--seed", type=parse_seed, default=0)
    p_sim.set_defaults(func=cmd_simulate)

    p_check = sub.add_parser(
        "check", help="verify an external netlist (JSON) against a spec"
    )
    p_check.add_argument("spec", help=".g file")
    p_check.add_argument("netlist", help="netlist JSON file")
    p_check.add_argument("--max-states", type=int, default=500_000)
    p_check.set_defaults(func=cmd_check)

    p_table = sub.add_parser("table1", help="regenerate the paper's Table 1")
    p_table.add_argument("designs", nargs="*", help="subset of designs")
    p_table.add_argument("--no-verify", action="store_true")
    p_table.add_argument(
        "--jobs", type=parse_jobs, default=None,
        help="run designs concurrently (thread pool)",
    )
    p_table.add_argument(
        "--profile", action="store_true",
        help="per-design phase profile (forces serial execution)",
    )
    p_table.add_argument(
        "--json", help="write/merge BENCH_pipeline.json at this path"
    )
    _add_backend_option(p_table)
    p_table.add_argument(
        "--store", default=None, metavar="DIR",
        help="persistent artifact store directory (warm-start cache)",
    )
    p_table.set_defaults(func=cmd_table1)

    p_batch = sub.add_parser(
        "batch",
        help="synthesise a corpus of .g specs (process pool + shared "
        "artifact store)",
    )
    p_batch.add_argument(
        "specs", nargs="*",
        help=".g files (or none with --corpus)",
    )
    p_batch.add_argument(
        "--corpus", metavar="FILE",
        help="generate the corpus from a repro-corpus-spec/1 JSON file "
        "(see docs/FORMATS.md) instead of reading .g files; designs "
        "stream into the scheduler without touching the filesystem",
    )
    p_batch.add_argument(
        "--seed", type=parse_seed, default=None,
        help="override the corpus spec's generation seed "
        "(non-negative integer; only valid with --corpus)",
    )
    p_batch.add_argument(
        "--jobs", type=parse_jobs, default=1,
        help="worker processes (default 1: run inline)",
    )
    p_batch.add_argument(
        "--store", default=None, metavar="DIR",
        help="persistent artifact store directory shared by all workers",
    )
    _add_backend_option(p_batch)
    p_batch.add_argument(
        "--style", choices=["C", "RS", "RS-NOR", "C-INV"], default="C"
    )
    p_batch.add_argument(
        "--share",
        nargs="?",
        const=True,
        default=False,
        choices=[True, "optimal"],
        help="Sec.-VI gate sharing (pass 'optimal' for the exact optimiser)",
    )
    p_batch.add_argument("--no-verify", action="store_true")
    p_batch.add_argument("--max-models", type=int, default=400)
    p_batch.add_argument(
        "--max-states", type=int, default=None,
        help="per-design state budget (blown -> that design inconclusive)",
    )
    p_batch.add_argument(
        "--timeout-seconds", type=float, default=None,
        help="per-design wall-clock budget (blown -> that design "
        "inconclusive, the batch continues)",
    )
    p_batch.add_argument(
        "--shards", type=parse_jobs, default=None, metavar="N",
        help="partition --store into N shard directories (key-space "
        "sharding; workers get shard-affine queues with work stealing)",
    )
    p_batch.add_argument(
        "--remote-store", default=None, metavar="DIR",
        help="read-through tier consulted on local miss (a pre-warmed "
        "store root, flat or sharded; hits are promoted locally)",
    )
    p_batch.add_argument(
        "--store-put-rate", type=float, default=None, metavar="N",
        help="per-shard put backpressure: drop store writes beyond N "
        "puts/second (counted under 'throttle'; safe, it is a cache)",
    )
    p_batch.add_argument(
        "--resume", metavar="FILE",
        help="previous manifest (and/or its .journal sidecar): designs "
        "with matching spec fingerprints are reused without running",
    )
    p_batch.add_argument(
        "--manifest", metavar="FILE",
        help="write the deterministic JSON results manifest here "
        "(default: print to stdout); also keeps a FILE.journal sidecar "
        "during the run so an interrupted sweep can --resume",
    )
    p_batch.add_argument(
        "--stats", metavar="FILE",
        help="write run stats (timings, store traffic, scheduler "
        "steal/resume counters) here",
    )
    p_batch.set_defaults(func=cmd_batch)

    p_serve = sub.add_parser(
        "serve",
        help="run the resident synthesis job server (asyncio HTTP)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=8080,
        help="TCP port (0 binds an ephemeral port; see --port-file)",
    )
    p_serve.add_argument(
        "--store", default=None, metavar="DIR",
        help="persistent artifact store shared by every request "
        "(validated up front; a bad path is a usage error)",
    )
    p_serve.add_argument(
        "--shards", type=parse_jobs, default=None, metavar="N",
        help="serve over a sharded store root (N shard directories; "
        "an existing sharded layout is autodetected without this flag)",
    )
    p_serve.add_argument(
        "--remote-store", default=None, metavar="DIR",
        help="read-through tier consulted on local store miss",
    )
    _add_backend_option(p_serve)
    p_serve.add_argument(
        "--workers", type=parse_jobs, default=1,
        help="1 (default): one worker thread sharing the in-memory "
        "artifact cache; >1: a process pool sharing warmth via --store",
    )
    p_serve.add_argument(
        "--tenant-tokens", type=float, default=2_000_000,
        help="per-tenant token-bucket capacity, in state tokens",
    )
    p_serve.add_argument(
        "--tenant-refill", type=float, default=100_000,
        help="per-tenant bucket refill rate, state tokens per second",
    )
    p_serve.add_argument(
        "--job-max-states", type=int, default=500_000,
        help="per-job state-budget cap (blown -> job inconclusive)",
    )
    p_serve.add_argument(
        "--job-max-seconds", type=float, default=None,
        help="per-job wall-clock budget (blown -> job inconclusive)",
    )
    p_serve.add_argument(
        "--max-queued", type=int, default=256,
        help="submission queue capacity (full -> HTTP 429)",
    )
    p_serve.add_argument(
        "--memo-entries", type=int, default=512,
        help="resident artifact-cache capacity (LRU-evicted beyond it)",
    )
    p_serve.add_argument(
        "--keep-jobs", type=int, default=1024,
        help="finished jobs retained (oldest pruned beyond it)",
    )
    p_serve.add_argument(
        "--port-file", metavar="FILE", default=None,
        help="write the bound port here once listening (for scripts)",
    )
    p_serve.set_defaults(func=cmd_serve)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    from repro.core.complexgate import CSCViolation
    from repro.core.insertion import InsertionError
    from repro.core.synthesis import SynthesisError
    from repro.verify.budget import BudgetExceeded

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except CliError as exc:
        print(f"repro-si: error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except BudgetExceeded as exc:
        print(f"repro-si: inconclusive: {exc.reason}", file=sys.stderr)
        return EXIT_INCONCLUSIVE
    except ReachabilityError as exc:
        print(f"repro-si: inconclusive: {exc}", file=sys.stderr)
        return EXIT_INCONCLUSIVE
    except (CSCViolation, InsertionError, SynthesisError) as exc:
        print(f"repro-si: synthesis failed: {exc}", file=sys.stderr)
        return EXIT_HAZARD


if __name__ == "__main__":
    sys.exit(main())
