"""A DPLL SAT solver with two-literal watching.

Deliberately simple but complete: iterative DPLL with unit propagation via
watched literals, a conflict-frequency branching heuristic, and optional
assumptions.  The state-assignment instances this library generates have a
few hundred variables, far below the scale where CDCL would matter; the
solver nevertheless handles tens of thousands of clauses comfortably.

The model returned is a list ``model[v] in (True, False)`` indexed by
variable (entry 0 unused).
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class SolverTimeout(Exception):
    """The search passed its deadline; satisfiability is *unknown*.

    Distinct from an UNSAT ``None`` result: callers treating a timeout
    as UNSAT would silently under-approximate the candidate space.
    """


class Solver:
    """DPLL solver over clauses in DIMACS literal convention."""

    def __init__(self, num_vars: int, clauses: Iterable[Sequence[int]]):
        self.num_vars = num_vars
        self.clauses: List[Tuple[int, ...]] = []
        self._trivially_unsat = False
        for clause in clauses:
            unique = tuple(dict.fromkeys(clause))
            if any(-lit in unique for lit in unique):
                continue  # tautological clause
            if not unique:
                self._trivially_unsat = True
                continue
            self.clauses.append(unique)
        # watches[lit] = clause indices currently watching literal ``lit``
        self._watches: Dict[int, List[int]] = {}
        self._watched: List[List[int]] = []
        self._activity = [0.0] * (num_vars + 1)
        self._build_watches()
        # A solve() mutates the watch lists and the activity scores, so a
        # later solve() (after add_clause/ensure_vars, or re-running the
        # same instance) must first restore the pristine state a fresh
        # Solver would start from; ``_prepared`` tracks whether that
        # restoration is needed.  Result-preserving by construction: the
        # rebuilt state is exactly what ``Solver(num_vars, clauses)``
        # builds, so incremental enumeration (add a blocking clause,
        # solve again) yields the same model sequence as constructing a
        # new solver per query.
        self._prepared = True

    # ------------------------------------------------------------------
    def _build_watches(self) -> None:
        self._watches = {}
        self._watched = []
        for index, clause in enumerate(self.clauses):
            pair = list(clause[:2]) if len(clause) >= 2 else [clause[0], clause[0]]
            self._watched.append(pair)
            for literal in set(pair):
                self._watches.setdefault(literal, []).append(index)

    @classmethod
    def from_cnf(cls, cnf) -> "Solver":
        return cls(cnf.num_vars, cnf.clauses)

    # ------------------------------------------------------------------
    def add_clause(self, clause: Sequence[int]) -> None:
        """Add one clause incrementally (same normalization as __init__)."""
        unique = tuple(dict.fromkeys(clause))
        if any(-lit in unique for lit in unique):
            return  # tautological clause
        if not unique:
            self._trivially_unsat = True
            return
        self.clauses.append(unique)
        self._prepared = False

    def ensure_vars(self, num_vars: int) -> None:
        """Grow the variable range (no-op if already large enough)."""
        if num_vars > self.num_vars:
            self.num_vars = num_vars
            self._prepared = False

    # ------------------------------------------------------------------
    def solve(
        self,
        assumptions: Sequence[int] = (),
        deadline: Optional[float] = None,
    ) -> Optional[List[Optional[bool]]]:
        """Return a model or ``None`` if unsatisfiable.

        ``assumptions`` are literals forced true before search.
        ``deadline`` is an absolute :func:`time.monotonic` timestamp;
        the search raises :class:`SolverTimeout` (checked once per
        decision and per conflict) when the clock passes it.
        """
        if self._trivially_unsat:
            return None
        if not self._prepared:
            self._build_watches()
            self._activity = [0.0] * (self.num_vars + 1)
        # the search below mutates watches and activity
        self._prepared = False
        assign: List[Optional[bool]] = [None] * (self.num_vars + 1)
        trail: List[int] = []
        levels: List[int] = []  # indices into trail at each decision

        def value(literal: int) -> Optional[bool]:
            v = assign[abs(literal)]
            if v is None:
                return None
            return v if literal > 0 else not v

        def enqueue(literal: int) -> bool:
            current = value(literal)
            if current is not None:
                return current
            assign[abs(literal)] = literal > 0
            trail.append(literal)
            return True

        def propagate(start: int) -> Optional[int]:
            """Unit-propagate from trail position ``start``.

            Returns the index of a conflicting clause, or None.
            """
            head = start
            while head < len(trail):
                literal = trail[head]
                head += 1
                falsified = -literal
                watching = self._watches.get(falsified)
                if not watching:
                    continue
                survivors = []
                conflict = None
                for clause_index in watching:
                    if conflict is not None:
                        survivors.append(clause_index)
                        continue
                    clause = self.clauses[clause_index]
                    pair = self._watched[clause_index]
                    if falsified not in pair:
                        continue  # stale entry
                    other = pair[0] if pair[1] == falsified else pair[1]
                    if value(other) is True:
                        survivors.append(clause_index)
                        continue
                    # find replacement watch
                    replacement = None
                    for candidate in clause:
                        if candidate == other or candidate == falsified:
                            continue
                        if value(candidate) is not False:
                            replacement = candidate
                            break
                    if replacement is not None:
                        pair[pair.index(falsified)] = replacement
                        self._watches.setdefault(replacement, []).append(clause_index)
                        continue
                    survivors.append(clause_index)
                    if value(other) is False:
                        conflict = clause_index
                    else:
                        enqueue(other)
                self._watches[falsified] = survivors
                if conflict is not None:
                    return conflict
            return None

        def backtrack_to(level: int) -> None:
            mark = levels[level]
            while len(trail) > mark:
                literal = trail.pop()
                assign[abs(literal)] = None
            del levels[level:]

        # Assumption + top-level unit seeding
        for clause in self.clauses:
            if len(clause) == 1 and not enqueue(clause[0]):
                return None
        for literal in assumptions:
            if not enqueue(literal):
                return None
        if propagate(0) is not None:
            return None

        # Decision stack parallel to ``levels``: literal decided, phase tried
        decisions: List[Tuple[int, bool]] = []
        propagated = len(trail)

        while True:
            if deadline is not None and time.monotonic() > deadline:
                raise SolverTimeout("SAT search passed its deadline")
            # pick an unassigned variable
            branch_var = 0
            best = -1.0
            for variable in range(1, self.num_vars + 1):
                if assign[variable] is None and self._activity[variable] >= best:
                    best = self._activity[variable]
                    branch_var = variable
            if branch_var == 0:
                return [v if v is not None else False for v in assign]
            levels.append(len(trail))
            decisions.append((branch_var, True))
            enqueue(branch_var)
            while True:
                conflict = propagate(propagated)
                if conflict is None:
                    propagated = len(trail)
                    break
                if deadline is not None and time.monotonic() > deadline:
                    raise SolverTimeout("SAT search passed its deadline")
                for literal in self.clauses[conflict]:
                    self._activity[abs(literal)] += 1.0
                # flip the most recent un-flipped decision
                while decisions and not decisions[-1][1]:
                    backtrack_to(len(levels) - 1)
                    decisions.pop()
                if not decisions:
                    return None
                variable, _ = decisions[-1]
                backtrack_to(len(levels) - 1)
                levels.append(len(trail))
                decisions[-1] = (variable, False)
                enqueue(-variable)
                propagated = min(propagated, len(trail) - 1)


def solve(
    cnf,
    assumptions: Sequence[int] = (),
    deadline: Optional[float] = None,
) -> Optional[List[Optional[bool]]]:
    """One-shot convenience wrapper: solve a :class:`~repro.sat.cnf.CNF`."""
    return Solver.from_cnf(cnf).solve(assumptions, deadline=deadline)
