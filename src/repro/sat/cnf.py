"""CNF construction with named variables.

Variables are positive integers; literals are signed integers in DIMACS
convention (``-v`` is the negation of ``v``).  :class:`CNF` keeps a name
table so higher layers (the state-assignment encoder) can build formulas
over meaningful names like ``("label", state_id, "U")`` and read models
back symbolically.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple


class CNF:
    """A growable clause database with a variable name table."""

    def __init__(self) -> None:
        self.clauses: List[Tuple[int, ...]] = []
        self._names: Dict[Hashable, int] = {}
        self._by_index: List[Optional[Hashable]] = [None]  # 1-based variables

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------
    @property
    def num_vars(self) -> int:
        return len(self._by_index) - 1

    def new_var(self, name: Optional[Hashable] = None) -> int:
        """Allocate a fresh variable, optionally registering a name."""
        if name is not None and name in self._names:
            raise ValueError(f"variable name already in use: {name!r}")
        index = len(self._by_index)
        self._by_index.append(name)
        if name is not None:
            self._names[name] = index
        return index

    def var(self, name: Hashable) -> int:
        """The variable for ``name``, allocating it on first use."""
        existing = self._names.get(name)
        if existing is not None:
            return existing
        return self.new_var(name)

    def name_of(self, variable: int) -> Optional[Hashable]:
        """The registered name of a variable, or ``None``."""
        if not 1 <= variable < len(self._by_index):
            raise IndexError(f"no such variable: {variable}")
        return self._by_index[variable]

    # ------------------------------------------------------------------
    # Clauses
    # ------------------------------------------------------------------
    def add(self, *literals: int) -> None:
        """Add one clause given as signed literals."""
        self.add_clause(literals)

    def add_clause(self, literals: Iterable[int]) -> None:
        clause = tuple(literals)
        if not clause:
            raise ValueError("empty clause added; formula is trivially UNSAT")
        for literal in clause:
            if literal == 0 or abs(literal) > self.num_vars:
                raise ValueError(f"literal out of range: {literal}")
        self.clauses.append(clause)

    def add_implies(self, antecedent: int, consequent: int) -> None:
        """``antecedent -> consequent``."""
        self.add(-antecedent, consequent)

    def add_iff(self, left: int, right: int) -> None:
        """``left <-> right``."""
        self.add(-left, right)
        self.add(left, -right)

    def at_least_one(self, literals: Sequence[int]) -> None:
        self.add_clause(literals)

    def at_most_one(self, literals: Sequence[int]) -> None:
        """Pairwise at-most-one (fine for the small groups we encode)."""
        for i in range(len(literals)):
            for j in range(i + 1, len(literals)):
                self.add(-literals[i], -literals[j])

    def exactly_one(self, literals: Sequence[int]) -> None:
        self.at_least_one(literals)
        self.at_most_one(literals)

    def at_most_k(self, literals: Sequence[int], k: int) -> None:
        """Sequential-counter encoding of ``sum(literals) <= k``.

        Introduces O(n*k) auxiliary variables/clauses (Sinz 2005); for
        ``k = 0`` every literal is simply forced false.
        """
        n = len(literals)
        if k < 0:
            raise ValueError("k must be non-negative")
        if k == 0:
            for literal in literals:
                self.add(-literal)
            return
        if n <= k:
            return
        # registers[i][j] is true when at least j+1 of the first i+1
        # literals are true
        registers = [[self.new_var() for _ in range(k)] for _ in range(n)]
        self.add(-literals[0], registers[0][0])
        for j in range(1, k):
            self.add(-registers[0][j])
        for i in range(1, n):
            self.add(-literals[i], registers[i][0])
            self.add(-registers[i - 1][0], registers[i][0])
            for j in range(1, k):
                self.add(-literals[i], -registers[i - 1][j - 1], registers[i][j])
                self.add(-registers[i - 1][j], registers[i][j])
            self.add(-literals[i], -registers[i - 1][k - 1])

    def forbid(self, assignment: Sequence[int]) -> None:
        """Block one (partial) assignment given as true literals."""
        self.add_clause([-lit for lit in assignment])

    # ------------------------------------------------------------------
    # Model decoding
    # ------------------------------------------------------------------
    def decode(self, model: Sequence[bool]) -> Dict[Hashable, bool]:
        """Map a solver model back to named variables."""
        result = {}
        for name, variable in self._names.items():
            result[name] = model[variable]
        return result
