"""A small, self-contained SAT solver.

The paper's Section VII solves the generalized state-assignment problem as
a set of "0-1 Boolean programs ... efficiently solved using Boolean
satisfiability solvers".  This subpackage provides that substrate:

* :class:`~repro.sat.cnf.CNF` -- a clause database with named variables
  and convenience encoders (at-least-one, at-most-one, implications),
* :class:`~repro.sat.solver.Solver` -- a DPLL solver with two-literal
  watching, unit propagation and a conflict-count activity heuristic,
  supporting incremental solving under assumptions and solution blocking
  (for model enumeration).
"""

from repro.sat.cnf import CNF
from repro.sat.solver import Solver, solve

__all__ = ["CNF", "Solver", "solve"]
