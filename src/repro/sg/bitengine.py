"""Per-graph bitmask analysis engine: O(1) cube/state evaluation.

Every analysis primitive the synthesis pipeline runs in its exponential
candidate loops bottoms out in two questions: *does this cube cover this
state* and *which states satisfy this literal set*.  Answering them with
dictionaries costs O(L) hash lookups per state and O(V.L) per candidate
cube; this engine packs each state's code into a single int and
maintains, per ``StateGraph``, bitsets over the state set so that

* ``cube covers state`` is one AND plus one compare on the packed code
  (via the shared compiled IR, :mod:`repro.boolean.compiled`),
* ``states covered by cube`` is L big-int ANDs of per-literal state
  bitsets -- V/word words each -- instead of a V.L Python loop,
* region-level conditions (covers all of ER, covers nothing outside the
  CFR, no 0->1 change edge inside the CFR) are one or two big-int
  operations against cached region bitsets.

The engine is built lazily, once per graph, and cached in
``sg._analysis_cache`` (the graph is immutable after construction).  All
bitsets index states by their position in ``sg.state_list``.  The code
packing itself is owned by the shared compiled IR: the engine interns
one :class:`~repro.boolean.compiled.SignalSpace` per graph ordering and
compiles cubes through it, so boolean/, netlist/ and the pipeline all
agree on what a packed code means.
"""

from __future__ import annotations

from itertools import compress
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro import perf
from repro.boolean.compiled import SignalSpace
from repro.boolean.cube import Cube
from repro.sg.graph import State, StateGraph


class BitEngine:
    """Packed codes and state bitsets for one (immutable) state graph."""

    __slots__ = (
        "sg",
        "space",
        "signals",
        "position",
        "states",
        "index",
        "packed",
        "packed_list",
        "all_states_bits",
        "_ones_bits",
        "_succ_bits",
        "_pred_bits",
        "_adj_bits",
        "_excited_bits",
        "cube_evals",
        "edge_checks",
    )

    def __init__(self, sg: StateGraph):
        self.sg = sg
        #: the interned signal space shared with the compiled-IR layer
        self.space: SignalSpace = SignalSpace.of(sg.signals)
        self.signals: Tuple[str, ...] = self.space.signals
        self.position: Dict[str, int] = self.space.position
        self.states: Tuple[State, ...] = sg.state_list
        self.index: Dict[State, int] = {s: i for i, s in enumerate(self.states)}
        pack_vector = self.space.pack_vector
        packed: Dict[State, int] = {
            state: pack_vector(sg.code(state)) for state in self.states
        }
        self.packed: Dict[State, int] = packed
        self.packed_list: List[int] = [packed[s] for s in self.states]
        self.all_states_bits: int = (1 << len(self.states)) - 1
        #: per signal position, bitset of states where the signal is 1
        self._ones_bits: List[Optional[int]] = [None] * len(self.signals)
        self._succ_bits: Optional[List[int]] = None
        self._pred_bits: Optional[List[int]] = None
        self._adj_bits: Optional[List[int]] = None
        #: signal -> bitset of states where the signal is excited
        self._excited_bits: Dict[str, int] = {}
        #: running counts of primitive operations (always on; reading an
        #: int attribute is cheaper than any conditional instrumentation)
        self.cube_evals: int = 0
        self.edge_checks: int = 0

    # ------------------------------------------------------------------
    # State-set <-> bitset conversions
    # ------------------------------------------------------------------
    def bits_of(self, states: Iterable[State]) -> int:
        """Bitset of a collection of states."""
        index = self.index
        bits = 0
        for state in states:
            bits |= 1 << index[state]
        return bits

    def states_of(self, bits: int) -> FrozenSet[State]:
        """The states named by a bitset.

        Dense bitsets decode through ``bin`` + ``compress`` (C-level per
        state); sparse ones walk their set bits directly.
        """
        digits = bin(bits)  # popcount via str.count: C-level, 3.9-safe
        if digits.count("1") * 3 >= len(digits) - 2:
            reversed_digits = digits[:1:-1].encode()
            return frozenset(
                compress(self.states, map((48).__lt__, reversed_digits))
            )
        states = self.states
        result = []
        while bits:
            low = bits & -bits
            result.append(states[low.bit_length() - 1])
            bits ^= low
        return frozenset(result)

    # ------------------------------------------------------------------
    # Literal and cube bitsets
    # ------------------------------------------------------------------
    def literal_bits(self, position: int, value: int) -> int:
        """Bitset of states whose code has ``value`` at signal ``position``.

        The 1-set is computed once per position; the 0-set is one XOR
        against the full state set.
        """
        ones = self._ones_bits[position]
        if ones is None:
            probe = 1 << position
            ones = 0
            bit = 1
            for word in self.packed_list:
                if word & probe:
                    ones |= bit
                bit <<= 1
            self._ones_bits[position] = ones
        return ones if value else self.all_states_bits ^ ones

    def signal_bits(self, signal: str, value: int) -> int:
        return self.literal_bits(self.sg.signal_position(signal), value)

    def cube_bits(self, cube: Cube) -> int:
        """Bitset of all states covered by ``cube``."""
        self.cube_evals += 1
        # hottest counter in the pipeline: the recorder check must stay a
        # plain attribute compare, not a function call
        if perf._recorder is not None:
            perf._recorder.increment("cube.evaluations")
        compiled = cube.compiled(self.space)
        bits = self.all_states_bits
        mask, value = compiled.mask, compiled.value
        while mask:
            low = mask & -mask
            mask ^= low
            bits &= self.literal_bits(low.bit_length() - 1, value & low)
            if not bits:
                break
        return bits

    def covers_state(self, cube: Cube, state: State) -> bool:
        """O(1) covering test: packed code AND mask vs value."""
        self.cube_evals += 1
        if perf._recorder is not None:
            perf._recorder.increment("cube.evaluations")
        return cube.compiled(self.space).covers_packed(self.packed[state])

    # ------------------------------------------------------------------
    # Arc structure
    # ------------------------------------------------------------------
    def _build_arc_tables(self) -> None:
        """Fill the successor/predecessor/adjacency tables in one arc pass."""
        sg, index = self.sg, self.index
        n = len(self.states)
        succ = [0] * n
        pred = [0] * n
        for i, state in enumerate(self.states):
            bit = 1 << i
            out = 0
            for _, target in sg.arcs_from(state):
                j = index[target]
                out |= 1 << j
                pred[j] |= bit
            succ[i] = out
        self._succ_bits = succ
        self._pred_bits = pred
        self._adj_bits = [s | p for s, p in zip(succ, pred)]

    @property
    def succ_bits(self) -> List[int]:
        """Per state index, the bitset of its direct successors."""
        if self._succ_bits is None:
            self._build_arc_tables()
        return self._succ_bits

    @property
    def pred_bits(self) -> List[int]:
        """Per state index, the bitset of its direct predecessors."""
        if self._pred_bits is None:
            self._build_arc_tables()
        return self._pred_bits

    @property
    def adj_bits(self) -> List[int]:
        """Per state index, successors OR predecessors (weak adjacency)."""
        if self._adj_bits is None:
            self._build_arc_tables()
        return self._adj_bits

    def excited_bits(self, signal: str) -> int:
        """Bitset of states where ``signal`` has an enabled transition.

        Built for every signal in one sweep over the states on first use:
        the per-state excited sets are small, so one pass beats one pass
        per signal.
        """
        table = self._excited_bits
        if not table:
            sg = self.sg
            for name in self.signals:
                table[name] = 0
            bit = 1
            for state in self.states:
                for name in sg.excited_signals(state):
                    table[name] |= bit
                bit <<= 1
        return table[signal]

    def weak_components(self, subset: int) -> List[int]:
        """Weakly connected components of the subgraph induced on a bitset.

        Each component comes back as a bitset; total work is one big-int
        OR per member state instead of per-arc Python set operations.
        """
        adjacency = self.adj_bits
        remaining = subset
        components: List[int] = []
        while remaining:
            seed = remaining & -remaining
            component = seed
            remaining ^= seed
            frontier = seed
            while frontier:
                reached = 0
                while frontier:
                    low = frontier & -frontier
                    reached |= adjacency[low.bit_length() - 1]
                    frontier ^= low
                grown = reached & remaining
                component |= grown
                remaining &= ~grown
                frontier = grown
            components.append(component)
        return components

    def first_rise_edge(
        self, region_bits: int, ones: int
    ) -> Optional[Tuple[State, State]]:
        """First arc inside ``region_bits`` from a 0-state to a 1-state.

        ``ones`` is the bitset where the candidate function is 1; a
        0 -> 1 edge inside the region is exactly a Definition-17(2)
        monotonicity violation (see ``covers._monotonicity_violation``).
        Returns a ``(source, target)`` witness or ``None``.
        """
        self.edge_checks += 1
        succ = self.succ_bits
        states = self.states
        zeros = region_bits & ~ones
        ones_inside = region_bits & ones
        while zeros:
            low = zeros & -zeros
            i = low.bit_length() - 1
            rising = succ[i] & ones_inside
            if rising:
                return (states[i], states[rising.bit_length() - 1])
            zeros ^= low
        return None

    def has_rise_edge(self, region_bits: int, ones: int) -> bool:
        """Existence-only form of :meth:`first_rise_edge`."""
        self.edge_checks += 1
        succ = self.succ_bits
        zeros = region_bits & ~ones
        ones_inside = region_bits & ones
        while zeros:
            low = zeros & -zeros
            if succ[low.bit_length() - 1] & ones_inside:
                return True
            zeros ^= low
        return False

    # ------------------------------------------------------------------
    # Cached region bitsets
    # ------------------------------------------------------------------
    def region_bits(self, key, states: FrozenSet[State]) -> int:
        """Bitset of a (hashable) region, memoised in the graph cache."""
        cache = self.sg._analysis_cache
        cached = cache.get(("bits", key))
        if cached is None:
            cached = self.bits_of(states)
            cache[("bits", key)] = cached
        return cached


def bit_analysis(sg: StateGraph) -> BitEngine:
    """The graph's bitmask engine, built on first use and cached."""
    engine = sg._analysis_cache.get("bitengine")
    if engine is None:
        engine = BitEngine(sg)
        sg._analysis_cache["bitengine"] = engine
    return engine
