"""Plain-text interchange format for state graphs.

The format is line-oriented and self-describing::

    .model fig1
    .inputs a b
    .outputs c d
    .state s0 0000
    .state s1 1000
    .arc s0 a+ s1
    .initial s0
    .end

Comments start with ``#``.  States must be declared before use in arcs.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.sg.events import SignalEvent
from repro.sg.graph import StateGraph


def dumps(sg: StateGraph) -> str:
    """Serialise a state graph to the text format."""
    lines = [f".model {sg.name}"]
    lines.append(".inputs " + " ".join(sorted(sg.inputs)))
    lines.append(".outputs " + " ".join(sorted(sg.non_inputs)))
    lines.append(".order " + " ".join(sg.signals))
    for state in sorted(sg.states, key=str):
        code = "".join(map(str, sg.code(state)))
        lines.append(f".state {state} {code}")
    for source, event, target in sorted(sg.arcs(), key=lambda a: (str(a[0]), str(a[1]), str(a[2]))):
        lines.append(f".arc {source} {event} {target}")
    lines.append(f".initial {sg.initial}")
    lines.append(".end")
    return "\n".join(lines) + "\n"


def loads(text: str) -> StateGraph:
    """Parse the text format back into a :class:`StateGraph`."""
    name = "sg"
    inputs: List[str] = []
    outputs: List[str] = []
    order: List[str] = []
    codes: Dict[str, Tuple[int, ...]] = {}
    arcs: List[Tuple[str, SignalEvent, str]] = []
    initial = None
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        keyword = parts[0]
        if keyword == ".model":
            name = parts[1]
        elif keyword == ".inputs":
            inputs = parts[1:]
        elif keyword == ".outputs":
            outputs = parts[1:]
        elif keyword == ".order":
            order = parts[1:]
        elif keyword == ".state":
            state, bits = parts[1], parts[2]
            codes[state] = tuple(int(b) for b in bits)
        elif keyword == ".arc":
            source, event_text, target = parts[1], parts[2], parts[3]
            arcs.append((source, SignalEvent.parse(event_text), target))
        elif keyword == ".initial":
            initial = parts[1]
        elif keyword == ".end":
            break
        else:
            raise ValueError(f"unknown directive {keyword!r}")
    if initial is None:
        raise ValueError("missing .initial directive")
    signals = order or (sorted(inputs) + sorted(outputs))
    return StateGraph(signals, inputs, codes, arcs, initial, name=name)


def save(sg: StateGraph, path: str) -> None:
    with open(path, "w") as handle:
        handle.write(dumps(sg))


def load(path: str) -> StateGraph:
    with open(path) as handle:
        return loads(handle.read())
