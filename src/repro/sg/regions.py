"""Regions of a state graph (Definitions 5-11 of the paper).

* **Excitation region** ER(*a_i): maximal connected set of states where
  signal ``a`` has the same value and is excited (Def. 5).
* **Quiescent region** QR(*a_i): the maximal connected set of stable
  states of the new value entered after *a_i fires (Def. 6).
* **Constant function region** CFR(*a_i) = ER(*a_i) u QR(*a_i) (Def. 7).
* **Minimal states** and the **unique entry condition** (Defs. 8-9).
* **Trigger signals** (Def. 10, Lemma 2).
* **Ordered / concurrent signals** with respect to a transition (Def. 11).
* The paper's value sets 0-set(a), 0*-set(a), 1-set(a), 1*-set(a) used by
  Definitions 13 and 16.

Connectivity is *weak* connectivity in the subgraph induced on the region
states, matching the paper's "maximal connected set of states".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set

from repro import perf
from repro.sg.bitengine import bit_analysis
from repro.sg.events import SignalEvent
from repro.sg.graph import State, StateGraph


@dataclass(frozen=True)
class ExcitationRegion:
    """One excitation region ER(*a_i).

    ``index`` numbers the regions of the same (signal, direction) pair in
    BFS-discovery order from the initial state, giving the paper's
    occurrence index ``i`` a deterministic meaning.
    """

    signal: str
    direction: int  # +1 for ER(+a_i), -1 for ER(-a_i)
    index: int
    states: FrozenSet[State]

    @property
    def event(self) -> SignalEvent:
        return SignalEvent(self.signal, self.direction)

    @property
    def transition_name(self) -> str:
        return f"{self.signal}{'+' if self.direction == 1 else '-'}/{self.index}"

    def __repr__(self) -> str:
        return f"ER({self.transition_name}, {len(self.states)} states)"


def _weak_components(sg: StateGraph, states: Set[State]) -> List[Set[State]]:
    """Weakly connected components of the subgraph induced on ``states``.

    Delegates to the bitmask engine: the flood fill runs on adjacency
    bitsets (one big-int OR per member state) instead of per-arc Python
    set operations.
    """
    engine = bit_analysis(sg)
    return [
        set(engine.states_of(component))
        for component in engine.weak_components(engine.bits_of(states))
    ]


def _bfs_order(sg: StateGraph) -> Dict[State, int]:
    """Deterministic BFS discovery order from the initial state (cached)."""
    cached = sg._analysis_cache.get("bfs_order")
    if cached is not None:
        return cached
    # the word-lane engine computes the identical order with one global
    # arc sort; plain BitEngine graphs take the per-state path below
    lowered = getattr(sg._analysis_cache.get("bitengine"), "bfs_order", None)
    if lowered is not None:
        order = lowered()
        sg._analysis_cache["bfs_order"] = order
        return order
    order = {sg.initial: 0}
    queue = [sg.initial]
    head = 0
    event_str: Dict[SignalEvent, str] = {}
    state_str: Dict[State, str] = {}

    def _key(pair):
        event, target = pair
        es = event_str.get(event)
        if es is None:
            es = event_str[event] = str(event)
        ts = state_str.get(target)
        if ts is None:
            ts = state_str[target] = str(target)
        return (es, ts)

    while head < len(queue):
        current = queue[head]
        head += 1
        for event, target in sorted(sg.arcs_from(current), key=_key):
            if target not in order:
                order[target] = len(order)
                queue.append(target)
    sg._analysis_cache["bfs_order"] = order
    return order


def excitation_regions(sg: StateGraph, signal: str) -> List[ExcitationRegion]:
    """All excitation regions of ``signal``, both directions, indexed.

    Regions for each direction are numbered 1, 2, ... by the earliest BFS
    discovery time of any of their states.  Cached per graph.
    """
    cached = sg._analysis_cache.get(("regions", signal))
    if cached is not None:
        return cached
    with perf.phase("regions"):
        engine = bit_analysis(sg)
        lowered = getattr(engine, "excitation_regions_lowered", None)
        if lowered is not None:  # word-lane engine: lazy discovery order
            regions = lowered(sg, signal)
            sg._analysis_cache[("regions", signal)] = regions
            return regions
        position = sg.signal_position(signal)
        discovery = _bfs_order(sg)
        excited_all = engine.excited_bits(signal)
        regions: List[ExcitationRegion] = []
        for direction in (+1, -1):
            before = 0 if direction == 1 else 1
            excited = excited_all & engine.literal_bits(position, before)
            components = [
                frozenset(engine.states_of(bits))
                for bits in engine.weak_components(excited)
            ]
            components.sort(
                key=lambda c: min(discovery.get(s, len(discovery)) for s in c)
            )
            for i, component in enumerate(components, start=1):
                regions.append(ExcitationRegion(signal, direction, i, component))
        sg._analysis_cache[("regions", signal)] = regions
        return regions


def all_excitation_regions(
    sg: StateGraph, only_non_inputs: bool = False
) -> List[ExcitationRegion]:
    """Excitation regions of every signal (optionally non-input only)."""
    names = sorted(sg.non_inputs) if only_non_inputs else list(sg.signals)
    result: List[ExcitationRegion] = []
    for signal in names:
        result.extend(excitation_regions(sg, signal))
    return result


def _stable_bits(sg: StateGraph, signal: str, value: int) -> int:
    """Bitset of states where ``signal`` holds ``value`` and is stable."""
    engine = bit_analysis(sg)
    at_value = engine.literal_bits(sg.signal_position(signal), value)
    return at_value & ~engine.excited_bits(signal) & engine.all_states_bits


def _stable_states(sg: StateGraph, signal: str, value: int) -> Set[State]:
    engine = bit_analysis(sg)
    return set(engine.states_of(_stable_bits(sg, signal, value)))


def quiescent_region(sg: StateGraph, er: ExcitationRegion) -> FrozenSet[State]:
    """QR(*a_i): the stable region(s) entered by firing *a_i from its ER.

    Computed as the union of the maximal connected components of
    {states with a = value_after, a stable} that contain a state directly
    entered from the excitation region by the region's own transition.
    Cached per graph.
    """
    cached = sg._analysis_cache.get(("qr", er))
    if cached is not None:
        return cached
    engine = bit_analysis(sg)
    lowered = getattr(engine, "qr_bits_lowered", None)
    if lowered is not None:  # word-lane engine: bitset-only pipeline
        frozen = engine.states_of(lowered(er))
        sg._analysis_cache[("qr", er)] = frozen
        return frozen
    members = engine.region_bits(("er", er), er.states)
    succ = engine.succ_bits
    reach = 0
    while members:
        low = members & -members
        reach |= succ[low.bit_length() - 1]
        members ^= low
    # every ER state has a = value_before, so a successor with
    # a = value_after was necessarily reached by firing *a_i itself
    stable = _stable_bits(sg, er.signal, er.event.value_after)
    exits = reach & stable  # a may be instantly re-excited; then QR empty
    if not exits:
        sg._analysis_cache[("qr", er)] = frozenset()
        return frozenset()
    # the stable set is shared by every region of the same (signal,
    # direction) pair, so its flood fill is worth its own cache slot
    comp_key = ("stable_comps", er.signal, er.event.value_after)
    components = sg._analysis_cache.get(comp_key)
    if components is None:
        components = engine.weak_components(stable)
        sg._analysis_cache[comp_key] = components
    result = 0
    for component in components:
        if component & exits:
            result |= component
    frozen = engine.states_of(result)
    sg._analysis_cache[("qr", er)] = frozen
    return frozen


def constant_function_region(sg: StateGraph, er: ExcitationRegion) -> FrozenSet[State]:
    """CFR(*a_i) = ER(*a_i) u QR(*a_i) (Definition 7).  Cached per graph."""
    cached = sg._analysis_cache.get(("cfr", er))
    if cached is None:
        lowered = getattr(
            sg._analysis_cache.get("bitengine"), "cfr_states", None
        )
        if lowered is not None:  # word-lane engine: one bitset union
            cached = lowered(er)
        else:
            cached = er.states | quiescent_region(sg, er)
        sg._analysis_cache[("cfr", er)] = cached
    return cached


def minimal_states(sg: StateGraph, er: ExcitationRegion) -> FrozenSet[State]:
    """States of the region with no predecessor inside it (Definition 8)."""
    engine = bit_analysis(sg)
    er_bits = engine.region_bits(("er", er), er.states)
    lowered = getattr(engine, "minimal_bits", None)
    if lowered is not None:  # word-lane engine: one gathered row test
        return engine.states_of(lowered(er_bits))
    pred = engine.pred_bits
    minima = 0
    members = er_bits
    while members:
        low = members & -members
        if pred[low.bit_length() - 1] & er_bits == 0:
            minima |= low
        members ^= low
    return engine.states_of(minima)


def has_unique_entry(sg: StateGraph, er: ExcitationRegion) -> bool:
    """The unique entry condition (Definition 9)."""
    lowered = getattr(
        sg._analysis_cache.get("bitengine"), "unique_entry_lowered", None
    )
    if lowered is not None:  # word-lane engine: popcount on bitsets
        return lowered(er)
    return len(minimal_states(sg, er)) == 1


def entry_state(sg: StateGraph, er: ExcitationRegion) -> State:
    """The unique minimal state u_min(*a_i); raises if not unique."""
    minima = minimal_states(sg, er)
    if len(minima) != 1:
        raise ValueError(
            f"{er} violates the unique entry condition "
            f"({len(minima)} minimal states)"
        )
    return next(iter(minima))


def trigger_events(
    sg: StateGraph, er: ExcitationRegion
) -> Set[SignalEvent]:
    """Events whose firing enters the region from outside (Definition 10)."""
    triggers: Set[SignalEvent] = set()
    for target in er.states:
        for event, source in sg.arcs_into(target):
            if source not in er.states:
                triggers.add(event)
    return triggers


def trigger_signals(sg: StateGraph, er: ExcitationRegion) -> Set[str]:
    return {event.signal for event in trigger_events(sg, er)}


def ordered_signals(sg: StateGraph, er: ExcitationRegion) -> FrozenSet[str]:
    """Signals with no excited transition inside the region (Definition 11).

    The region's own signal is always concurrent with itself (it is excited
    throughout the region), so it never appears in the result.  Cached per
    (graph, region): the cover-cube search queries it per candidate.
    """
    cached = sg._analysis_cache.get(("ordered", er))
    if cached is not None:
        return cached
    engine = bit_analysis(sg)
    er_bits = engine.region_bits(("er", er), er.states)
    lowered = getattr(engine, "ordered_signals_lowered", None)
    if lowered is not None:  # word-lane engine: direct table reads
        result = lowered(er_bits)
    else:
        result = frozenset(
            signal
            for signal in sg.signals
            if not engine.excited_bits(signal) & er_bits
        )
    sg._analysis_cache[("ordered", er)] = result
    return result


def concurrent_signals(sg: StateGraph, er: ExcitationRegion) -> Set[str]:
    """Complement of :func:`ordered_signals` (minus nothing; the region's
    own signal is concurrent by Definition 11's reading in the paper)."""
    return set(sg.signals) - ordered_signals(sg, er)


def excited_value_sets(sg: StateGraph, signal: str) -> Dict[str, FrozenSet[State]]:
    """The paper's 0-set / 0*-set / 1-set / 1*-set for ``signal``.

    * ``0-set``  : states where the signal is 0 and stable,
    * ``0*-set`` : states where the signal is 0 and excited (union of
      up-excitation regions),
    * ``1-set``  : states where the signal is 1 and stable,
    * ``1*-set`` : states where the signal is 1 and excited.

    The stable sets are defined directly (every stable state belongs to a
    quiescent region of the preceding transition whenever the signal is
    live; taking all stable states also covers constant signals safely).
    Cached per (graph, signal): the correctness checks of the candidate
    cube search query the same four sets once per candidate.
    """
    cached = sg._analysis_cache.get(("evs", signal))
    if cached is not None:
        return cached
    lowered = getattr(sg._analysis_cache.get("bitengine"), "value_sets", None)
    if lowered is not None:  # word-lane engine: three cached bitsets
        result = lowered(signal)
        sg._analysis_cache[("evs", signal)] = result
        return result
    position = sg.signal_position(signal)
    zero_stable, zero_excited, one_stable, one_excited = set(), set(), set(), set()
    for state in sg.states:
        value = sg.code(state)[position]
        excited = sg.is_excited(state, signal)
        if value == 0:
            (zero_excited if excited else zero_stable).add(state)
        else:
            (one_excited if excited else one_stable).add(state)
    result = {
        "0-set": frozenset(zero_stable),
        "0*-set": frozenset(zero_excited),
        "1-set": frozenset(one_stable),
        "1*-set": frozenset(one_excited),
    }
    sg._analysis_cache[("evs", signal)] = result
    return result
