"""Behavioural properties of state graphs (Definitions 1-4 and 12).

Conflict states localise potential hazards: a signal excited in a state
loses its excitation after another signal fires.  Input conflicts model
environment non-determinism and are benign; *internal* conflicts (on
non-input signals) are exactly the situations that become hazards at the
gate level under the pure unbounded-delay model (Sec. III, citing [1]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from repro.sg.events import SignalEvent
from repro.sg.graph import State, StateGraph
from repro.sg.regions import (
    ExcitationRegion,
    all_excitation_regions,
    concurrent_signals,
    excitation_regions,
    trigger_signals,
)


@dataclass(frozen=True)
class Conflict:
    """A conflict of ``signal`` in ``state`` caused by firing ``by``.

    ``signal`` is excited in ``state``; after ``by`` fires (reaching
    ``after``), ``signal`` is stable although it did not fire.
    """

    state: State
    signal: str
    by: SignalEvent
    after: State

    def __str__(self) -> str:
        return (
            f"signal {self.signal!r} excited in {self.state!r} is disabled by "
            f"{self.by} (reaching {self.after!r})"
        )


def conflict_states(
    sg: StateGraph, signals: Optional[Set[str]] = None
) -> List[Conflict]:
    """All conflicts with respect to the given signals (Definition 1).

    ``signals`` defaults to every signal; pass ``sg.non_inputs`` to get
    only *internally* conflict states.
    """
    watched = set(sg.signals) if signals is None else set(signals)
    conflicts: List[Conflict] = []
    for state in sg.states:
        excited = sg.excited_signals(state) & watched
        if not excited:
            continue
        for event, target in sg.arcs_from(state):
            for signal in excited:
                if signal == event.signal:
                    continue
                if not sg.is_excited(target, signal):
                    conflicts.append(Conflict(state, signal, event, target))
    return conflicts


def is_semi_modular(sg: StateGraph) -> bool:
    """No conflict state is reachable (Definition 2; all states assumed
    reachable -- enforce with :meth:`StateGraph.check`)."""
    return not conflict_states(sg)


def is_output_semi_modular(sg: StateGraph) -> bool:
    """No *internally* conflict state (w.r.t. non-input signals)."""
    return not conflict_states(sg, sg.non_inputs)


@dataclass(frozen=True)
class Detonant:
    """State ``state`` is detonant w.r.t. ``signal`` (Definition 3):
    ``signal`` is stable in ``state`` and excited in the two distinct
    direct successors ``first`` and ``second``."""

    state: State
    signal: str
    first: State
    second: State


def detonant_states(
    sg: StateGraph, signals: Optional[Set[str]] = None
) -> List[Detonant]:
    """All detonant states w.r.t. the given signals (default: non-inputs,
    matching the paper's "detonant with respect to internal signal a").

    A state ``w`` is detonant for ``a`` when ``a`` is stable in ``w`` and
    excited in two distinct direct successors whose excitations belong to
    the *same* excitation region of ``a`` -- i.e. the same transition of
    ``a`` acquires a disjunctive (OR) cause.  The same-region refinement
    is what makes Lemma 1 work (a detonant state is exactly what produces
    an ER with several minimal states): two successors exciting *different*
    transitions of ``a`` -- such as Figure 1's initial state, whose
    successors enter ER(+c_1) and ER(+c_2) respectively -- are an input
    choice, not OR causality, and the paper indeed calls Figure 1 output
    distributive.
    """
    watched = sg.non_inputs if signals is None else set(signals)
    result: List[Detonant] = []
    region_of: dict = {}
    for signal in watched:
        for er in excitation_regions(sg, signal):
            for state in er.states:
                region_of[(signal, state)] = er
    for state in sg.states:
        successors = sorted(set(sg.successors(state)) - {state}, key=str)
        if len(successors) < 2:
            continue
        for signal in watched:
            if sg.is_excited(state, signal):
                continue
            hot = [t for t in successors if sg.is_excited(t, signal)]
            for i in range(len(hot)):
                for j in range(i + 1, len(hot)):
                    same_region = (
                        region_of[(signal, hot[i])] is region_of[(signal, hot[j])]
                    )
                    if same_region:
                        result.append(Detonant(state, signal, hot[i], hot[j]))
    return result


def is_distributive(sg: StateGraph) -> bool:
    """Semi-modular and free of detonant states (Definition 4)."""
    return is_semi_modular(sg) and not detonant_states(sg, set(sg.signals))


def is_output_distributive(sg: StateGraph) -> bool:
    """Output semi-modular and free of detonant states on non-inputs."""
    return is_output_semi_modular(sg) and not detonant_states(sg)


@dataclass(frozen=True)
class NonPersistency:
    """Trigger signal ``trigger`` of region ``er`` is non-persistent:
    it is concurrent with the region's transition (Definition 12)."""

    er: ExcitationRegion
    trigger: str

    def __str__(self) -> str:
        return (
            f"trigger {self.trigger!r} of ER({self.er.transition_name}) is "
            f"non-persistent (it has an excited transition inside the region)"
        )


def non_persistent_pairs(sg: StateGraph) -> List[NonPersistency]:
    """All (region, trigger) pairs violating persistency, for non-input
    signal regions (only non-inputs have to be synthesised)."""
    violations: List[NonPersistency] = []
    for er in all_excitation_regions(sg, only_non_inputs=True):
        concurrent = concurrent_signals(sg, er)
        for trigger in sorted(trigger_signals(sg, er)):
            if trigger in concurrent and trigger != er.signal:
                violations.append(NonPersistency(er, trigger))
    return violations


def is_persistent(sg: StateGraph) -> bool:
    """The state graph is persistent (Definition 12)."""
    return not non_persistent_pairs(sg)
