"""State coding requirements (Definition 14).

* **USC** (Unique State Coding): every reachable state has a distinct
  binary code.
* **CSC** (Complete State Coding): states may share a code only if their
  sets of excited *non-input* transitions are identical.

CSC is Chu's necessary condition for a complex-gate implementation; the
paper's Theorem 4 shows the Monotonous Cover requirement subsumes it.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from repro.sg.events import SignalEvent
from repro.sg.graph import State, StateGraph


def _by_code(sg: StateGraph) -> Dict[Tuple[int, ...], List[State]]:
    groups: Dict[Tuple[int, ...], List[State]] = {}
    for state in sg.states:
        groups.setdefault(sg.code(state), []).append(state)
    return groups


def usc_conflicts(sg: StateGraph) -> List[Tuple[State, State]]:
    """All pairs of distinct states sharing a binary code."""
    pairs: List[Tuple[State, State]] = []
    for states in _by_code(sg).values():
        ordered = sorted(states, key=str)
        for i in range(len(ordered)):
            for j in range(i + 1, len(ordered)):
                pairs.append((ordered[i], ordered[j]))
    return pairs


def has_usc(sg: StateGraph) -> bool:
    return not usc_conflicts(sg)


def _excited_output_events(sg: StateGraph, state: State) -> FrozenSet[SignalEvent]:
    return frozenset(
        event for event in sg.enabled_events(state) if event.signal in sg.non_inputs
    )


def csc_conflicts(sg: StateGraph) -> List[Tuple[State, State]]:
    """Pairs of same-code states whose excited non-input transition sets
    differ -- the CSC violations (Definition 14)."""
    pairs: List[Tuple[State, State]] = []
    for first, second in usc_conflicts(sg):
        if _excited_output_events(sg, first) != _excited_output_events(sg, second):
            pairs.append((first, second))
    return pairs


def has_csc(sg: StateGraph) -> bool:
    return not csc_conflicts(sg)
