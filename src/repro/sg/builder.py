"""Construction helpers for state graphs.

Two entry points:

* :func:`sg_from_asterisk_states` -- enter an SG exactly the way the paper
  draws one: each state is written in asterisk notation (``1*010*`` means
  code 1010 with the first and last signals excited).  Arcs are inferred:
  firing an excited signal flips its bit, and the successor is the unique
  state carrying the flipped code.  This is how Figures 1, 3 and 4 are
  entered verbatim in the test-suite and benchmarks.

* :func:`sg_from_arcs` -- enter an SG as named states plus event-labelled
  arcs; codes are computed by propagating the initial code along events
  (and cross-checked for consistency on reconvergence).  This is the
  convenient form for hand-written benchmark behaviours.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.sg.events import SignalEvent
from repro.sg.graph import InconsistentStateGraph, StateGraph


def parse_asterisk_state(text: str) -> Tuple[Tuple[int, ...], Set[int]]:
    """Parse ``1*010*`` into (code, excited-positions)."""
    code: List[int] = []
    excited: Set[int] = set()
    for ch in text.strip():
        if ch in "01":
            code.append(int(ch))
        elif ch == "*":
            if not code:
                raise ValueError(f"stray '*' in state {text!r}")
            excited.add(len(code) - 1)
        else:
            raise ValueError(f"bad character {ch!r} in state {text!r}")
    return tuple(code), excited


def sg_from_asterisk_states(
    signals: Sequence[str],
    inputs: Iterable[str],
    states: Iterable[str],
    initial: str,
    name: str = "sg",
) -> StateGraph:
    """Build an SG from asterisk-notation states with unique codes.

    Each listed state must have a distinct code.  For every excited
    position, the flipped code must belong to a listed state, which
    becomes the arc target.  The initial state is given in the same
    notation (or as a bare code string).
    """
    signals = tuple(signals)
    parsed: Dict[Tuple[int, ...], Set[int]] = {}
    for text in states:
        code, excited = parse_asterisk_state(text)
        if len(code) != len(signals):
            raise ValueError(
                f"state {text!r} has {len(code)} bits, expected {len(signals)}"
            )
        if code in parsed:
            raise ValueError(
                f"duplicate code {code} -- asterisk entry requires unique codes"
            )
        parsed[code] = excited

    def state_id(code: Tuple[int, ...]) -> str:
        return "".join(map(str, code))

    arcs = []
    for code, excited in parsed.items():
        for position in excited:
            flipped = list(code)
            flipped[position] ^= 1
            flipped_code = tuple(flipped)
            if flipped_code not in parsed:
                raise ValueError(
                    f"state {state_id(code)} excites {signals[position]!r} but no "
                    f"state has code {state_id(flipped_code)}"
                )
            event = SignalEvent(signals[position], +1 if code[position] == 0 else -1)
            arcs.append((state_id(code), event, state_id(flipped_code)))

    initial_code, _ = parse_asterisk_state(initial)
    if initial_code not in parsed:
        raise ValueError(f"initial state {initial!r} is not in the state list")

    sg = StateGraph(
        signals,
        inputs,
        {state_id(code): code for code in parsed},
        arcs,
        state_id(initial_code),
        name=name,
    )
    sg.check()
    return sg


def sg_from_cycle(
    signals: Sequence[str],
    inputs: Iterable[str],
    events: Sequence[str],
    initial_code: Sequence[int] = None,
    name: str = "cycle",
) -> StateGraph:
    """Build an SG from a cyclic event sequence.

    ``events`` lists signal edges (``"r+"``, ``"q-"``, ...) fired in
    order, returning to the initial state; states are named ``s0``,
    ``s1``, ... in firing order.  This is the shape of most handshake
    controller specifications (the whole Table-1 suite is cyclic) and of
    the paper's sequential examples.
    """
    if not events:
        raise ValueError("a cycle needs at least one event")
    if initial_code is None:
        initial_code = (0,) * len(signals)
    arcs = [
        (f"s{i}", event, f"s{(i + 1) % len(events)}")
        for i, event in enumerate(events)
    ]
    return sg_from_arcs(
        signals, inputs, initial_code, arcs, initial="s0", name=name
    )


def sg_from_arcs(
    signals: Sequence[str],
    inputs: Iterable[str],
    initial_code: Sequence[int],
    arcs: Iterable[Tuple[str, str, str]],
    initial: str = "s0",
    name: str = "sg",
) -> StateGraph:
    """Build an SG from named states and ``(src, "a+", dst)`` arcs.

    Codes are inferred by forward propagation from ``initial_code``;
    if a state is reached along two paths the codes must agree, otherwise
    the arc list is inconsistent (:class:`InconsistentStateGraph`).
    """
    signals = tuple(signals)
    index = {s: i for i, s in enumerate(signals)}
    outgoing: Dict[str, List[Tuple[SignalEvent, str]]] = {}
    state_names: Set[str] = {initial}
    for source, event_text, target in arcs:
        event = SignalEvent.parse(event_text)
        if event.signal not in index:
            raise InconsistentStateGraph(f"unknown signal in event {event_text!r}")
        outgoing.setdefault(source, []).append((event, target))
        state_names.add(source)
        state_names.add(target)

    codes: Dict[str, Tuple[int, ...]] = {initial: tuple(int(v) for v in initial_code)}
    frontier = [initial]
    while frontier:
        current = frontier.pop()
        code = codes[current]
        for event, target in outgoing.get(current, ()):
            i = index[event.signal]
            if code[i] != event.value_before:
                raise InconsistentStateGraph(
                    f"event {event} not enabled by code of state {current!r} ({code})"
                )
            new_code = code[:i] + (event.value_after,) + code[i + 1 :]
            known = codes.get(target)
            if known is None:
                codes[target] = new_code
                frontier.append(target)
            elif known != new_code:
                raise InconsistentStateGraph(
                    f"state {target!r} reached with codes {known} and {new_code}"
                )

    dangling = state_names - set(codes)
    if dangling:
        raise InconsistentStateGraph(
            f"states unreachable from {initial!r}: {sorted(dangling)}"
        )

    flat_arcs = [
        (source, event, target)
        for source, out in outgoing.items()
        for event, target in out
    ]
    sg = StateGraph(signals, inputs, codes, flat_arcs, initial, name=name)
    sg.check()
    return sg
