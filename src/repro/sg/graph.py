"""The state graph automaton (Section II-A of the paper).

States are opaque hashable identifiers carrying a binary code over the
signal set.  Two distinct states *may* share a code -- that is exactly a
USC/CSC situation the synthesis procedure must detect and repair -- so
codes never serve as identity.

The class is immutable after construction; transformation passes (state
signal insertion, projection) build new instances.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.sg.events import SignalEvent

State = Hashable
Arc = Tuple[State, SignalEvent, State]


class InconsistentStateGraph(ValueError):
    """Raised when arcs and codes violate the consistency rules."""


class StateGraph:
    """A finite automaton with binary-coded states.

    Parameters
    ----------
    signals:
        Ordered signal names; the order fixes code-vector positions.
    inputs:
        The subset of ``signals`` controlled by the environment.
    codes:
        Mapping from state id to its code, a tuple of 0/1 of the same
        length as ``signals``.
    arcs:
        Iterable of ``(source, event, target)`` triples.
    initial:
        The initial state id.
    name:
        Optional model name for reports and files.
    """

    def __init__(
        self,
        signals: Sequence[str],
        inputs: Iterable[str],
        codes: Mapping[State, Sequence[int]],
        arcs: Iterable[Arc],
        initial: State,
        name: str = "sg",
    ):
        self.name = name
        self.signals: Tuple[str, ...] = tuple(signals)
        if len(set(self.signals)) != len(self.signals):
            raise InconsistentStateGraph("duplicate signal names")
        self.inputs: FrozenSet[str] = frozenset(inputs)
        unknown = self.inputs - set(self.signals)
        if unknown:
            raise InconsistentStateGraph(f"inputs not in signal list: {sorted(unknown)}")
        self._index: Dict[str, int] = {s: i for i, s in enumerate(self.signals)}
        self._codes: Dict[State, Tuple[int, ...]] = {}
        for state, code in codes.items():
            vector = tuple(int(v) for v in code)
            if len(vector) != len(self.signals) or any(v not in (0, 1) for v in vector):
                raise InconsistentStateGraph(f"bad code for state {state!r}: {code!r}")
            self._codes[state] = vector
        if initial not in self._codes:
            raise InconsistentStateGraph(f"initial state {initial!r} has no code")
        self.initial: State = initial
        self._code_dicts: Dict[State, Dict[str, int]] = {}
        #: scratch cache for derived analyses (regions, orders); safe
        #: because the graph is immutable after construction
        self._analysis_cache: Dict[Hashable, object] = {}

        successors: Dict[State, List[Tuple[SignalEvent, State]]] = {
            s: [] for s in self._codes
        }
        predecessors: Dict[State, List[Tuple[SignalEvent, State]]] = {
            s: [] for s in self._codes
        }
        for source, event, target in arcs:
            if source not in self._codes or target not in self._codes:
                raise InconsistentStateGraph(
                    f"arc ({source!r}, {event}, {target!r}) references unknown state"
                )
            self._check_arc(source, event, target)
            successors[source].append((event, target))
            predecessors[target].append((event, source))
        # The graph is immutable from here on, so the adjacency and the
        # derived views are frozen once instead of being rebuilt on every
        # access inside region-analysis loops.
        self._succ: Dict[State, Tuple[Tuple[SignalEvent, State], ...]] = {
            s: tuple(pairs) for s, pairs in successors.items()
        }
        self._pred: Dict[State, Tuple[Tuple[SignalEvent, State], ...]] = {
            s: tuple(pairs) for s, pairs in predecessors.items()
        }
        self._states_view: FrozenSet[State] = frozenset(self._codes)
        self._state_list: Tuple[State, ...] = tuple(self._codes)
        self._excited: Dict[State, FrozenSet[str]] = {
            s: frozenset(event.signal for event, _ in pairs)
            for s, pairs in self._succ.items()
        }

    # ------------------------------------------------------------------
    # Consistency
    # ------------------------------------------------------------------
    def _check_arc(self, source: State, event: SignalEvent, target: State) -> None:
        """Enforce the consistent state assignment rules of Sec. II-A."""
        if event.signal not in self._index:
            raise InconsistentStateGraph(
                f"arc event on unknown signal {event.signal!r}"
            )
        i = self._index[event.signal]
        src, dst = self._codes[source], self._codes[target]
        if src[i] != event.value_before or dst[i] != event.value_after:
            raise InconsistentStateGraph(
                f"arc {source!r} --{event}--> {target!r} conflicts with codes "
                f"{src} -> {dst}"
            )
        for j, (a, b) in enumerate(zip(src, dst)):
            if j != i and a != b:
                raise InconsistentStateGraph(
                    f"arc {source!r} --{event}--> {target!r} changes signal "
                    f"{self.signals[j]!r} not named by the event"
                )

    def check(self) -> None:
        """Validate global well-formedness beyond per-arc consistency.

        Raises :class:`InconsistentStateGraph` if some state is not
        reachable from the initial state, or if a state enables the same
        event towards two different targets while also enabling it as a
        self-consistent duplicate (pure duplicates are collapsed at
        construction time by list semantics and are allowed -- they model
        non-deterministic specifications).
        """
        unreachable = set(self._codes) - self.reachable_from(self.initial)
        if unreachable:
            raise InconsistentStateGraph(
                f"states unreachable from initial: {sorted(map(repr, unreachable))[:5]}"
            )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def states(self) -> FrozenSet[State]:
        return self._states_view

    @property
    def state_list(self) -> Tuple[State, ...]:
        """States in construction order (the bitmask engine's bit order)."""
        return self._state_list

    @property
    def non_inputs(self) -> FrozenSet[str]:
        """Signals the circuit must produce (the paper's XO)."""
        return frozenset(self.signals) - self.inputs

    def signal_position(self, signal: str) -> int:
        return self._index[signal]

    def code(self, state: State) -> Tuple[int, ...]:
        return self._codes[state]

    def code_dict(self, state: State) -> Dict[str, int]:
        """The state's code as a signal->value mapping (for cube tests).

        Memoised: the graph is immutable and region analysis queries the
        same states thousands of times.  Callers must not mutate the
        returned dictionary.
        """
        cached = self._code_dicts.get(state)
        if cached is None:
            cached = dict(zip(self.signals, self._codes[state]))
            self._code_dicts[state] = cached
        return cached

    def value(self, state: State, signal: str) -> int:
        return self._codes[state][self._index[signal]]

    def arcs(self) -> List[Arc]:
        return [
            (source, event, target)
            for source, out in self._succ.items()
            for event, target in out
        ]

    def arcs_from(self, state: State) -> Tuple[Tuple[SignalEvent, State], ...]:
        return self._succ[state]

    def arcs_into(self, state: State) -> Tuple[Tuple[SignalEvent, State], ...]:
        return self._pred[state]

    def successors(self, state: State) -> List[State]:
        return [target for _, target in self._succ[state]]

    def predecessors(self, state: State) -> List[State]:
        return [source for _, source in self._pred[state]]

    def enabled_events(self, state: State) -> List[SignalEvent]:
        return [event for event, _ in self._succ[state]]

    def excited_signals(self, state: State) -> FrozenSet[str]:
        """Signals with an enabled transition in ``state`` (marked * in the paper)."""
        return self._excited[state]

    def is_excited(self, state: State, signal: str) -> bool:
        return signal in self._excited[state]

    def fire(self, state: State, event: SignalEvent) -> List[State]:
        """All targets reached by firing ``event`` in ``state``."""
        return [t for e, t in self._succ[state] if e == event]

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def reachable_from(self, state: State) -> Set[State]:
        seen = {state}
        frontier = [state]
        while frontier:
            current = frontier.pop()
            for _, target in self._succ[current]:
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return seen

    def reaches(self, source: State, targets: Set[State]) -> bool:
        """True if some state of ``targets`` is reachable from ``source``."""
        if source in targets:
            return True
        seen = {source}
        frontier = [source]
        while frontier:
            current = frontier.pop()
            for _, nxt in self._succ[current]:
                if nxt in targets:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return False

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def restricted_to(self, keep: Set[State], initial: Optional[State] = None) -> "StateGraph":
        """The induced subgraph on ``keep`` (used for region analysis)."""
        initial = initial if initial is not None else self.initial
        if initial not in keep:
            raise ValueError("initial state must be in the kept set")
        return StateGraph(
            self.signals,
            self.inputs,
            {s: self._codes[s] for s in keep},
            [
                (s, e, t)
                for s in keep
                for e, t in self._succ[s]
                if t in keep
            ],
            initial,
            name=self.name,
        )

    def relabelled(self, mapping: Mapping[State, State]) -> "StateGraph":
        """A copy with state ids renamed through ``mapping`` (must be injective)."""
        if len(set(mapping.values())) != len(mapping):
            raise ValueError("state relabelling must be injective")
        rename = lambda s: mapping.get(s, s)
        return StateGraph(
            self.signals,
            self.inputs,
            {rename(s): c for s, c in self._codes.items()},
            [(rename(s), e, rename(t)) for s, e, t in self.arcs()],
            rename(self.initial),
            name=self.name,
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._codes)

    def __repr__(self) -> str:
        return (
            f"StateGraph({self.name!r}, {len(self._codes)} states, "
            f"{sum(len(v) for v in self._succ.values())} arcs, "
            f"signals={list(self.signals)})"
        )
