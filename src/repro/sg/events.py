"""Signal transition events.

The paper writes transitions as ``+a`` (0 -> 1) and ``-a`` (1 -> 0), with
an optional occurrence index ``+a_j`` distinguishing multiple transitions
of the same signal within one cycle.  We adopt the astg/.g convention
``a+`` / ``a-`` for parsing and printing, and keep the occurrence index
*out* of the event: occurrences are recovered structurally as excitation
regions (Definition 5), which is both faithful to the paper and robust.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class SignalEvent:
    """A rising (+1) or falling (-1) transition of a named signal."""

    signal: str
    direction: int  # +1 for a rising edge, -1 for a falling edge

    def __post_init__(self) -> None:
        if self.direction not in (1, -1):
            raise ValueError(f"direction must be +1 or -1, got {self.direction!r}")
        if not self.signal:
            raise ValueError("signal name must be non-empty")

    # ------------------------------------------------------------------
    @classmethod
    def rise(cls, signal: str) -> "SignalEvent":
        return cls(signal, +1)

    @classmethod
    def fall(cls, signal: str) -> "SignalEvent":
        return cls(signal, -1)

    @classmethod
    def parse(cls, text: str) -> "SignalEvent":
        """Parse ``a+``, ``a-``, ``+a`` or ``-a``."""
        text = text.strip()
        if len(text) < 2:
            raise ValueError(f"cannot parse signal event from {text!r}")
        if text[-1] in "+-":
            return cls(text[:-1], +1 if text[-1] == "+" else -1)
        if text[0] in "+-":
            return cls(text[1:], +1 if text[0] == "+" else -1)
        raise ValueError(f"cannot parse signal event from {text!r}")

    # ------------------------------------------------------------------
    @property
    def is_rising(self) -> bool:
        return self.direction == 1

    @property
    def value_before(self) -> int:
        """The signal value in states where this event is enabled."""
        return 0 if self.direction == 1 else 1

    @property
    def value_after(self) -> int:
        return 1 if self.direction == 1 else 0

    def inverse(self) -> "SignalEvent":
        """The opposite edge of the same signal."""
        return SignalEvent(self.signal, -self.direction)

    def __str__(self) -> str:
        return f"{self.signal}{'+' if self.direction == 1 else '-'}"

    def __repr__(self) -> str:
        return f"SignalEvent({self})"
