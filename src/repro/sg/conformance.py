"""Trace conformance between state graphs.

The insertion engine promises that hiding the inserted signals restores
the original behaviour; the composition engine promises that the closed
loop only produces traces of the specification.  This module provides
the general tool behind both promises: a simulation-based refinement
check over the synchronous product of two state graphs.

``refines(impl, spec, hidden)`` holds when every trace of ``impl``,
with events on ``hidden`` signals erased, is a trace of ``spec`` --
checked by walking the product and demanding that every visible
implementation move be matched by the specification.  For deterministic
graphs (at most one target per (state, event)), running the check both
ways gives trace equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Set, Tuple

from repro.sg.events import SignalEvent
from repro.sg.graph import State, StateGraph


@dataclass
class RefinementResult:
    """Outcome of :func:`refines`, with a counterexample when it fails."""

    holds: bool
    #: on failure: the visible trace up to (and including) the offending event
    counterexample: Tuple[SignalEvent, ...] = ()

    def __bool__(self) -> bool:
        return self.holds


def refines(
    impl: StateGraph,
    spec: StateGraph,
    hidden: Iterable[str] = (),
) -> RefinementResult:
    """Every visible trace of ``impl`` is a trace of ``spec``.

    ``hidden`` lists implementation signals whose events are erased
    (they must not exist in the specification).  The check walks the
    product automaton breadth-first, tracking the *set* of spec states
    compatible with the trace so far (a subset construction), so it is
    exact for non-deterministic specifications as well.
    """
    hidden = frozenset(hidden)
    clash = hidden & set(spec.signals)
    if clash:
        raise ValueError(f"hidden signals exist in the spec: {sorted(clash)}")

    initial = (impl.initial, frozenset({spec.initial}))
    seen: Set[Tuple[State, FrozenSet[State]]] = {initial}
    # queue entries carry the visible trace for counterexamples
    queue: List[Tuple[Tuple[State, FrozenSet[State]], Tuple[SignalEvent, ...]]] = [
        (initial, ())
    ]
    while queue:
        (impl_state, spec_states), trace = queue.pop(0)
        for event, impl_target in impl.arcs_from(impl_state):
            if event.signal in hidden:
                follower = (impl_target, spec_states)
                if follower not in seen:
                    seen.add(follower)
                    queue.append((follower, trace))
                continue
            matched: Set[State] = set()
            for spec_state in spec_states:
                matched.update(spec.fire(spec_state, event))
            if not matched:
                return RefinementResult(
                    holds=False, counterexample=trace + (event,)
                )
            follower = (impl_target, frozenset(matched))
            if follower not in seen:
                seen.add(follower)
                queue.append((follower, trace + (event,)))
    return RefinementResult(holds=True)


def trace_equivalent(
    left: StateGraph, right: StateGraph
) -> bool:
    """Mutual refinement over identical signal sets."""
    if set(left.signals) != set(right.signals):
        return False
    return bool(refines(left, right)) and bool(refines(right, left))
