"""Whole-graph behavioural analysis: deadlocks, liveness, statistics.

Complements the paper-specific properties with the sanity checks any
specification should pass before synthesis:

* **deadlock states** -- reachable states with no enabled event;
* **liveness** -- from every reachable state, every signal can
  eventually fire again (computed on the condensation of the graph);
* **statistics** -- a compact structural summary used by the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.sg.graph import State, StateGraph
from repro.sg.regions import all_excitation_regions


def deadlock_states(sg: StateGraph) -> List[State]:
    """Reachable states with no outgoing arc."""
    return sorted(
        (s for s in sg.states if not sg.arcs_from(s)), key=str
    )


def strongly_connected_components(sg: StateGraph) -> List[FrozenSet[State]]:
    """Tarjan SCCs of the state graph (iterative)."""
    index: Dict[State, int] = {}
    lowlink: Dict[State, int] = {}
    on_stack: Set[State] = set()
    stack: List[State] = []
    components: List[FrozenSet[State]] = []
    counter = [0]

    for root in sorted(sg.states, key=str):
        if root in index:
            continue
        work: List[Tuple[State, int]] = [(root, 0)]
        while work:
            node, pointer = work[-1]
            if pointer == 0:
                index[node] = lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            successors = sg.successors(node)
            advanced = False
            while pointer < len(successors):
                successor = successors[pointer]
                pointer += 1
                if successor not in index:
                    work[-1] = (node, pointer)
                    work.append((successor, 0))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], index[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.remove(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(frozenset(component))
    return components


def is_live(sg: StateGraph) -> bool:
    """Every signal can fire again from every reachable state.

    True iff the graph is strongly connected and every signal has an
    arc (the standard situation for cyclic controller specifications;
    graphs with transient start-up prefixes are reported as non-live).
    """
    components = strongly_connected_components(sg)
    if len(components) != 1:
        return False
    firing = {event.signal for _, event, _ in sg.arcs()}
    return firing == set(sg.signals)


@dataclass
class GraphStatistics:
    """Structural summary of a state graph."""

    states: int
    arcs: int
    signals: int
    inputs: int
    regions: int
    max_region_size: int
    max_concurrency: int  # most enabled events in any state
    deadlocks: int
    live: bool

    def describe(self) -> str:
        return (
            f"{self.states} states, {self.arcs} arcs, "
            f"{self.signals} signals ({self.inputs} inputs); "
            f"{self.regions} excitation regions (largest {self.max_region_size}); "
            f"max concurrency {self.max_concurrency}; "
            f"deadlocks {self.deadlocks}; live {self.live}"
        )


def statistics(sg: StateGraph) -> GraphStatistics:
    """Compute the structural summary."""
    regions = all_excitation_regions(sg, only_non_inputs=False)
    return GraphStatistics(
        states=len(sg),
        arcs=len(sg.arcs()),
        signals=len(sg.signals),
        inputs=len(sg.inputs),
        regions=len(regions),
        max_region_size=max((len(r.states) for r in regions), default=0),
        max_concurrency=max(
            (len(sg.enabled_events(s)) for s in sg.states), default=0
        ),
        deadlocks=len(deadlock_states(sg)),
        live=is_live(sg),
    )
