"""State graphs (Section II of the paper).

A state graph is a finite automaton ``G = <X, S, T, delta, s0>`` whose
states carry consistent binary codes over the signal set ``X = XI u XO``.
This subpackage provides:

* :class:`~repro.sg.events.SignalEvent` -- a rising/falling transition of
  a named signal (``a+`` / ``a-``),
* :class:`~repro.sg.graph.StateGraph` -- the automaton with codes, arcs,
  input/non-input partition and consistency checking,
* :mod:`~repro.sg.builder` -- construction helpers, including the paper's
  asterisk notation (``1*010*`` = code 1010 with ``a`` and ``d`` excited),
* :mod:`~repro.sg.properties` -- conflict and detonant states,
  (output) semi-modularity, distributivity, persistency (Defs. 1-4, 12),
* :mod:`~repro.sg.regions` -- excitation/quiescent/constant-function
  regions, minimal states, unique entry, triggers, ordered/concurrent
  signals (Defs. 5-11),
* :mod:`~repro.sg.csc` -- Unique/Complete State Coding checks (Def. 14),
* :mod:`~repro.sg.io` -- a plain-text interchange format.
"""

from repro.sg.events import SignalEvent
from repro.sg.graph import StateGraph
from repro.sg.builder import sg_from_asterisk_states, sg_from_arcs, sg_from_cycle
from repro.sg.properties import (
    conflict_states,
    detonant_states,
    is_semi_modular,
    is_output_semi_modular,
    is_distributive,
    is_output_distributive,
    is_persistent,
    non_persistent_pairs,
)
from repro.sg.regions import (
    ExcitationRegion,
    excitation_regions,
    quiescent_region,
    constant_function_region,
    minimal_states,
    has_unique_entry,
    trigger_events,
    ordered_signals,
    concurrent_signals,
    excited_value_sets,
)
from repro.sg.csc import has_usc, has_csc, csc_conflicts, usc_conflicts
from repro.sg.compose import compose, CompositionDeadlock
from repro.sg.conformance import refines, trace_equivalent, RefinementResult
from repro.sg.analysis import deadlock_states, is_live, statistics

__all__ = [
    "SignalEvent",
    "StateGraph",
    "sg_from_asterisk_states",
    "sg_from_arcs",
    "sg_from_cycle",
    "conflict_states",
    "detonant_states",
    "is_semi_modular",
    "is_output_semi_modular",
    "is_distributive",
    "is_output_distributive",
    "is_persistent",
    "non_persistent_pairs",
    "ExcitationRegion",
    "excitation_regions",
    "quiescent_region",
    "constant_function_region",
    "minimal_states",
    "has_unique_entry",
    "trigger_events",
    "ordered_signals",
    "concurrent_signals",
    "excited_value_sets",
    "has_usc",
    "has_csc",
    "csc_conflicts",
    "usc_conflicts",
    "compose",
    "CompositionDeadlock",
    "refines",
    "trace_equivalent",
    "RefinementResult",
    "deadlock_states",
    "is_live",
    "statistics",
]
