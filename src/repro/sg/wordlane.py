"""Word-lane analysis engine: BitEngine lowered onto uint64 lanes.

:class:`LaneEngine` is a drop-in :class:`~repro.sg.bitengine.BitEngine`
-- same attributes, same big-int bitsets at every interface -- that
attacks the analysis cost from two sides:

* **bulk construction**: all packed state codes *and* all per-signal
  literal bitsets come out of one table-packing sweep (kernels in
  :mod:`repro.sg.lanes`), the succ/pred/adjacency rows out of one fused
  pass over the frozen adjacency, instead of one lazy python pass per
  signal position and one big-int OR per arc;
* **lowered analysis pipeline**: the quiescent/constant-function
  regions, the forbidden sets of Definition 16 and the monotonous-cover
  search all run bitset-in / bitset-out, materialising a frozenset only
  where one actually lands in the report.  The wide-region fallback
  performs the same greedy literal drops as the shared path with no
  intermediate ``Cube`` construction at all.

Per-call primitives whose operands are a handful of words -- rise-edge
scans, flood fills, single cube evaluations -- deliberately *stay* on
the inherited big-int paths: at typical state counts the fixed per-call
cost of an array kernel exceeds the whole big-int walk, and the lane
kernels only take over where whole-frontier batching amortises it
(construction, successor unions over large member sets, wide candidate
blocks).

Everything observable -- verdicts, cubes, witnesses, enumeration order,
region indices, component order -- is bit-for-bit identical to the
BitEngine path; the differential oracle and the randomized equivalence
sweep in the test-suite enforce this claim-for-claim.  The engine is
installed into a graph's analysis cache by :func:`lane_analysis`; shared
analysis code picks up the lowered entry points by ``getattr`` dispatch,
so graphs analysed under the ``bitengine`` or ``reference`` backends
never take (or pay for) these paths.
"""

from __future__ import annotations

from itertools import chain, combinations, islice
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro import perf
from repro.boolean.cube import Cube
from repro.sg import lanes
from repro.sg.bitengine import BitEngine
from repro.sg.graph import State, StateGraph

#: literal counts below this run the subset search as plain big-int
#: loops; the blocked lane reduction only amortises its setup above it
_SUBSET_LANE_THRESHOLD = 15

#: bitsets no wider than one word decode faster through the inherited
#: big-int walk than through the lane index kernel's fixed setup
_DECODE_LANE_THRESHOLD = 64


class LaneEngine(BitEngine):
    """A BitEngine whose bulk operations run on uint64 lane kernels."""

    __slots__ = (
        "kernel",
        "nbits",
    )

    def __init__(self, sg: StateGraph, kernel=None):
        # BitEngine.__init__ packs state codes one at a time; everything
        # here is the same field layout with the packing done in bulk.
        from repro.boolean.compiled import SignalSpace

        self.kernel = kernel if kernel is not None else lanes.get_kernel()
        self.sg = sg
        self.space = SignalSpace.of(sg.signals)
        self.signals = self.space.signals
        self.position = self.space.position
        self.states = sg.state_list
        self.index = dict(zip(self.states, range(len(self.states))))
        self._excited_bits = {}
        self.cube_evals = 0
        self.edge_checks = 0
        self._succ_bits = None
        self._pred_bits = None
        self._adj_bits = None
        states = self.states
        n = len(states)
        self.nbits = n
        self.all_states_bits = (1 << n) - 1
        codes = getattr(sg, "_codes", None)
        if self.kernel.name == "numpy" and codes is not None:
            # one packing sweep builds every packed code *and* every
            # literal bitset at once (BitEngine packs per state and
            # fills literal bitsets lazily, one python pass per signal);
            # the byte table itself is assembled entirely at C level
            width = len(self.signals)
            flat = b"".join(map(bytes, map(codes.__getitem__, states)))
            row_ints, col_ints = self.kernel.bit_table(flat, n, width)
            self.packed = dict(zip(states, row_ints))
            self.packed_list = row_ints
            self._ones_bits = col_ints
        else:
            # the pure-python kernel has no bulk-packing advantage: take
            # the BitEngine construction verbatim (lazy literal bitsets)
            pack_vector = self.space.pack_vector
            packed = {s: pack_vector(sg.code(s)) for s in states}
            self.packed = packed
            self.packed_list = [packed[s] for s in states]
            self._ones_bits = [None] * len(self.signals)

    # ------------------------------------------------------------------
    # Arc structure (one pass over the frozen adjacency)
    # ------------------------------------------------------------------
    def _build_arc_tables(self) -> None:
        succ_map = getattr(self.sg, "_succ", None)
        if succ_map is None:
            BitEngine._build_arc_tables(self)
            return
        # a lane scatter-OR builds the arc matrices faster, but turning
        # the rows back into the big ints the flood fills walk costs
        # more than this single fused python pass saves
        index, states = self.index, self.states
        n = len(states)
        succ_bits = [0] * n
        pred_bits = [0] * n
        one = 1
        for i, pairs in enumerate(map(succ_map.__getitem__, states)):
            row = 0
            src_bit = one << i
            for _, target in pairs:
                j = index[target]
                row |= one << j
                pred_bits[j] |= src_bit
            succ_bits[i] = row
        self._succ_bits = succ_bits
        self._pred_bits = pred_bits
        self._adj_bits = [s | p for s, p in zip(succ_bits, pred_bits)]

    @property
    def succ_bits(self) -> List[int]:
        if self._succ_bits is None:
            self._build_arc_tables()
        return self._succ_bits

    @property
    def pred_bits(self) -> List[int]:
        if self._pred_bits is None:
            self._build_arc_tables()
        return self._pred_bits

    @property
    def adj_bits(self) -> List[int]:
        if self._adj_bits is None:
            self._build_arc_tables()
        return self._adj_bits

    # ------------------------------------------------------------------
    # Lowered bulk primitives
    # ------------------------------------------------------------------
    def excited_bits(self, signal: str) -> int:
        table = self._excited_bits
        if not table:
            excited_map = getattr(self.sg, "_excited", None)
            if self.kernel.name != "numpy" or excited_map is None:
                return BitEngine.excited_bits(self, signal)
            # scatter the frozen per-state excited sets into one
            # signal-by-state bit table; everything before the scatter
            # is C-level iterator plumbing
            position = self.position
            sets = list(map(excited_map.__getitem__, self.states))
            rows = list(map(position.__getitem__, chain.from_iterable(sets)))
            kernel = self.kernel
            cols = kernel.repeat_indices(list(map(len, sets)))
            mat = kernel.or_table(len(self.signals), len(self.states), rows, cols)
            for name, bits in zip(self.signals, kernel.row_ints(mat)):
                table[name] = bits
        return table[signal]

    def states_of(self, bits: int) -> FrozenSet[State]:
        """Bitset decode through the lane index kernel for wide sets."""
        if self.kernel.name != "numpy" or bits.bit_length() <= _DECODE_LANE_THRESHOLD:
            return BitEngine.states_of(self, bits)
        idx = self.kernel.indices(bits, self.nbits)
        return frozenset(map(self.states.__getitem__, idx.tolist()))

    def successors_union(self, member_bits: int) -> int:
        """OR of the successor bitsets of every member state."""
        succ = self.succ_bits
        reach = 0
        members = member_bits
        while members:
            low = members & -members
            reach |= succ[low.bit_length() - 1]
            members ^= low
        return reach

    def minimal_bits(self, er_bits: int) -> int:
        """Members of ``er_bits`` with no predecessor inside it."""
        pred = self.pred_bits
        minima = 0
        members = er_bits
        while members:
            low = members & -members
            if pred[low.bit_length() - 1] & er_bits == 0:
                minima |= low
            members ^= low
        return minima

    def unique_entry_lowered(self, er) -> bool:
        """Definition 9 on bitsets: exactly one member without an
        in-region predecessor.

        A member has an in-region predecessor iff it is a successor of
        the region, so the successor union computed for QR extraction
        (and cached there) answers the whole condition without touching
        the predecessor table or materialising the minima frozenset.
        """
        cache = self.sg._analysis_cache
        er_bits = self.region_bits(("er", er), er.states)
        reach = cache.get(("reach", er))
        if reach is None:
            reach = self.successors_union(er_bits)
            cache[("reach", er)] = reach
        minima = er_bits & ~reach
        return minima != 0 and minima & (minima - 1) == 0

    # ------------------------------------------------------------------
    # Lowered region pipeline (bitset-in / bitset-out)
    # ------------------------------------------------------------------
    def qr_bits_lowered(self, er) -> int:
        """QR(*a_i) as a bitset; the frozenset is never materialised.

        Mirrors :func:`repro.sg.regions.quiescent_region` exactly,
        including the shared ``stable_comps`` cache slot.
        """
        cache = self.sg._analysis_cache
        cached = cache.get(("qr_bits", er))
        if cached is not None:
            return cached
        members = self.region_bits(("er", er), er.states)
        reach = cache.get(("reach", er))
        if reach is None:
            reach = self.successors_union(members)
            cache[("reach", er)] = reach
        position = self.position[er.signal]
        value_after = er.event.value_after
        stable = (
            self.literal_bits(position, value_after)
            & ~self.excited_bits(er.signal)
            & self.all_states_bits
        )
        exits = reach & stable
        bits = 0
        if exits:
            # the union of the exit-containing weak components of the
            # stable set is exactly the flood fill *from* the exits: it
            # touches only QR members instead of the whole stable set
            adjacency = self.adj_bits
            bits = exits
            frontier = exits
            rest = stable & ~exits
            while frontier:
                reached_adj = 0
                while frontier:
                    low = frontier & -frontier
                    reached_adj |= adjacency[low.bit_length() - 1]
                    frontier ^= low
                grown = reached_adj & rest
                bits |= grown
                rest &= ~grown
                frontier = grown
        cache[("qr_bits", er)] = bits
        return bits

    def cfr_bits_lowered(self, er) -> int:
        """CFR(*a_i) = ER u QR as a bitset, cached under the same slot
        :meth:`BitEngine.region_bits` would use for the frozenset path."""
        cache = self.sg._analysis_cache
        key = ("bits", ("cfr", er))
        cached = cache.get(key)
        if cached is None:
            cached = self.region_bits(("er", er), er.states) | self.qr_bits_lowered(er)
            cache[key] = cached
        return cached

    def cfr_states(self, er) -> FrozenSet[State]:
        """The CFR frozenset, decoded from the lowered bitset."""
        return self.states_of(self.cfr_bits_lowered(er))

    def forbidden_bits_lowered(self, signal: str, direction: int) -> int:
        """Definition 16's forbidden set from three cached bitsets.

        Rising: 1*-set u 0-set; falling mirrored -- computed directly,
        without materialising the excited-value-set frozensets.
        """
        ones = self.literal_bits(self.position[signal], 1)
        zeros = self.all_states_bits ^ ones
        excited = self.excited_bits(signal)
        if direction == 1:
            return (ones & excited) | (zeros & ~excited)
        return (zeros & excited) | (ones & ~excited)

    def excitation_regions_lowered(self, sg: StateGraph, signal: str) -> list:
        """ER extraction with the BFS discovery order computed lazily.

        The discovery order only breaks ties between *multiple*
        components of one (signal, direction) pair; with a single
        component (the overwhelmingly common case) its index is 1 and
        the whole BFS is skipped.  Multi-component pairs fall back to
        the exact shared ordering.
        """
        from repro.sg.regions import ExcitationRegion, _bfs_order

        position = sg.signal_position(signal)
        excited_all = self.excited_bits(signal)
        states_of = self.states_of
        cache = sg._analysis_cache
        regions = []
        for direction in (+1, -1):
            before = 0 if direction == 1 else 1
            excited = excited_all & self.literal_bits(position, before)
            components = [
                (bits, states_of(bits)) for bits in self.weak_components(excited)
            ]
            if len(components) > 1:
                discovery = _bfs_order(sg)
                fallback = len(discovery)
                components.sort(
                    key=lambda c: min(
                        discovery.get(s, fallback) for s in c[1]
                    )
                )
            for i, (bits, component) in enumerate(components, start=1):
                er = ExcitationRegion(signal, direction, i, component)
                # the component bitset *is* the region's member bitset:
                # priming region_bits' slot saves the re-pack every
                # downstream helper would otherwise pay once
                cache[("bits", ("er", er))] = bits
                regions.append(er)
        return regions

    def ordered_signals_lowered(self, er_bits: int) -> FrozenSet[str]:
        """Definition 11's ordered signals via direct excited-table reads."""
        if not self.signals:
            return frozenset()
        self.excited_bits(self.signals[0])  # warm the whole table
        table = self._excited_bits
        return frozenset(
            signal
            for signal in self.sg.signals
            if not table[signal] & er_bits
        )

    def smallest_cover_cube_lowered(self, sg: StateGraph, er) -> Cube:
        """Lemma 3's cube with literal values read off the packed code."""
        from repro.sg.regions import ordered_signals

        packed = self.packed[next(iter(er.states))]
        position = self.position
        literals = {}
        for signal in ordered_signals(sg, er):
            literals[signal] = packed >> position[signal] & 1
        return Cube(literals)

    # ------------------------------------------------------------------
    # Lowered shared-analysis entry points (getattr-dispatched)
    # ------------------------------------------------------------------
    def value_sets(self, signal: str) -> Dict[str, FrozenSet[State]]:
        """The paper's 0/0*/1/1*-sets from three cached bitsets."""
        ones = self.literal_bits(self.position[signal], 1)
        zeros = self.all_states_bits ^ ones
        excited = self.excited_bits(signal)
        states_of = self.states_of
        return {
            "0-set": states_of(zeros & ~excited),
            "0*-set": states_of(zeros & excited),
            "1-set": states_of(ones & ~excited),
            "1*-set": states_of(ones & excited),
        }

    def bfs_order(self) -> Dict[State, int]:
        """Deterministic BFS discovery order, with one global arc sort.

        Replicates :func:`repro.sg.regions._bfs_order` exactly: arcs are
        ordered per source by ``(str(event), str(target))`` with ties
        broken by original adjacency position (the stable-sort order of
        the per-state ``sorted`` calls).
        """
        sg = self.sg
        index = self.index
        # the per-state sort key is (str(event), str(target)); replacing
        # both strings by their global ranks preserves the order exactly
        # (str is injective on events and states) and sorts int tuples,
        # which compare several times faster than strings
        events = set()
        for state in self.states:
            for event, _ in sg.arcs_from(state):
                events.add(event)
        # equal strings map to equal ranks, so same-str items still tie
        # (and fall through to the stable seq order) like the original
        event_str_rank = {s: r for r, s in enumerate(sorted({str(e) for e in events}))}
        event_rank = {e: event_str_rank[str(e)] for e in events}
        state_str_rank = {
            s: r for r, s in enumerate(sorted({str(s) for s in self.states}))
        }
        state_rank = {s: state_str_rank[str(s)] for s in self.states}
        items: List[Tuple[int, int, int, int, int]] = []
        append = items.append
        seq = 0
        for i, state in enumerate(self.states):
            for event, target in sg.arcs_from(state):
                append((i, event_rank[event], state_rank[target], seq, index[target]))
                seq += 1
        items.sort()
        n = len(self.states)
        succ_sorted: List[List[int]] = [[] for _ in range(n)]
        for i, _, _, _, j in items:
            succ_sorted[i].append(j)
        start = index[sg.initial]
        seen = bytearray(n)
        seen[start] = 1
        discovered = [start]
        head = 0
        while head < len(discovered):
            for j in succ_sorted[discovered[head]]:
                if not seen[j]:
                    seen[j] = 1
                    discovered.append(j)
            head += 1
        states = self.states
        return {states[j]: pos for pos, j in enumerate(discovered)}

    def find_monotonous_cover_lowered(
        self, sg: StateGraph, er, max_literal_budget: int = 18
    ) -> Optional[Cube]:
        """The Definition-17 search of ``covers.find_monotonous_cover``
        on the lowered region bitsets, with wide candidate blocks
        evaluated as lane reductions.

        Same lattice, same smallest-first enumeration, same first-winner
        rule, same counters -- only the per-candidate arithmetic moved.
        """
        from repro.core import covers

        cfr_bits = covers._cfr_bits(sg, er)
        full = covers.smallest_cover_cube(sg, er)
        outside_all = self.all_states_bits & ~cfr_bits
        full_ones = self.cube_bits(full)
        if full_ones & outside_all:
            return None

        literals = full.literals
        if len(literals) > max_literal_budget:
            # the full cube already covers nothing outside the CFR, so
            # check_monotonous_cover reduces to ER coverage + no rise
            if self.er_bits_of(sg, er) & ~full_ones == 0 and not self.has_rise_edge(
                cfr_bits, full_ones
            ):
                return full
            return self._greedy_mc_lowered(sg, er, literals, cfr_bits)

        position = self.position
        satisfy = [
            self.literal_bits(position[signal], value)
            for signal, value in literals
        ]
        exclusion = [outside_all & ~bits for bits in satisfy]
        subset, candidates, mono_checks = self._mc_subset_search(
            satisfy, exclusion, outside_all, cfr_bits
        )
        perf.count("cube.candidates", candidates)
        perf.count("cube.mono_checks", mono_checks)
        if subset is None:
            return None
        return Cube(dict(literals[i] for i in subset))

    def er_bits_of(self, sg: StateGraph, er) -> int:
        return self.region_bits(("er", er), er.states)

    def _mc_subset_search(
        self,
        satisfy: List[int],
        exclusion: List[int],
        need: int,
        cfr_bits: int,
    ) -> Tuple[Optional[Tuple[int, ...]], int, int]:
        """First literal subset (smallest-first, combinations order) that
        excludes every outside state and has no rise edge in the CFR.

        Returns ``(subset, candidates, mono_checks)`` with the counters
        the shared python loop would have reported.  Narrow literal sets
        run the plain big-int loop; wide ones evaluate candidate blocks
        as one lane OR-reduction per chunk.
        """
        count = len(satisfy)
        candidates = 0
        mono_checks = 0
        all_bits = self.all_states_bits
        has_rise = self.has_rise_edge

        if self.kernel.name != "numpy" or count < _SUBSET_LANE_THRESHOLD:
            for size in range(0, count + 1):
                for subset in combinations(range(count), size):
                    candidates += 1
                    excluded = 0
                    for i in subset:
                        excluded |= exclusion[i]
                    if excluded != need:
                        continue
                    ones = all_bits
                    for i in subset:
                        ones &= satisfy[i]
                    mono_checks += 1
                    if not has_rise(cfr_bits, ones):
                        return subset, candidates, mono_checks
            return None, candidates, mono_checks

        np = lanes._np
        nbits = self.nbits
        kernel = self.kernel
        rows = np.vstack([kernel.to_words(bits, nbits) for bits in exclusion])
        need_words = kernel.to_words(need, nbits)

        # size 0: the empty cube
        candidates += 1
        if need == 0:
            mono_checks += 1
            if not has_rise(cfr_bits, all_bits):
                return (), candidates, mono_checks

        chunk_size = 2048
        for size in range(1, count + 1):
            stream = combinations(range(count), size)
            while True:
                chunk = list(islice(stream, chunk_size))
                if not chunk:
                    break
                combo = np.asarray(chunk, dtype=np.intp)
                reduced = np.bitwise_or.reduce(rows[combo], axis=1)
                passing = np.nonzero((reduced == need_words).all(axis=1))[0]
                for p in passing:
                    subset = chunk[int(p)]
                    ones = all_bits
                    for i in subset:
                        ones &= satisfy[i]
                    mono_checks += 1
                    if not has_rise(cfr_bits, ones):
                        return subset, candidates + int(p) + 1, mono_checks
                candidates += len(chunk)
        return None, candidates, mono_checks

    def _greedy_mc_lowered(
        self,
        sg: StateGraph,
        er,
        literals: Tuple[Tuple[str, int], ...],
        cfr_bits: int,
    ) -> Optional[Cube]:
        """``covers._greedy_mc_search`` without intermediate Cubes.

        The literal set lives in one insertion-ordered dict (sorted, like
        ``Cube.literals``); each iteration recomputes the ones-bitset by
        AND-ing cached literal lanes, finds the first rise-edge witness,
        and drops the first changed literal -- the same drop sequence,
        hence the same final cube or failure, as the shared path.
        """
        er_bits = self.er_bits_of(sg, er)
        all_bits = self.all_states_bits
        outside_all = all_bits & ~cfr_bits
        position = self.position
        literal_bits = self.literal_bits
        # three aligned lists in Cube.literals (sorted-signal) order; a
        # drop deletes from all three, preserving relative order like
        # the shared path's cube.without() does
        names = [signal for signal, _ in literals]
        values = dict(literals)
        masks = [literal_bits(position[s], v) for s, v in literals]
        posbits = [1 << position[s] for s, _ in literals]
        packed_list = self.packed_list
        succ = self.succ_bits

        def ones_of() -> int:
            bits = all_bits
            for mask in masks:
                bits &= mask
            return bits

        ones = ones_of()
        for _ in range(len(literals)):
            # first_rise_edge, inlined: the witness walk is the greedy
            # loop's hottest step
            self.edge_checks += 1
            zeros = cfr_bits & ~ones
            ones_inside = cfr_bits & ones
            u2 = -1
            while zeros:
                low = zeros & -zeros
                i = low.bit_length() - 1
                rising = succ[i] & ones_inside
                if rising:
                    u2 = i
                    v2 = rising.bit_length() - 1
                    break
                zeros ^= low
            if u2 < 0:
                if er_bits & ~ones == 0 and not ones & outside_all:
                    return Cube({s: values[s] for s in names})
                return None
            diff = packed_list[u2] ^ packed_list[v2]
            k = -1
            for idx, posbit in enumerate(posbits):
                if diff & posbit:
                    k = idx
                    break
            if k < 0:
                return None
            del names[k], masks[k], posbits[k]
            ones = ones_of()
            if ones & outside_all:
                return None
        if (
            er_bits & ~ones == 0
            and not ones & outside_all
            and not self.has_rise_edge(cfr_bits, ones)
        ):
            return Cube({s: values[s] for s in names})
        return None


def lane_analysis(sg: StateGraph, kernel=None) -> LaneEngine:
    """Install (or fetch) the graph's word-lane engine.

    The engine is cached under the same ``"bitengine"`` analysis-cache
    key :func:`repro.sg.bitengine.bit_analysis` reads, so every shared
    analysis helper transparently runs on the lane engine afterwards.
    Replacing an already-built plain BitEngine is safe: all derived
    caches hold engine-independent values.
    """
    engine = sg._analysis_cache.get("bitengine")
    if not isinstance(engine, LaneEngine):
        engine = LaneEngine(sg, kernel=kernel)
        sg._analysis_cache["bitengine"] = engine
    return engine
