"""uint64 lane kernels for the word-parallel analysis engine.

The wordlane backend (:mod:`repro.sg.wordlane`) keeps the BitEngine's
*interface* -- big-int bitsets indexed by ``sg.state_list`` position --
but lowers every batch-amenable step to dense ``uint64`` lane operations:
packing all state codes at once, building the succ/pred/adjacency tables
as an ``n x words`` matrix, OR-reducing many rows in one sweep, and
testing a whole frontier of packed codes against one ``(mask, value)``
cube.  This module provides those primitives behind a small kernel
interface with two interchangeable implementations:

* :class:`NumpyKernel` -- vectorised over ``numpy`` ``uint64`` arrays
  (installed via the ``fast`` extra, see ``pyproject.toml``);
* :class:`PythonKernel` -- pure python over ``array('Q')`` word buffers
  and big ints, dependency-free, bit-for-bit identical results.

Bitsets cross the kernel boundary as python ints (little-endian word
order); lane matrices are opaque kernel-owned handles.  Selection is
automatic (numpy when importable) and observable: every selection bumps
a module counter and, when a :mod:`repro.perf` recorder is active, a
``lane.kernel.<name>`` perf counter, so ``--profile`` output shows which
kernel actually ran; a numpy request that falls back to pure python is
additionally counted under ``lane.kernel.fallback``.
"""

from __future__ import annotations

import os
from array import array
from typing import Dict, List, Optional, Sequence, Tuple

from repro import perf

try:  # the core install is dependency-free; numpy is the `fast` extra
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the fallback tests
    _np = None

HAVE_NUMPY = _np is not None

#: environment override for kernel selection: "numpy" | "python"
KERNEL_ENV = "REPRO_LANE_KERNEL"

#: running selection counts (always on, independent of the perf recorder)
KERNEL_SELECTIONS: Dict[str, int] = {"numpy": 0, "python": 0, "fallback": 0}


def words_for(nbits: int) -> int:
    """Number of 64-bit words needed for a bitset over ``nbits`` items."""
    return max(1, (nbits + 63) >> 6)


# ----------------------------------------------------------------------
# numpy kernel
# ----------------------------------------------------------------------
class NumpyKernel:
    """Lane primitives vectorised over numpy ``uint64`` arrays."""

    name = "numpy"

    # -- bitset <-> lane conversions -----------------------------------
    def to_words(self, bits: int, nbits: int):
        nwords = words_for(nbits)
        return _np.frombuffer(
            bits.to_bytes(nwords * 8, "little"), dtype=_np.uint64
        )

    def to_int(self, words) -> int:
        return int.from_bytes(words.astype("<u8", copy=False).tobytes(), "little")

    def indices(self, bits: int, nbits: int):
        """Ascending positions of the set bits of ``bits``."""
        nbytes = words_for(nbits) * 8
        flags = _np.unpackbits(
            _np.frombuffer(bits.to_bytes(nbytes, "little"), dtype=_np.uint8),
            bitorder="little",
            count=nbits,
        )
        return _np.nonzero(flags)[0]

    def bits_from_indices(self, idx, nbits: int) -> int:
        flags = _np.zeros(words_for(nbits) * 64, dtype=_np.uint8)
        flags[idx] = 1
        return int.from_bytes(
            _np.packbits(flags, bitorder="little").tobytes(), "little"
        )

    # -- bulk bit-table packing ----------------------------------------
    def bit_table(
        self,
        flat: bytes,
        rows: int,
        cols: int,
        want_rows: bool = True,
        want_cols: bool = True,
    ) -> Tuple[Optional[List[int]], Optional[List[int]]]:
        """Pack an (implicitly row-major) 0/1 table both ways at once.

        Returns ``(row_ints, col_ints)``: per row the packed int over the
        columns (bit j = column j), per column the bitset over the rows.
        Either side can be skipped with ``want_rows`` / ``want_cols``.
        """
        if rows == 0 or cols == 0:
            return (
                [0] * rows if want_rows else None,
                [0] * cols if want_cols else None,
            )
        table = _np.frombuffer(flat, dtype=_np.uint8).reshape(rows, cols)
        row_ints = col_ints = None
        if want_rows:
            row_packed = _np.packbits(table, axis=1, bitorder="little")
            stride = row_packed.shape[1]
            row_bytes = row_packed.tobytes()
            row_ints = [
                int.from_bytes(row_bytes[i * stride : (i + 1) * stride], "little")
                for i in range(rows)
            ]
        if want_cols:
            col_packed = _np.ascontiguousarray(
                _np.packbits(table, axis=0, bitorder="little").T
            )
            cstride = col_packed.shape[1]
            col_bytes = col_packed.tobytes()
            col_ints = [
                int.from_bytes(col_bytes[j * cstride : (j + 1) * cstride], "little")
                for j in range(cols)
            ]
        return row_ints, col_ints

    # -- lane matrices -------------------------------------------------
    def repeat_indices(self, counts: Sequence[int]):
        """``[0]*counts[0] + [1]*counts[1] + ...`` as an index vector."""
        return _np.repeat(_np.arange(len(counts), dtype=_np.intp), counts)

    def or_table(self, nrows: int, ncols: int, rows, cols):
        """Scatter-OR table: bit ``c`` of row ``r`` set per ``(r, c)`` pair."""
        mat = _np.zeros((nrows, words_for(ncols)), dtype=_np.uint64)
        if len(rows):
            r = _np.asarray(rows, dtype=_np.intp)
            c = _np.asarray(cols, dtype=_np.intp)
            _np.bitwise_or.at(
                mat,
                (r, c >> 6),
                _np.uint64(1) << (c & 63).astype(_np.uint64),
            )
        return mat

    def or_matrix(self, n: int, srcs: Sequence[int], tgts: Sequence[int]):
        """Rows-of-bitsets matrix: row[s] accumulates bit t per (s, t)."""
        return self.or_table(n, n, srcs, tgts)

    def matrix_or(self, a, b):
        return a | b

    def row_int(self, mat, i: int) -> int:
        return self.to_int(mat[i])

    def row_ints(self, mat) -> List[int]:
        stride = mat.shape[1] * 8
        raw = mat.astype("<u8", copy=False).tobytes()
        return [
            int.from_bytes(raw[i * stride : (i + 1) * stride], "little")
            for i in range(mat.shape[0])
        ]

    def union_rows(self, mat, member_bits: int, nbits: int) -> int:
        """OR of the rows named by a member bitset, as one reduction."""
        if member_bits == 0:
            return 0
        idx = self.indices(member_bits, nbits)
        return self.to_int(_np.bitwise_or.reduce(mat[idx], axis=0))

    def rows_hitting(
        self, mat, member_bits: int, target_bits: int, nbits: int
    ) -> int:
        """Bitset of members whose row intersects ``target_bits``."""
        if member_bits == 0:
            return 0
        idx = self.indices(member_bits, nbits)
        target = self.to_words(target_bits, nbits)
        hit = ((mat[idx] & target) != 0).any(axis=1)
        return self.bits_from_indices(idx[hit], nbits)

    def first_hit(
        self, mat, zeros: int, ones: int, nbits: int
    ) -> Optional[Tuple[int, int]]:
        """First member of ``zeros`` (ascending) whose row meets ``ones``.

        Returns ``(member index, highest bit of the intersection)`` --
        exactly the witness pair :meth:`BitEngine.first_rise_edge` picks.
        """
        if zeros == 0:
            return None
        idx = self.indices(zeros, nbits)
        inter = mat[idx] & self.to_words(ones, nbits)
        hit = (inter != 0).any(axis=1)
        if not hit.any():
            return None
        k = int(hit.argmax())
        return int(idx[k]), self.to_int(inter[k]).bit_length() - 1

    def any_hit(self, mat, zeros: int, ones: int, nbits: int) -> bool:
        if zeros == 0:
            return False
        idx = self.indices(zeros, nbits)
        return bool(((mat[idx] & self.to_words(ones, nbits)) != 0).any())

    def components(self, adj, subset: int, nbits: int) -> List[int]:
        """Weakly connected components over a symmetric lane matrix.

        Seeds at the lowest set bit of the remainder, like the BitEngine
        flood fill, so component order is identical.
        """
        remaining = self.to_words(subset, nbits).copy()
        result: List[int] = []
        while remaining.any():
            rem_int = self.to_int(remaining)
            seed = rem_int & -rem_int
            comp = self.to_words(seed, nbits).copy()
            remaining &= ~comp
            frontier = self.indices(seed, nbits)
            while len(frontier):
                reached = _np.bitwise_or.reduce(adj[frontier], axis=0)
                grown = reached & remaining
                if not grown.any():
                    break
                comp |= grown
                remaining &= ~grown
                frontier = self.indices(self.to_int(grown), nbits)
            result.append(self.to_int(comp))
        return result

    # -- whole-frontier cube matching ----------------------------------
    def match_rows(self, row_words, mask: int, value: int, nbits: int) -> int:
        """Bitset of rows whose packed code satisfies ``& mask == value``.

        ``row_words`` is a lane matrix of packed codes (one row per
        item, enough words for the signal count).
        """
        signal_bits = row_words.shape[1] * 64
        mask_w = self.to_words(mask, signal_bits)
        value_w = self.to_words(value, signal_bits)
        ok = ((row_words & mask_w) == value_w).all(axis=1)
        return int.from_bytes(
            _np.packbits(ok.astype(_np.uint8), bitorder="little").tobytes(),
            "little",
        )

    def pack_code_matrix(self, packed: Sequence[int], signal_count: int):
        """Packed per-item codes as a lane matrix for :meth:`match_rows`."""
        nwords = words_for(signal_count)
        raw = b"".join(code.to_bytes(nwords * 8, "little") for code in packed)
        return _np.frombuffer(raw, dtype=_np.uint64).reshape(len(packed), nwords)

    def or_reduce_subsets(self, rows, combos):
        """Per combo (a row of indices), OR of the selected lane rows."""
        return _np.bitwise_or.reduce(rows[combos], axis=1)


# ----------------------------------------------------------------------
# pure-python kernel
# ----------------------------------------------------------------------
class PythonKernel:
    """Dependency-free kernel over ``array('Q')`` words and big ints.

    Semantics are bit-for-bit those of :class:`NumpyKernel`; throughput
    is secondary -- this is the fallback when numpy is not installed.
    """

    name = "python"

    def to_words(self, bits: int, nbits: int) -> array:
        nwords = words_for(nbits)
        return array("Q", bits.to_bytes(nwords * 8, "little"))

    def to_int(self, words: array) -> int:
        return int.from_bytes(words.tobytes(), "little")

    def indices(self, bits: int, nbits: int) -> List[int]:
        result = []
        while bits:
            low = bits & -bits
            result.append(low.bit_length() - 1)
            bits ^= low
        return result

    def bits_from_indices(self, idx: Sequence[int], nbits: int) -> int:
        bits = 0
        for i in idx:
            bits |= 1 << i
        return bits

    def bit_table(
        self,
        flat: bytes,
        rows: int,
        cols: int,
        want_rows: bool = True,
        want_cols: bool = True,
    ) -> Tuple[Optional[List[int]], Optional[List[int]]]:
        row_ints = [0] * rows
        col_ints = [0] * cols
        offset = 0
        for i in range(rows):
            packed = 0
            row = flat[offset : offset + cols]
            offset += cols
            for j, bit in enumerate(row):
                if bit:
                    packed |= 1 << j
                    col_ints[j] |= 1 << i
            row_ints[i] = packed
        return (
            row_ints if want_rows else None,
            col_ints if want_cols else None,
        )

    def repeat_indices(self, counts: Sequence[int]) -> List[int]:
        out: List[int] = []
        for i, count in enumerate(counts):
            out.extend([i] * count)
        return out

    def or_table(self, nrows: int, ncols: int, rows, cols) -> List[int]:
        table = [0] * nrows
        for r, c in zip(rows, cols):
            table[r] |= 1 << c
        return table

    def or_matrix(self, n: int, srcs: Sequence[int], tgts: Sequence[int]):
        return self.or_table(n, n, srcs, tgts)

    def matrix_or(self, a, b):
        return [x | y for x, y in zip(a, b)]

    def row_int(self, mat, i: int) -> int:
        return mat[i]

    def row_ints(self, mat) -> List[int]:
        return list(mat)

    def union_rows(self, mat, member_bits: int, nbits: int) -> int:
        # accumulate in word lanes: same shape of work as the numpy
        # reduction, just one python-level OR per member row
        acc = array("Q", bytes(words_for(nbits) * 8))
        nbytes = len(acc) * 8
        members = member_bits
        while members:
            low = members & -members
            members ^= low
            row = array("Q", mat[low.bit_length() - 1].to_bytes(nbytes, "little"))
            for w in range(len(acc)):
                acc[w] |= row[w]
        return self.to_int(acc)

    def rows_hitting(
        self, mat, member_bits: int, target_bits: int, nbits: int
    ) -> int:
        hits = 0
        members = member_bits
        while members:
            low = members & -members
            members ^= low
            if mat[low.bit_length() - 1] & target_bits:
                hits |= low
        return hits

    def first_hit(
        self, mat, zeros: int, ones: int, nbits: int
    ) -> Optional[Tuple[int, int]]:
        while zeros:
            low = zeros & -zeros
            i = low.bit_length() - 1
            inter = mat[i] & ones
            if inter:
                return i, inter.bit_length() - 1
            zeros ^= low
        return None

    def any_hit(self, mat, zeros: int, ones: int, nbits: int) -> bool:
        while zeros:
            low = zeros & -zeros
            if mat[low.bit_length() - 1] & ones:
                return True
            zeros ^= low
        return False

    def components(self, adj, subset: int, nbits: int) -> List[int]:
        remaining = subset
        result: List[int] = []
        while remaining:
            seed = remaining & -remaining
            component = seed
            remaining ^= seed
            frontier = seed
            while frontier:
                reached = 0
                while frontier:
                    low = frontier & -frontier
                    reached |= adj[low.bit_length() - 1]
                    frontier ^= low
                grown = reached & remaining
                component |= grown
                remaining &= ~grown
                frontier = grown
            result.append(component)
        return result

    def match_rows(self, row_words, mask: int, value: int, nbits: int) -> int:
        bits = 0
        for i, code in enumerate(row_words):
            if code & mask == value:
                bits |= 1 << i
        return bits

    def pack_code_matrix(self, packed: Sequence[int], signal_count: int):
        return list(packed)

    def or_reduce_subsets(self, rows, combos):
        return [[self._or_over(rows, combo)] for combo in combos]

    def _or_over(self, rows, combo):
        acc = 0
        for i in combo:
            acc |= rows[i]
        return acc


_NUMPY_KERNEL = NumpyKernel() if HAVE_NUMPY else None
_PYTHON_KERNEL = PythonKernel()


def get_kernel(prefer: Optional[str] = None):
    """Select the lane kernel: numpy when available, else pure python.

    ``prefer`` (or the ``REPRO_LANE_KERNEL`` environment variable) can
    force ``"python"`` or request ``"numpy"``; an unavailable numpy
    request falls back to python and is counted as a fallback.
    """
    choice = prefer or os.environ.get(KERNEL_ENV) or ""
    if choice not in ("", "numpy", "python"):
        raise ValueError(
            f"unknown lane kernel {choice!r} (expected 'numpy' or 'python')"
        )
    if choice == "python":
        kernel = _PYTHON_KERNEL
    elif _NUMPY_KERNEL is not None:
        kernel = _NUMPY_KERNEL
    else:
        if choice == "numpy":
            KERNEL_SELECTIONS["fallback"] += 1
            perf.count("lane.kernel.fallback")
        kernel = _PYTHON_KERNEL
    if kernel is _PYTHON_KERNEL and choice == "" and not HAVE_NUMPY:
        KERNEL_SELECTIONS["fallback"] += 1
        perf.count("lane.kernel.fallback")
    KERNEL_SELECTIONS[kernel.name] += 1
    perf.count(f"lane.kernel.{kernel.name}")
    return kernel
