"""Parallel composition of state graphs.

Builds a system from components: shared signals synchronise (both
components move on the event together), private signals interleave.
A signal driven as a non-input by one component and read as an input by
the other becomes a non-input of the composite (the producer wins);
signals that are inputs everywhere stay inputs.

This is the standard synchronous product used to assemble, e.g., a
pipeline specification from per-stage controllers, or to close a
specification with an explicit environment process.  Initial codes must
agree on the shared signals.

A shared event fires only when *both* components enable it, so a
component can constrain another's outputs -- which is exactly how an
environment process restricts a controller.  Composition can introduce
deadlocks if the components disagree; :func:`compose` reports states
with no successors when ``allow_deadlock`` is False.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.sg.events import SignalEvent
from repro.sg.graph import InconsistentStateGraph, State, StateGraph


class CompositionDeadlock(RuntimeError):
    """The composition contains reachable states with no successors."""

    def __init__(self, states: List[State]):
        self.states = states
        super().__init__(
            f"composition deadlocks in {len(states)} state(s), "
            f"e.g. {states[0]!r}"
        )


def compose(
    left: StateGraph,
    right: StateGraph,
    name: str = None,
    allow_deadlock: bool = False,
) -> StateGraph:
    """The parallel composition of two state graphs."""
    shared = set(left.signals) & set(right.signals)
    for signal in shared:
        if left.value(left.initial, signal) != right.value(right.initial, signal):
            raise InconsistentStateGraph(
                f"initial values of shared signal {signal!r} disagree"
            )
        if signal in left.non_inputs and signal in right.non_inputs:
            raise InconsistentStateGraph(
                f"shared signal {signal!r} is driven by both components"
            )

    signals = tuple(left.signals) + tuple(
        s for s in right.signals if s not in shared
    )
    inputs = {
        s
        for s in signals
        if (s not in left.signals or s in left.inputs)
        and (s not in right.signals or s in right.inputs)
    }

    def code_of(pair: Tuple[State, State]) -> Tuple[int, ...]:
        l_state, r_state = pair
        values = dict(right.code_dict(r_state))
        values.update(left.code_dict(l_state))
        return tuple(values[s] for s in signals)

    initial = (left.initial, right.initial)
    codes: Dict[Tuple[State, State], Tuple[int, ...]] = {initial: code_of(initial)}
    arcs: List[Tuple[Tuple[State, State], SignalEvent, Tuple[State, State]]] = []
    stuck: List[Tuple[State, State]] = []
    queue: List[Tuple[State, State]] = [initial]
    seen: Set[Tuple[State, State]] = {initial}

    while queue:
        current = queue.pop()
        l_state, r_state = current
        successors: List[Tuple[SignalEvent, Tuple[State, State]]] = []
        for event, l_target in left.arcs_from(l_state):
            if event.signal in shared:
                for r_target in right.fire(r_state, event):
                    successors.append((event, (l_target, r_target)))
            else:
                successors.append((event, (l_target, r_state)))
        for event, r_target in right.arcs_from(r_state):
            if event.signal in shared:
                continue  # handled symmetrically above
            successors.append((event, (l_state, r_target)))

        if not successors:
            stuck.append(current)
        for event, target in successors:
            if target not in seen:
                seen.add(target)
                codes[target] = code_of(target)
                queue.append(target)
            arcs.append((current, event, target))

    if stuck and not allow_deadlock:
        raise CompositionDeadlock(sorted(stuck, key=str))

    composite = StateGraph(
        signals,
        inputs,
        codes,
        arcs,
        initial,
        name=name or f"{left.name}||{right.name}",
    )
    return composite
