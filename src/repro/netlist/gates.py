"""The basic gate library (Sec. III of the paper).

Gates are AND, OR (with optional inversion bubbles on inputs), NOT/BUF,
the two-input Muller C-element and the RS latch.  Input inversions on
AND/OR gates are part of the gate (the paper justifies this with the
``d_inv^max < D_sn^min`` delay argument); NOT as a *standalone* gate is
available for explicit experiments with separate inverters.

Each gate computes a next output value from its (polarity-adjusted)
input values and its current output; under the pure unbounded gate delay
model the output is *excited* whenever next != current, and the delay
before it fires is arbitrary.

Two evaluation forms exist.  :meth:`Gate.next_value` is the reference
semantics over a ``{signal: value}`` dict.  :meth:`Gate.compiled_evaluator`
compiles the gate against a :class:`~repro.boolean.compiled.SignalSpace`
into a closure over *packed* state codes -- e.g. an AND gate becomes one
``packed & inmask == want`` test -- which is what the circuit-level BFS
and the discrete-event simulator run on their hot paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Mapping, Optional, Tuple

from repro.boolean.compiled import SignalSpace

#: a compiled gate function: (packed code, current output bit) -> next bit
PackedEvaluator = Callable[[int, int], int]


class GateKind(Enum):
    AND = "and"
    OR = "or"
    NOR = "nor"
    NAND = "nand"
    NOT = "not"
    BUF = "buf"
    C = "c"  # Muller C-element: inputs (set side, reset side)
    RS = "rs"  # behavioural set/reset latch: inputs (S, R), hold on S=R
    COMPLEX = "complex"  # one atomic gate computing an arbitrary SOP


@dataclass(frozen=True)
class Gate:
    """One gate: ``output = kind(inputs)``.

    ``inputs`` is a tuple of ``(signal, polarity)`` pairs; polarity 0
    inverts the input (a bubble).  For C and RS gates the tuple must have
    exactly two entries: the set-side input first, the reset-side second.
    For the C-element the conventional instantiation ``a = C(Sa, Ra')``
    is ``Gate("a", GateKind.C, (("Sa", 1), ("Ra", 0)))``.
    """

    output: str
    kind: GateKind
    inputs: Tuple[Tuple[str, int], ...]
    #: for COMPLEX gates: the Boolean function as a Cover over the fanin
    #: signals (evaluated on raw values; input polarities are part of the
    #: cover's literals, not of the pin list)
    function: object = None

    def __post_init__(self) -> None:
        if self.kind == GateKind.COMPLEX and self.function is None:
            raise ValueError("complex gate needs a function cover")
        if self.kind in (GateKind.NOT, GateKind.BUF) and len(self.inputs) != 1:
            raise ValueError(f"{self.kind.value} gate needs exactly one input")
        if self.kind in (GateKind.C, GateKind.RS) and len(self.inputs) != 2:
            raise ValueError(f"{self.kind.value} element needs exactly two inputs")
        if self.kind in (GateKind.AND, GateKind.OR, GateKind.NOR, GateKind.NAND) and not self.inputs:
            raise ValueError(f"{self.kind.value} gate needs at least one input")
        for _, polarity in self.inputs:
            if polarity not in (0, 1):
                raise ValueError("input polarity must be 0 or 1")

    @property
    def fanin_signals(self) -> Tuple[str, ...]:
        return tuple(signal for signal, _ in self.inputs)

    def next_value(self, values: Mapping[str, int], current: int) -> int:
        """The gate's next output under the given input values."""
        if self.kind == GateKind.COMPLEX:
            point = {signal: values[signal] for signal, _ in self.inputs}
            return int(self.function.covers(point))
        effective = [
            values[signal] if polarity else 1 - values[signal]
            for signal, polarity in self.inputs
        ]
        if self.kind == GateKind.AND:
            return int(all(effective))
        if self.kind == GateKind.OR:
            return int(any(effective))
        if self.kind == GateKind.NOR:
            return int(not any(effective))
        if self.kind == GateKind.NAND:
            return int(not all(effective))
        if self.kind == GateKind.BUF:
            return effective[0]
        if self.kind == GateKind.NOT:
            return 1 - effective[0]
        if self.kind == GateKind.C:
            first, second = effective
            if first == second:
                return first
            return current
        if self.kind == GateKind.RS:
            set_in, reset_in = effective
            if set_in and not reset_in:
                return 1
            if reset_in and not set_in:
                return 0
            return current  # both idle -> hold; both active -> hold (illegal)
        raise AssertionError(f"unknown gate kind {self.kind}")  # pragma: no cover

    def _input_requirements(
        self, space: SignalSpace, flip: bool = False
    ) -> Optional[Tuple[int, int]]:
        """The ``(mask, want)`` pair for "every effective input reads 1".

        An effective input reads 1 iff the packed bit equals its polarity
        (or the opposite polarity with ``flip``, i.e. "every effective
        input reads 0").  Returns ``None`` when the same signal appears
        with both polarities, making the conjunction unsatisfiable.
        """
        required: dict = {}
        for signal, polarity in self.inputs:
            bit = 1 << space.position[signal]
            want = (polarity ^ 1) if flip else polarity
            if required.setdefault(bit, want) != want:
                return None
        mask = 0
        value = 0
        for bit, want in required.items():
            mask |= bit
            if want:
                value |= bit
        return mask, value

    def compiled_evaluator(self, space: SignalSpace) -> PackedEvaluator:
        """Compile the gate into a packed next-state closure.

        The returned callable takes ``(packed_code, current_output)`` and
        returns the next output bit; it agrees with :meth:`next_value` on
        every complete code of ``space``.  AND/OR families reduce to one
        AND-plus-compare on the packed word; COMPLEX gates evaluate their
        cover through the shared compiled IR.
        """
        if self.kind == GateKind.COMPLEX:
            compiled = self.function.compiled(space)
            cubes = tuple((c.mask, c.value) for c in compiled.cubes)
            def complex_eval(packed: int, current: int) -> int:
                for mask, value in cubes:
                    if packed & mask == value:
                        return 1
                return 0
            return complex_eval
        if self.kind in (GateKind.AND, GateKind.NAND):
            ones = self._input_requirements(space)
            zero = 0 if self.kind == GateKind.AND else 1
            if ones is None:
                return lambda packed, current, _z=zero: _z
            mask, want = ones
            if self.kind == GateKind.AND:
                return lambda packed, current: int(packed & mask == want)
            return lambda packed, current: int(packed & mask != want)
        if self.kind in (GateKind.OR, GateKind.NOR):
            zeros = self._input_requirements(space, flip=True)
            if zeros is None:  # some input is always 1
                one = 1 if self.kind == GateKind.OR else 0
                return lambda packed, current, _o=one: _o
            mask, want = zeros
            if self.kind == GateKind.OR:
                return lambda packed, current: int(packed & mask != want)
            return lambda packed, current: int(packed & mask == want)
        if self.kind in (GateKind.BUF, GateKind.NOT):
            (signal, polarity), = self.inputs
            bit = 1 << space.position[signal]
            same = polarity if self.kind == GateKind.BUF else polarity ^ 1
            if same:
                return lambda packed, current: int(bool(packed & bit))
            return lambda packed, current: int(not packed & bit)
        # C / RS: two-input latches over effective values
        (s_sig, s_pol), (r_sig, r_pol) = self.inputs
        s_bit = 1 << space.position[s_sig]
        r_bit = 1 << space.position[r_sig]
        if self.kind == GateKind.C:
            def c_eval(packed: int, current: int) -> int:
                set_in = int(bool(packed & s_bit) == bool(s_pol))
                reset_in = int(bool(packed & r_bit) == bool(r_pol))
                return set_in if set_in == reset_in else current
            return c_eval
        if self.kind == GateKind.RS:
            def rs_eval(packed: int, current: int) -> int:
                set_in = bool(packed & s_bit) == bool(s_pol)
                reset_in = bool(packed & r_bit) == bool(r_pol)
                if set_in and not reset_in:
                    return 1
                if reset_in and not set_in:
                    return 0
                return current
            return rs_eval
        raise AssertionError(f"unknown gate kind {self.kind}")  # pragma: no cover

    def lane_test(self, space: SignalSpace) -> Optional[Tuple[int, int, int]]:
        """The gate as one ``(mask, value, flip)`` covering test.

        For the match-family kinds (AND/NAND/OR/NOR/BUF/NOT, including
        their degenerate constant forms) the next output is
        ``(packed & mask == value) ^ flip`` -- the shape
        :meth:`lane_evaluator` and the batched simulator sweep evaluate
        for a whole wavefront of codes in one lane comparison.  Returns
        ``None`` for the state-holding and SOP kinds (C, RS, COMPLEX),
        which need the current output or a multi-cube cover.
        """
        if self.kind in (GateKind.AND, GateKind.NAND):
            flip = 0 if self.kind == GateKind.AND else 1
            ones = self._input_requirements(space)
            if ones is None:  # unsatisfiable conjunction: constant 0 / 1
                return 0, 0, flip ^ 1
            return ones[0], ones[1], flip
        if self.kind in (GateKind.OR, GateKind.NOR):
            flip = 1 if self.kind == GateKind.OR else 0
            zeros = self._input_requirements(space, flip=True)
            if zeros is None:  # some input is always 1: constant 1 / 0
                return 0, 0, flip ^ 1
            return zeros[0], zeros[1], flip
        if self.kind in (GateKind.BUF, GateKind.NOT):
            (signal, polarity), = self.inputs
            bit = 1 << space.position[signal]
            flip = 0 if self.kind == GateKind.BUF else 1
            return bit, bit if polarity else 0, flip
        return None

    def lane_evaluator(self, space: SignalSpace):
        """Compile the gate into a whole-wavefront batch closure.

        The returned callable takes ``(kernel, code_rows, nrows,
        all_rows, cur_bits)`` -- a lane matrix of packed codes (one row
        per wavefront state, from ``kernel.pack_code_matrix``), the row
        count, the full row bitset and the bitset of rows whose current
        output is 1 -- and returns the bitset of rows whose *next*
        output is 1.  Row ``i`` always agrees with
        :meth:`compiled_evaluator` on code ``i``.
        """
        test = self.lane_test(space)
        if test is not None:
            mask, value, flip = test

            def match_eval(kernel, code_rows, nrows, all_rows, cur_bits):
                hit = kernel.match_rows(code_rows, mask, value, nrows)
                return all_rows ^ hit if flip else hit

            return match_eval
        if self.kind == GateKind.COMPLEX:
            compiled = self.function.compiled(space)

            def complex_eval(kernel, code_rows, nrows, all_rows, cur_bits):
                return compiled.covered_rows(code_rows, nrows, kernel)

            return complex_eval
        # C / RS: two-input latches over effective values
        (s_sig, s_pol), (r_sig, r_pol) = self.inputs
        s_bit = 1 << space.position[s_sig]
        r_bit = 1 << space.position[r_sig]
        s_val = s_bit if s_pol else 0
        r_val = r_bit if r_pol else 0
        if self.kind == GateKind.C:

            def c_eval(kernel, code_rows, nrows, all_rows, cur_bits):
                s_rows = kernel.match_rows(code_rows, s_bit, s_val, nrows)
                r_rows = kernel.match_rows(code_rows, r_bit, r_val, nrows)
                return (s_rows & r_rows) | (cur_bits & (s_rows ^ r_rows))

            return c_eval
        if self.kind == GateKind.RS:

            def rs_eval(kernel, code_rows, nrows, all_rows, cur_bits):
                s_rows = kernel.match_rows(code_rows, s_bit, s_val, nrows)
                r_rows = kernel.match_rows(code_rows, r_bit, r_val, nrows)
                hold = all_rows ^ (s_rows ^ r_rows)
                return (s_rows & (all_rows ^ r_rows)) | (cur_bits & hold)

            return rs_eval
        raise AssertionError(f"unknown gate kind {self.kind}")  # pragma: no cover

    def rs_illegal_test(self, space: SignalSpace) -> Optional[Tuple[int, int]]:
        """Packed form of :meth:`rs_illegal`: S = R = 1 iff
        ``packed & mask == value``.  ``None`` for non-RS gates and for RS
        gates whose input wiring makes the overlap unsatisfiable.
        """
        if self.kind != GateKind.RS:
            return None
        return self._input_requirements(space)

    def rs_illegal(self, values: Mapping[str, int]) -> bool:
        """True when an RS latch sees S = R = 1 (forbidden input state)."""
        if self.kind != GateKind.RS:
            return False
        effective = [
            values[signal] if polarity else 1 - values[signal]
            for signal, polarity in self.inputs
        ]
        return effective[0] == 1 and effective[1] == 1

    def describe(self) -> str:
        body = ", ".join(
            signal if polarity else f"{signal}'" for signal, polarity in self.inputs
        )
        return f"{self.output} = {self.kind.value.upper()}({body})"
