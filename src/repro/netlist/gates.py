"""The basic gate library (Sec. III of the paper).

Gates are AND, OR (with optional inversion bubbles on inputs), NOT/BUF,
the two-input Muller C-element and the RS latch.  Input inversions on
AND/OR gates are part of the gate (the paper justifies this with the
``d_inv^max < D_sn^min`` delay argument); NOT as a *standalone* gate is
available for explicit experiments with separate inverters.

Each gate computes a next output value from its (polarity-adjusted)
input values and its current output; under the pure unbounded gate delay
model the output is *excited* whenever next != current, and the delay
before it fires is arbitrary.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Mapping, Tuple


class GateKind(Enum):
    AND = "and"
    OR = "or"
    NOR = "nor"
    NAND = "nand"
    NOT = "not"
    BUF = "buf"
    C = "c"  # Muller C-element: inputs (set side, reset side)
    RS = "rs"  # behavioural set/reset latch: inputs (S, R), hold on S=R
    COMPLEX = "complex"  # one atomic gate computing an arbitrary SOP


@dataclass(frozen=True)
class Gate:
    """One gate: ``output = kind(inputs)``.

    ``inputs`` is a tuple of ``(signal, polarity)`` pairs; polarity 0
    inverts the input (a bubble).  For C and RS gates the tuple must have
    exactly two entries: the set-side input first, the reset-side second.
    For the C-element the conventional instantiation ``a = C(Sa, Ra')``
    is ``Gate("a", GateKind.C, (("Sa", 1), ("Ra", 0)))``.
    """

    output: str
    kind: GateKind
    inputs: Tuple[Tuple[str, int], ...]
    #: for COMPLEX gates: the Boolean function as a Cover over the fanin
    #: signals (evaluated on raw values; input polarities are part of the
    #: cover's literals, not of the pin list)
    function: object = None

    def __post_init__(self) -> None:
        if self.kind == GateKind.COMPLEX and self.function is None:
            raise ValueError("complex gate needs a function cover")
        if self.kind in (GateKind.NOT, GateKind.BUF) and len(self.inputs) != 1:
            raise ValueError(f"{self.kind.value} gate needs exactly one input")
        if self.kind in (GateKind.C, GateKind.RS) and len(self.inputs) != 2:
            raise ValueError(f"{self.kind.value} element needs exactly two inputs")
        if self.kind in (GateKind.AND, GateKind.OR, GateKind.NOR, GateKind.NAND) and not self.inputs:
            raise ValueError(f"{self.kind.value} gate needs at least one input")
        for _, polarity in self.inputs:
            if polarity not in (0, 1):
                raise ValueError("input polarity must be 0 or 1")

    @property
    def fanin_signals(self) -> Tuple[str, ...]:
        return tuple(signal for signal, _ in self.inputs)

    def next_value(self, values: Mapping[str, int], current: int) -> int:
        """The gate's next output under the given input values."""
        if self.kind == GateKind.COMPLEX:
            point = {signal: values[signal] for signal, _ in self.inputs}
            return int(self.function.covers(point))
        effective = [
            values[signal] if polarity else 1 - values[signal]
            for signal, polarity in self.inputs
        ]
        if self.kind == GateKind.AND:
            return int(all(effective))
        if self.kind == GateKind.OR:
            return int(any(effective))
        if self.kind == GateKind.NOR:
            return int(not any(effective))
        if self.kind == GateKind.NAND:
            return int(not all(effective))
        if self.kind == GateKind.BUF:
            return effective[0]
        if self.kind == GateKind.NOT:
            return 1 - effective[0]
        if self.kind == GateKind.C:
            first, second = effective
            if first == second:
                return first
            return current
        if self.kind == GateKind.RS:
            set_in, reset_in = effective
            if set_in and not reset_in:
                return 1
            if reset_in and not set_in:
                return 0
            return current  # both idle -> hold; both active -> hold (illegal)
        raise AssertionError(f"unknown gate kind {self.kind}")  # pragma: no cover

    def rs_illegal(self, values: Mapping[str, int]) -> bool:
        """True when an RS latch sees S = R = 1 (forbidden input state)."""
        if self.kind != GateKind.RS:
            return False
        effective = [
            values[signal] if polarity else 1 - values[signal]
            for signal, polarity in self.inputs
        ]
        return effective[0] == 1 and effective[1] == 1

    def describe(self) -> str:
        body = ", ".join(
            signal if polarity else f"{signal}'" for signal, polarity in self.inputs
        )
        return f"{self.output} = {self.kind.value.upper()}({body})"
