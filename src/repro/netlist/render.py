"""Rendering of netlists and state graphs to external formats.

* :func:`netlist_to_verilog` -- structural Verilog of the synthesised
  circuit.  AND/OR/NOT/BUF map to primitives; the Muller C-element, the
  RS latch and complex gates are emitted as behavioural modules (they
  are the architecture's atomic basic elements).
* :func:`netlist_to_dot` / :func:`sg_to_dot` -- Graphviz views of the
  circuit and of a state graph (excited signals per state shown in the
  paper's asterisk style).
"""

from __future__ import annotations

from typing import List

from repro.boolean.sop import format_cover
from repro.netlist.gates import GateKind
from repro.netlist.netlist import Netlist
from repro.sg.graph import StateGraph


def _verilog_id(name: str) -> str:
    """Sanitise a signal name into a Verilog identifier."""
    cleaned = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "n" + cleaned
    return cleaned


_C_ELEMENT_MODULE = """\
module c_element(output reg q, input a, input b);
  initial q = 1'b0;
  always @(a or b) if (a == b) q <= a;
endmodule
"""

_RS_LATCH_MODULE = """\
module rs_latch(output reg q, input s, input r);
  initial q = 1'b0;
  always @(s or r) begin
    if (s & ~r) q <= 1'b1;
    else if (r & ~s) q <= 1'b0;
  end
endmodule
"""


def netlist_to_verilog(netlist: Netlist) -> str:
    """Structural Verilog for the netlist (self-contained source)."""
    name = _verilog_id(netlist.name)
    inputs = [_verilog_id(s) for s in netlist.inputs]
    outputs = [_verilog_id(s) for s in netlist.interface_outputs]
    internal = [
        _verilog_id(s)
        for s in netlist.gates
        if s not in netlist.interface_outputs
    ]

    lines: List[str] = []
    uses_c = any(g.kind == GateKind.C for g in netlist.gates.values())
    uses_rs = any(g.kind == GateKind.RS for g in netlist.gates.values())
    if uses_c:
        lines.append(_C_ELEMENT_MODULE)
    if uses_rs:
        lines.append(_RS_LATCH_MODULE)

    ports = ", ".join([f"input {s}" for s in inputs] + [f"output {s}" for s in outputs])
    lines.append(f"module {name}({ports});")
    for wire in internal:
        lines.append(f"  wire {wire};")

    instance = 0
    for out, gate in netlist.gates.items():
        out_id = _verilog_id(out)
        pins = []
        for signal, polarity in gate.inputs:
            pin = _verilog_id(signal)
            pins.append(pin if polarity else f"~{pin}")
        instance += 1
        if gate.kind == GateKind.AND:
            lines.append(f"  assign {out_id} = {' & '.join(pins)};")
        elif gate.kind == GateKind.OR:
            lines.append(f"  assign {out_id} = {' | '.join(pins)};")
        elif gate.kind == GateKind.NOR:
            lines.append(f"  assign {out_id} = ~({' | '.join(pins)});")
        elif gate.kind == GateKind.NAND:
            lines.append(f"  assign {out_id} = ~({' & '.join(pins)});")
        elif gate.kind == GateKind.BUF:
            lines.append(f"  assign {out_id} = {pins[0]};")
        elif gate.kind == GateKind.NOT:
            lines.append(f"  assign {out_id} = ~{pins[0]};")
        elif gate.kind == GateKind.C:
            lines.append(
                f"  c_element u{instance}(.q({out_id}), .a({pins[0]}), .b({pins[1]}));"
            )
        elif gate.kind == GateKind.RS:
            lines.append(
                f"  rs_latch u{instance}(.q({out_id}), .s({pins[0]}), .r({pins[1]}));"
            )
        elif gate.kind == GateKind.COMPLEX:
            lines.append(
                f"  // complex gate: {out} = {format_cover(gate.function)}"
            )
            terms = []
            for cube in gate.function:
                literals = [
                    (_verilog_id(s) if v else f"~{_verilog_id(s)}")
                    for s, v in cube.literals
                ]
                terms.append("(" + " & ".join(literals) + ")" if literals else "1'b1")
            lines.append(f"  assign {out_id} = {' | '.join(terms)};")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def netlist_to_dot(netlist: Netlist) -> str:
    """Graphviz digraph of the circuit structure."""
    lines = [f'digraph "{netlist.name}" {{', "  rankdir=LR;"]
    for signal in netlist.inputs:
        lines.append(f'  "{signal}" [shape=triangle, label="{signal}"];')
    for out, gate in netlist.gates.items():
        shape = {
            GateKind.C: "doublecircle",
            GateKind.RS: "doublecircle",
            GateKind.COMPLEX: "box3d",
        }.get(gate.kind, "box")
        label = f"{gate.kind.value.upper()}\\n{out}"
        lines.append(f'  "{out}" [shape={shape}, label="{label}"];')
        for signal, polarity in gate.inputs:
            style = "" if polarity else " [arrowhead=odot]"
            lines.append(f'  "{signal}" -> "{out}"{style};')
    lines.append("}")
    return "\n".join(lines) + "\n"


def sg_to_dot(sg: StateGraph) -> str:
    """Graphviz digraph of a state graph, asterisk-labelled states."""
    lines = [f'digraph "{sg.name}" {{']

    def label(state) -> str:
        excited = {
            sg.signal_position(s) for s in sg.excited_signals(state)
        }
        parts = []
        for i, bit in enumerate(sg.code(state)):
            parts.append(str(bit) + ("*" if i in excited else ""))
        return "".join(parts)

    for state in sorted(sg.states, key=str):
        shape = "doublecircle" if state == sg.initial else "circle"
        lines.append(f'  "{state}" [shape={shape}, label="{label(state)}"];')
    for source, event, target in sorted(
        sg.arcs(), key=lambda a: (str(a[0]), str(a[1]), str(a[2]))
    ):
        lines.append(f'  "{source}" -> "{target}" [label="{event}"];')
    lines.append("}")
    return "\n".join(lines) + "\n"
