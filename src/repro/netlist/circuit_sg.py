"""Composition of a netlist with its specification environment.

The specification state graph is used as a *mirror* (the environment):
it fires input transitions exactly when the specification allows them
and observes the circuit's interface outputs.  Every gate output of the
netlist -- AND, OR, latch, wire -- is a first-class signal of the
composed **circuit-level state graph**, which is precisely the object
the paper's correctness notion speaks about: the implementation is
hazard-free under the pure unbounded gate delay model iff this graph is
output semi-modular by all gate signals (Sec. III).

Composition rules, from a composed state ``(spec_state, values)``:

* an **input** transition enabled in ``spec_state`` may fire: the input
  bit flips and the spec advances;
* a **gate** whose next-state function disagrees with its current output
  is excited and may fire; if the gate drives an interface output, the
  spec must advance over that edge -- if the spec has no such arc the
  circuit violates the specification (a *conformance failure*, recorded
  and not expanded further).

The exploration runs on the compiled IR: the netlist is compiled once
into a :class:`~repro.netlist.netlist.NetlistPlan` (one packed-code
closure per gate over the interned
:class:`~repro.boolean.compiled.SignalSpace`) and every circuit state is
a single big int on the hot path.  State identifiers and arc/diagnostic
orderings are exactly those of the original per-literal dict evaluation,
which :func:`build_circuit_state_graph_reference` retains as the
executable reference semantics (differential parity tests and the
``hazard-sim`` benchmark compare the two paths).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.netlist.netlist import Netlist, NetlistPlan
from repro.sg.events import SignalEvent
from repro.sg.graph import State, StateGraph


class CompositionError(RuntimeError):
    pass


@dataclass
class Composition:
    """The result of composing a netlist with its specification."""

    sg: StateGraph
    #: composed states where an excited interface output has no spec arc
    conformance_failures: List[Tuple[State, str]] = field(default_factory=list)
    #: composed states where an RS latch sees S = R = 1
    rs_violations: List[Tuple[State, str]] = field(default_factory=list)
    truncated: bool = False
    #: BFS parent pointers: state -> (parent state, event fired)
    parents: Dict[State, Tuple[State, SignalEvent]] = field(default_factory=dict)

    def trace_to(self, state: State) -> List[SignalEvent]:
        """The event sequence from reset to ``state`` along BFS parents."""
        events: List[SignalEvent] = []
        current = state
        while current in self.parents:
            current, event = self.parents[current]
            events.append(event)
        events.reverse()
        return events


def _settled_initial_values(netlist: Netlist, spec: StateGraph) -> Dict[str, int]:
    values: Dict[str, int] = {}
    initial_code = spec.code_dict(spec.initial)
    for signal in netlist.inputs:
        values[signal] = initial_code[signal]
    for name in sorted(netlist.state_holding_signals()):
        if name in initial_code:
            values[name] = initial_code[name]
        elif name in netlist.initial_hints:
            source, polarity = netlist.initial_hints[name]
            if source not in initial_code:
                raise CompositionError(
                    f"initial hint for {name!r} references unknown {source!r}"
                )
            values[name] = (
                initial_code[source] if polarity else 1 - initial_code[source]
            )
        else:
            raise CompositionError(
                f"state-holding gate {name!r} has no initial value in the "
                f"specification and no initial hint"
            )
    values = netlist.settle(values)
    for signal in netlist.interface_outputs:
        if values[signal] != initial_code[signal]:
            raise CompositionError(
                f"interface output {signal!r} settles to {values[signal]} "
                f"but the specification starts at {initial_code[signal]}"
            )
    return values


def _check_interfaces(netlist: Netlist, spec: StateGraph) -> None:
    missing = set(spec.inputs) - set(netlist.inputs)
    if missing:
        raise CompositionError(f"netlist lacks specification inputs {sorted(missing)}")
    for signal in spec.non_inputs:
        if signal not in netlist.gates:
            raise CompositionError(f"netlist does not drive output {signal!r}")


def build_circuit_state_graph(
    netlist: Netlist,
    spec: StateGraph,
    max_states: int = 500_000,
) -> Composition:
    """Explore the closed loop of circuit and environment.

    Returns the circuit-level state graph over all netlist signals plus
    the conformance/RS diagnostics gathered during exploration.  The
    circuit side evaluates entirely on packed codes through the compiled
    plan; results are identical (state ids, arc order, diagnostics) to
    :func:`build_circuit_state_graph_reference`.
    """
    _check_interfaces(netlist, spec)

    plan = NetlistPlan(netlist)
    space = plan.space
    signal_order = netlist.signals
    initial_values = _settled_initial_values(netlist, spec)
    initial = (spec.initial, tuple(initial_values[s] for s in signal_order))
    spec_inputs = spec.inputs
    spec_non_inputs = spec.non_inputs
    position = space.position
    unpack_vector = space.unpack_vector

    codes: Dict[State, Tuple[int, ...]] = {initial: initial[1]}
    arcs: List[Tuple[State, SignalEvent, State]] = []
    failures: List[Tuple[State, str]] = []
    rs_violations: List[Tuple[State, str]] = []
    parents: Dict[State, Tuple[State, SignalEvent]] = {}
    queue: List[State] = [initial]
    seen: Set[State] = {initial}
    truncated = False
    head = 0

    while head < len(queue):
        current = queue[head]
        head += 1
        spec_state, vector = current
        packed = space.pack_vector(vector)
        successors: List[Tuple[SignalEvent, State]] = []

        # environment moves
        for event, spec_target in spec.arcs_from(spec_state):
            if event.signal not in spec_inputs:
                continue
            bit = 1 << position[event.signal]
            new_packed = (packed | bit) if event.value_after else (packed & ~bit)
            successors.append((event, (spec_target, unpack_vector(new_packed))))

        # RS input-overlap diagnostics (S = R = 1)
        for name, mask, value in plan.rs_checks:
            if packed & mask == value:
                rs_violations.append((current, name))

        # circuit moves
        for name, out_bit, evaluate in plan.items:
            current_bit = 1 if packed & out_bit else 0
            if evaluate(packed, current_bit) == current_bit:
                continue
            event = SignalEvent(name, -1 if current_bit else +1)
            new_spec_state = spec_state
            if name in spec_non_inputs:
                spec_targets = spec.fire(spec_state, event)
                if not spec_targets:
                    failures.append((current, name))
                    continue
                new_spec_state = spec_targets[0]
            successors.append(
                (event, (new_spec_state, unpack_vector(packed ^ out_bit)))
            )

        for event, target in successors:
            if target not in seen:
                if len(seen) >= max_states:
                    truncated = True
                    continue
                seen.add(target)
                codes[target] = target[1]
                parents[target] = (current, event)
                queue.append(target)
            if target in seen:
                arcs.append((current, event, target))

    sg = StateGraph(
        signal_order,
        netlist.inputs,
        codes,
        arcs,
        initial,
        name=f"{netlist.name}|{spec.name}",
    )
    return Composition(
        sg=sg,
        conformance_failures=failures,
        rs_violations=rs_violations,
        truncated=truncated,
        parents=parents,
    )


def build_circuit_state_graph_batched(
    netlist: Netlist,
    spec: StateGraph,
    max_states: int = 500_000,
    kernel=None,
) -> Composition:
    """The composition BFS with whole-wavefront gate evaluation.

    Identical result (state ids, arc order, diagnostics, truncation) to
    :func:`build_circuit_state_graph`; the difference is purely in how
    gate excitation is computed.  The queue is consumed in waves -- the
    snapshot of currently known unexplored states -- and every gate
    scores the *entire wave* in one lane sweep over its
    :meth:`~repro.netlist.gates.Gate.lane_evaluator` masks (numpy
    ``uint64`` lanes under the ``fast`` extra, the pure-python word
    kernel otherwise), instead of one compiled-closure call per
    (state, gate) pair.  Wave processing order equals queue order, so
    the traversal is the same FIFO BFS as the scalar path.
    """
    from repro.sg import lanes

    _check_interfaces(netlist, spec)
    if kernel is None:
        kernel = lanes.get_kernel()

    plan = NetlistPlan(netlist)
    space = plan.space
    width = space.width
    signal_order = netlist.signals
    initial_values = _settled_initial_values(netlist, spec)
    initial = (spec.initial, tuple(initial_values[s] for s in signal_order))
    spec_inputs = spec.inputs
    spec_non_inputs = spec.non_inputs
    position = space.position
    pack_vector = space.pack_vector
    unpack_vector = space.unpack_vector
    lane_items = plan.lane_items()
    rs_checks = plan.rs_checks

    codes: Dict[State, Tuple[int, ...]] = {initial: initial[1]}
    arcs: List[Tuple[State, SignalEvent, State]] = []
    failures: List[Tuple[State, str]] = []
    rs_violations: List[Tuple[State, str]] = []
    parents: Dict[State, Tuple[State, SignalEvent]] = {}
    queue: List[State] = [initial]
    seen: Set[State] = {initial}
    truncated = False
    head = 0

    while head < len(queue):
        wave = queue[head:]
        head = len(queue)
        nrows = len(wave)
        wave_codes = [pack_vector(state[1]) for state in wave]
        code_rows = kernel.pack_code_matrix(wave_codes, width)
        all_rows = (1 << nrows) - 1
        # one sweep per gate scores the whole wave: rows whose output is
        # currently 1, rows whose next output differs (excited rows)
        gate_rows: List[Tuple[str, int, int]] = []
        for name, out_bit, evaluate in lane_items:
            cur_rows = kernel.match_rows(code_rows, out_bit, out_bit, nrows)
            next_rows = evaluate(kernel, code_rows, nrows, all_rows, cur_rows)
            gate_rows.append((name, out_bit, next_rows ^ cur_rows))
        rs_rows = [
            (name, kernel.match_rows(code_rows, mask, value, nrows))
            for name, mask, value in rs_checks
        ]

        for row, current in enumerate(wave):
            spec_state = current[0]
            packed = wave_codes[row]
            row_bit = 1 << row
            successors: List[Tuple[SignalEvent, State]] = []

            # environment moves
            for event, spec_target in spec.arcs_from(spec_state):
                if event.signal not in spec_inputs:
                    continue
                bit = 1 << position[event.signal]
                new_packed = (packed | bit) if event.value_after else (packed & ~bit)
                successors.append(
                    (event, (spec_target, unpack_vector(new_packed)))
                )

            # RS input-overlap diagnostics (S = R = 1)
            for name, hits in rs_rows:
                if hits & row_bit:
                    rs_violations.append((current, name))

            # circuit moves, read off the per-gate excitation bitsets
            for name, out_bit, excited_rows in gate_rows:
                if not excited_rows & row_bit:
                    continue
                event = SignalEvent(name, -1 if packed & out_bit else +1)
                new_spec_state = spec_state
                if name in spec_non_inputs:
                    spec_targets = spec.fire(spec_state, event)
                    if not spec_targets:
                        failures.append((current, name))
                        continue
                    new_spec_state = spec_targets[0]
                successors.append(
                    (event, (new_spec_state, unpack_vector(packed ^ out_bit)))
                )

            for event, target in successors:
                if target not in seen:
                    if len(seen) >= max_states:
                        truncated = True
                        continue
                    seen.add(target)
                    codes[target] = target[1]
                    parents[target] = (current, event)
                    queue.append(target)
                if target in seen:
                    arcs.append((current, event, target))

    sg = StateGraph(
        signal_order,
        netlist.inputs,
        codes,
        arcs,
        initial,
        name=f"{netlist.name}|{spec.name}",
    )
    return Composition(
        sg=sg,
        conformance_failures=failures,
        rs_violations=rs_violations,
        truncated=truncated,
        parents=parents,
    )


def build_circuit_state_graph_reference(
    netlist: Netlist,
    spec: StateGraph,
    max_states: int = 500_000,
) -> Composition:
    """The original per-literal dict evaluation of the composition.

    Retained as the executable reference semantics for
    :func:`build_circuit_state_graph`: every gate is evaluated through
    :meth:`~repro.netlist.gates.Gate.next_value` over a ``{signal:
    value}`` dict.  The differential parity tests and the ``hazard-sim``
    benchmark section run both paths and require identical compositions.
    """
    _check_interfaces(netlist, spec)

    signal_order = netlist.signals
    initial_values = _settled_initial_values(netlist, spec)
    initial = (spec.initial, tuple(initial_values[s] for s in signal_order))

    def as_dict(vector: Tuple[int, ...]) -> Dict[str, int]:
        return dict(zip(signal_order, vector))

    codes: Dict[State, Tuple[int, ...]] = {initial: initial[1]}
    arcs: List[Tuple[State, SignalEvent, State]] = []
    failures: List[Tuple[State, str]] = []
    rs_violations: List[Tuple[State, str]] = []
    parents: Dict[State, Tuple[State, SignalEvent]] = {}
    queue: List[State] = [initial]
    seen: Set[State] = {initial}
    truncated = False
    head = 0

    while head < len(queue):
        current = queue[head]
        head += 1
        spec_state, vector = current
        values = as_dict(vector)
        successors: List[Tuple[SignalEvent, State]] = []

        # environment moves
        for event, spec_target in spec.arcs_from(spec_state):
            if event.signal not in spec.inputs:
                continue
            new_values = dict(values)
            new_values[event.signal] = event.value_after
            successors.append(
                (event, (spec_target, tuple(new_values[s] for s in signal_order)))
            )

        # circuit moves
        for name, gate in netlist.gates.items():
            if gate.rs_illegal(values):
                rs_violations.append((current, name))
            next_value = gate.next_value(values, values[name])
            if next_value == values[name]:
                continue
            event = SignalEvent(name, +1 if next_value == 1 else -1)
            new_spec_state = spec_state
            if name in spec.non_inputs:
                spec_targets = spec.fire(spec_state, event)
                if not spec_targets:
                    failures.append((current, name))
                    continue
                new_spec_state = spec_targets[0]
            new_values = dict(values)
            new_values[name] = next_value
            successors.append(
                (event, (new_spec_state, tuple(new_values[s] for s in signal_order)))
            )

        for event, target in successors:
            if target not in seen:
                if len(seen) >= max_states:
                    truncated = True
                    continue
                seen.add(target)
                codes[target] = target[1]
                parents[target] = (current, event)
                queue.append(target)
            if target in seen:
                arcs.append((current, event, target))

    sg = StateGraph(
        signal_order,
        netlist.inputs,
        codes,
        arcs,
        initial,
        name=f"{netlist.name}|{spec.name}",
    )
    return Composition(
        sg=sg,
        conformance_failures=failures,
        rs_violations=rs_violations,
        truncated=truncated,
        parents=parents,
    )
