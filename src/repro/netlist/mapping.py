"""Naive technology mapping: fanin-bounded decomposition of SOP gates.

A real standard library bounds gate *fan-in*, so wide MC cubes must be
decomposed into trees of smaller gates.  This module performs the naive
balanced-tree decomposition -- and thereby demonstrates (as an ablation,
alongside ``RS-NOR`` and ``C-INV``) why the paper treats each cube as
**one** AND gate:

The MC discipline makes the *cube output* monotonic, not its partial
products.  An internal tree node computes a sub-cube (say ``a.b`` of
``a.b.d'``), which is *not* a monotonous cover of anything: it can rise
on traces where the full cube stays 0 and then be disabled by an input
change -- an unacknowledged transition.  The test-suite shows the
decomposed Figure-3 implementation is genuinely hazardous under
unbounded delays, while Monte-Carlo simulation with *fast internal
nodes* (the realistic relational assumption, as for the input inverters
of Section III) stays clean.  Correct speed-independent decomposition
needs acknowledged intermediate signals and is later work
(Kondratyev et al. 1998, Burns' technology mapping); out of scope here.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.netlist.gates import Gate, GateKind
from repro.netlist.netlist import Netlist


def decompose_fanin(netlist: Netlist, max_fanin: int = 2) -> Netlist:
    """A new netlist with every AND/OR gate's fan-in bounded.

    Wide AND (OR) gates become balanced trees of ``max_fanin``-input
    AND (OR) gates; input inversion bubbles stay on the leaf level.
    Latches, wires and complex gates are copied unchanged (the
    C-element/RS latch are 2-input already; complex gates are atomic by
    definition).
    """
    if max_fanin < 2:
        raise ValueError("max_fanin must be at least 2")
    mapped = Netlist(
        name=f"{netlist.name}_fanin{max_fanin}",
        inputs=netlist.inputs,
        interface_outputs=netlist.interface_outputs,
    )
    mapped.initial_hints.update(netlist.initial_hints)
    mapped.declared_state_holding.update(netlist.declared_state_holding)

    counter = [0]

    def tree(
        kind: GateKind, pins: List[Tuple[str, int]], output: str
    ) -> None:
        """Emit a balanced ``kind`` tree computing AND/OR of ``pins``."""
        level = list(pins)
        while len(level) > max_fanin:
            next_level: List[Tuple[str, int]] = []
            for start in range(0, len(level), max_fanin):
                chunk = level[start : start + max_fanin]
                if len(chunk) == 1:
                    next_level.append(chunk[0])
                    continue
                counter[0] += 1
                node = f"{output}_t{counter[0]}"
                mapped.add_gate(Gate(node, kind, tuple(chunk)))
                next_level.append((node, 1))
            level = next_level
        mapped.add_gate(Gate(output, kind, tuple(level)))

    for name, gate in netlist.gates.items():
        if gate.kind in (GateKind.AND, GateKind.OR) and len(gate.inputs) > max_fanin:
            tree(gate.kind, list(gate.inputs), name)
        else:
            mapped.add_gate(gate)
    mapped.fanin_closure_check()
    return mapped


def fanin_violations(netlist: Netlist, max_fanin: int) -> Dict[str, int]:
    """Gates whose fan-in exceeds the bound (name -> fan-in)."""
    return {
        name: len(gate.inputs)
        for name, gate in netlist.gates.items()
        if gate.kind in (GateKind.AND, GateKind.OR, GateKind.NAND, GateKind.NOR)
        and len(gate.inputs) > max_fanin
    }
