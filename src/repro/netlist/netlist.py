"""Netlists and construction from a synthesised implementation.

The standard structure (Fig. 2) instantiates, per non-input signal ``a``:

* one AND gate per cube of ``Sa`` and of ``Ra`` (cubes with a single
  literal need no AND gate -- the literal wires straight through),
* one OR gate per excitation function with two or more product terms,
* a Muller C-element ``a = C(Sa, Ra')`` (standard C-implementation) or
  an RS latch ``a = RS(Sa, Ra)`` (standard RS-implementation).

Gate sharing (Sec. VI) falls out naturally: identical cubes map to one
AND gate instance which may feed several OR gates.

A network that degenerates to a wire (``Sa = x``, ``Ra = x'``) becomes a
BUF/NOT gate, reproducing the paper's ``d = x`` in equations (2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.boolean.compiled import SignalSpace
from repro.boolean.cube import Cube
from repro.core.synthesis import Implementation
from repro.netlist.gates import Gate, GateKind, PackedEvaluator


class NetlistError(ValueError):
    pass


class NetlistPlan:
    """Compiled evaluation plan: every gate as a packed-code closure.

    Built once per analysis (BFS composition, discrete-event run) against
    the netlist's interned :class:`SignalSpace`; the per-gate closures
    come from :meth:`repro.netlist.gates.Gate.compiled_evaluator`, so the
    whole circuit evaluates on packed ints with no per-literal dict
    lookups.  ``items`` preserves the netlist's gate insertion order --
    composition traversal order (and therefore every serialized artifact)
    depends on it.
    """

    __slots__ = (
        "netlist",
        "space",
        "items",
        "rs_checks",
        "input_bits",
        "_lane_items",
    )

    def __init__(self, netlist: "Netlist", space: Optional[SignalSpace] = None):
        if space is None:
            space = SignalSpace.of(netlist.signals)
        self.netlist = netlist
        self.space = space
        #: (gate name, output bit, evaluator) in gate insertion order
        try:
            self.items: Tuple[Tuple[str, int, PackedEvaluator], ...] = tuple(
                (name, 1 << space.position[name], gate.compiled_evaluator(space))
                for name, gate in netlist.gates.items()
            )
        except KeyError as error:
            raise NetlistError(
                f"gate reads a signal outside the netlist: {error}"
            ) from error
        #: (gate name, mask, value) per RS gate with a satisfiable S=R=1
        self.rs_checks: Tuple[Tuple[str, int, int], ...] = tuple(
            (name, test[0], test[1])
            for name, gate in netlist.gates.items()
            for test in (gate.rs_illegal_test(space),)
            if test is not None
        )
        self.input_bits: Dict[str, int] = {
            name: 1 << space.position[name] for name in netlist.inputs
        }
        self._lane_items: Optional[Tuple[Tuple[str, int, object], ...]] = None

    def lane_items(self) -> Tuple[Tuple[str, int, object], ...]:
        """``(name, output bit, batch evaluator)`` per gate, lazily built.

        The evaluators come from
        :meth:`repro.netlist.gates.Gate.lane_evaluator` and score a
        whole wavefront of packed codes per call; order matches
        :attr:`items` (gate insertion order), which the batched BFS
        relies on for arc-order parity with the scalar path.
        """
        if self._lane_items is None:
            space = self.space
            self._lane_items = tuple(
                (name, 1 << space.position[name], gate.lane_evaluator(space))
                for name, gate in self.netlist.gates.items()
            )
        return self._lane_items

    def pack(self, values: Dict[str, int]) -> int:
        return self.space.pack(values)

    def unpack_vector(self, packed: int) -> Tuple[int, ...]:
        return self.space.unpack_vector(packed)


@dataclass
class Netlist:
    """A gate-level circuit.

    ``inputs`` are the primary inputs; every other signal is the output
    of exactly one gate.  ``interface_outputs`` names the gates whose
    outputs are the specification's non-input signals (latch/wire
    outputs); remaining gates are internal logic.
    """

    name: str
    inputs: Tuple[str, ...]
    gates: Dict[str, Gate] = field(default_factory=dict)
    interface_outputs: Tuple[str, ...] = ()
    #: gate output -> (spec signal, polarity): initial value derivable
    #: from the specification (used for cross-coupled latch rails)
    initial_hints: Dict[str, Tuple[str, int]] = field(default_factory=dict)
    #: gate outputs declared state-holding by construction (latch rails
    #: built from plain gates, e.g. cross-coupled NOR pairs)
    declared_state_holding: Set[str] = field(default_factory=set)

    def add_gate(self, gate: Gate) -> None:
        if gate.output in self.gates or gate.output in self.inputs:
            raise NetlistError(f"signal {gate.output!r} already driven")
        self.gates[gate.output] = gate

    @property
    def signals(self) -> Tuple[str, ...]:
        return self.inputs + tuple(self.gates)

    def fanin_closure_check(self) -> None:
        """Every gate input must be a primary input or another gate."""
        known = set(self.signals)
        for gate in self.gates.values():
            missing = set(gate.fanin_signals) - known
            if missing:
                raise NetlistError(
                    f"gate {gate.output!r} reads undriven signals {sorted(missing)}"
                )

    def state_holding_signals(self) -> Set[str]:
        """Gates whose output holds state: latches plus any gate on a
        combinational feedback loop (e.g. cross-coupled NOR pairs)."""
        holding = {
            name
            for name, gate in self.gates.items()
            if gate.kind in (GateKind.C, GateKind.RS)
        }
        holding |= self.declared_state_holding & set(self.gates)
        comb = {n: g for n, g in self.gates.items() if n not in holding}
        # a combinational gate holds state iff it lies on a feedback cycle
        # within the combinational subgraph: find SCCs (iterative Tarjan)
        index_counter = [0]
        indices: Dict[str, int] = {}
        lowlink: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []

        def strongconnect(root: str) -> None:
            work = [(root, iter(
                [f for f in comb[root].fanin_signals if f in comb]
            ))]
            indices[root] = lowlink[root] = index_counter[0]
            index_counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, successors = work[-1]
                advanced = False
                for succ in successors:
                    if succ not in indices:
                        indices[succ] = lowlink[succ] = index_counter[0]
                        index_counter[0] += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append(
                            (succ, iter([f for f in comb[succ].fanin_signals if f in comb]))
                        )
                        advanced = True
                        break
                    if succ in on_stack:
                        lowlink[node] = min(lowlink[node], indices[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == indices[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.remove(member)
                        component.append(member)
                        if member == node:
                            break
                    self_loop = node in comb[node].fanin_signals
                    if len(component) > 1 or self_loop:
                        holding.update(component)

        for name in sorted(comb):
            if name not in indices:
                strongconnect(name)
        return holding

    def topological_combinational_order(self) -> List[str]:
        """Acyclic combinational gates in dependency order.

        State-holding gates (latches, feedback loops) are treated as
        fixed sources and never appear in the returned order.
        """
        holding = self.state_holding_signals()
        comb = {
            name: gate
            for name, gate in self.gates.items()
            if name not in holding
        }
        order: List[str] = []
        done: Set[str] = set()

        def visit(name: str) -> None:
            if name in done or name not in comb:
                return
            done.add(name)
            for fanin in comb[name].fanin_signals:
                visit(fanin)
            order.append(name)

        for name in sorted(comb):
            visit(name)
        # `done` marking before recursion keeps this terminating even on
        # malformed inputs; cycles cannot occur among non-holding gates.
        return order

    def settle(self, values: Dict[str, int]) -> Dict[str, int]:
        """Evaluate acyclic combinational gates given input, latch and
        feedback-loop values."""
        result = dict(values)
        for name in self.topological_combinational_order():
            gate = self.gates[name]
            result[name] = gate.next_value(result, result.get(name, 0))
        return result

    def gate_count(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for gate in self.gates.values():
            counts[gate.kind.value] = counts.get(gate.kind.value, 0) + 1
        return counts

    def describe(self) -> str:
        lines = [f"# netlist {self.name}: inputs {', '.join(self.inputs)}"]
        lines += [gate.describe() for gate in self.gates.values()]
        return "\n".join(lines)


def _literal_source(
    netlist: Netlist, cube: Cube, and_cache: Dict[Cube, str], prefix: str
) -> Tuple[str, int]:
    """The signal (and polarity) presenting a cube to an OR/latch input.

    Multi-literal cubes get (or reuse) an AND gate; single-literal cubes
    wire the literal through with its polarity.
    """
    if len(cube) == 1:
        (signal, value), = cube.literals
        return signal, value
    if cube not in and_cache:
        gate_name = f"{prefix}{len(and_cache)}"
        netlist.add_gate(
            Gate(gate_name, GateKind.AND, tuple(cube.literals))
        )
        and_cache[cube] = gate_name
    return and_cache[cube], 1


def netlist_from_implementation(
    impl: Implementation, style: str = "C", name: Optional[str] = None
) -> Netlist:
    """Instantiate the standard C- or RS-implementation of Fig. 2.

    ``style`` selects the restoring element:

    * ``"C"`` -- Muller C-elements, ``a = C(Sa, Ra')`` (Fig. 2a);
    * ``"RS"`` -- atomic RS flip-flops, the paper's basic element
      (Fig. 2b).  The structure is dual-rail at the latch; the logic
      layer is identical, so the complementary rail is presented as an
      inversion bubble ("both implementation structures are essentially
      the same except that the latter is dual-rail encoded");
    * ``"RS-NOR"`` -- an *ablation* style decomposing each RS flip-flop
      into a discrete cross-coupled NOR pair with both rails as
      independent delayed gates.  This is strictly harder than the
      paper's model and exhibits rail races MC does not govern -- see
      ``benchmarks/bench_ablation_latches.py``.
    * ``"C-INV"`` -- the C structure with every inverted literal realised
      as a *separate inverter gate* (one shared inverter per signal).
      The paper's Section III warns that this breaks speed independence
      under unbounded delays, and is safe again under the relational
      bound ``d_inv^max < D_sn^min`` -- both claims are exercised in
      ``benchmarks/bench_ablation_inverters.py``.
    """
    if style not in ("C", "RS", "RS-NOR", "C-INV"):
        raise NetlistError(f"unknown style {style!r}")
    explicit_inverters = style == "C-INV"
    if explicit_inverters:
        style = "C"
    sg = impl.sg
    netlist = Netlist(
        name=name or f"{sg.name}_{style.lower()}impl",
        inputs=tuple(s for s in sg.signals if s in sg.inputs),
        interface_outputs=tuple(s for s in sg.signals if s not in sg.inputs),
    )
    and_cache: Dict[Cube, str] = {}

    # Wires first, then full networks, so shared AND gates see all users.
    for signal in sorted(impl.networks):
        network = impl.networks[signal]
        wire = network.wire_source
        if wire is not None:
            source, polarity = wire
            kind = GateKind.BUF if polarity else GateKind.NOT
            netlist.add_gate(Gate(signal, kind, ((source, 1),)))
            continue

        sides = []
        for label, cover in (("S", network.set_cover), ("R", network.reset_cover)):
            terms = [
                _literal_source(netlist, cube, and_cache, f"and_{signal}_")
                for cube in cover
            ]
            if len(terms) == 1:
                sides.append(terms[0])
            else:
                or_name = f"{label}_{signal}"
                netlist.add_gate(Gate(or_name, GateKind.OR, tuple(terms)))
                sides.append((or_name, 1))
        (set_sig, set_pol), (reset_sig, reset_pol) = sides
        if style == "C":
            netlist.add_gate(
                Gate(
                    signal,
                    GateKind.C,
                    ((set_sig, set_pol), (reset_sig, 1 - reset_pol)),
                )
            )
        elif style == "RS":
            # the RS flip-flop as the paper's atomic basic element; the
            # complementary rail comes from the flip-flop's second output
            # with negligible skew, so inverse literals are polarity
            # bubbles just as in the C style
            netlist.add_gate(
                Gate(
                    signal,
                    GateKind.RS,
                    ((set_sig, set_pol), (reset_sig, reset_pol)),
                )
            )
        else:  # RS-NOR: discrete cross-coupled NOR pair (ablation style)
            rail_bar = f"{signal}_bar"
            netlist.add_gate(
                Gate(
                    signal,
                    GateKind.NOR,
                    ((reset_sig, reset_pol), (rail_bar, 1)),
                )
            )
            netlist.add_gate(
                Gate(
                    rail_bar,
                    GateKind.NOR,
                    ((set_sig, set_pol), (signal, 1)),
                )
            )
            netlist.initial_hints[rail_bar] = (signal, 0)
            netlist.declared_state_holding.add(signal)
            netlist.declared_state_holding.add(rail_bar)

    if explicit_inverters:
        _explicit_input_inverters(netlist)
    netlist.fanin_closure_check()
    return netlist


def _explicit_input_inverters(netlist: Netlist) -> None:
    """Replace AND/OR input bubbles by shared standalone inverter gates.

    Latch bubbles (the C-element's inverted reset input) stay internal:
    the paper's Section-III discussion concerns the input inversions of
    the SOP gates after technology mapping.
    """
    needed = sorted(
        {
            signal
            for gate in netlist.gates.values()
            if gate.kind in (GateKind.AND, GateKind.OR)
            for signal, polarity in gate.inputs
            if polarity == 0
        }
    )
    for signal in needed:
        netlist.add_gate(Gate(f"inv_{signal}", GateKind.NOT, ((signal, 1),)))
    for name in list(netlist.gates):
        gate = netlist.gates[name]
        if gate.kind not in (GateKind.AND, GateKind.OR):
            continue
        if all(polarity == 1 for _, polarity in gate.inputs):
            continue
        rewired = tuple(
            (signal, 1) if polarity == 1 else (f"inv_{signal}", 1)
            for signal, polarity in gate.inputs
        )
        netlist.gates[name] = Gate(name, gate.kind, rewired)
