"""JSON persistence for netlists.

Lets a synthesised circuit be saved, inspected, hand-edited and verified
again -- or a circuit designed elsewhere be checked against a
specification with ``repro-si check``.  The representation is plain and
stable::

    {
      "name": "fig3_cimpl",
      "inputs": ["a", "b"],
      "interface_outputs": ["c", "d", "x"],
      "gates": [
        {"output": "and_c_0", "kind": "and",
         "inputs": [["b", 1], ["d", 0]]},
        {"output": "c", "kind": "c",
         "inputs": [["S_c", 1], ["and_c_2", 0]]},
        {"output": "f", "kind": "complex",
         "inputs": [["a", 1], ["f", 1]],
         "function": [[["a", 1]], [["f", 1]]]}
      ],
      "initial_hints": {"c_bar": ["c", 0]},
      "state_holding": ["c"]
    }

Complex-gate functions are covers serialised as lists of literal lists.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.boolean.cover import Cover
from repro.boolean.cube import Cube
from repro.netlist.gates import Gate, GateKind
from repro.netlist.netlist import Netlist


def netlist_to_json(netlist: Netlist, indent: int = 2) -> str:
    """Serialise a netlist to JSON text."""
    gates: List[Dict] = []
    for output, gate in netlist.gates.items():
        entry: Dict = {
            "output": output,
            "kind": gate.kind.value,
            "inputs": [[signal, polarity] for signal, polarity in gate.inputs],
        }
        if gate.kind == GateKind.COMPLEX:
            entry["function"] = [
                [[signal, value] for signal, value in cube.literals]
                for cube in gate.function
            ]
        gates.append(entry)
    document = {
        "name": netlist.name,
        "inputs": list(netlist.inputs),
        "interface_outputs": list(netlist.interface_outputs),
        "gates": gates,
        "initial_hints": {
            name: list(hint) for name, hint in netlist.initial_hints.items()
        },
        "state_holding": sorted(netlist.declared_state_holding),
    }
    return json.dumps(document, indent=indent) + "\n"


def netlist_from_json(text: str) -> Netlist:
    """Parse JSON text back into a :class:`Netlist`."""
    document = json.loads(text)
    netlist = Netlist(
        name=document.get("name", "netlist"),
        inputs=tuple(document["inputs"]),
        interface_outputs=tuple(document.get("interface_outputs", ())),
    )
    for entry in document["gates"]:
        kind = GateKind(entry["kind"])
        inputs = tuple((signal, int(pol)) for signal, pol in entry["inputs"])
        function = None
        if kind == GateKind.COMPLEX:
            function = Cover(
                [
                    Cube({signal: int(value) for signal, value in literals})
                    for literals in entry["function"]
                ]
            )
        netlist.add_gate(Gate(entry["output"], kind, inputs, function=function))
    for name, hint in document.get("initial_hints", {}).items():
        netlist.initial_hints[name] = (hint[0], int(hint[1]))
    netlist.declared_state_holding.update(document.get("state_holding", ()))
    netlist.fanin_closure_check()
    return netlist


def save_netlist(netlist: Netlist, path: str) -> None:
    with open(path, "w") as handle:
        handle.write(netlist_to_json(netlist))


def load_netlist(path: str) -> Netlist:
    with open(path) as handle:
        return netlist_from_json(handle.read())
