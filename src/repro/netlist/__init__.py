"""Gate-level netlists and circuit-level verification.

* :mod:`repro.netlist.gates` -- the basic gate library: AND/OR with
  input-inversion bubbles, NOT/BUF, the Muller C-element and the RS
  latch, each with its next-state function.
* :mod:`repro.netlist.netlist` -- netlist structure plus construction
  from a synthesised :class:`~repro.core.synthesis.Implementation`
  (standard C- or RS-implementation, Fig. 2 of the paper).
* :mod:`repro.netlist.circuit_sg` -- composition of a netlist with its
  environment (the specification state graph acting as a mirror) into a
  *circuit-level* state graph in which **every gate output is a signal**.
* :mod:`repro.netlist.hazards` -- speed-independence verification: the
  circuit is hazard-free under the pure unbounded-delay model iff its
  circuit-level state graph is output semi-modular by all gate signals
  (Sec. III, citing [1]).  This executes Theorem 3 -- and exposes the
  Figure-4 baseline hazard.
"""

from repro.netlist.gates import Gate, GateKind
from repro.netlist.netlist import Netlist, netlist_from_implementation
from repro.netlist.circuit_sg import build_circuit_state_graph, CompositionError
from repro.netlist.hazards import HazardReport, verify_speed_independence
from repro.netlist.simulate import SimulationReport, monte_carlo, simulate
from repro.netlist.area import area_estimate, area_report
from repro.netlist.io import load_netlist, netlist_from_json, netlist_to_json, save_netlist
from repro.netlist.render import netlist_to_dot, netlist_to_verilog, sg_to_dot
from repro.netlist.mapping import decompose_fanin, fanin_violations

__all__ = [
    "Gate",
    "GateKind",
    "Netlist",
    "netlist_from_implementation",
    "build_circuit_state_graph",
    "CompositionError",
    "HazardReport",
    "verify_speed_independence",
    "SimulationReport",
    "simulate",
    "monte_carlo",
    "area_estimate",
    "area_report",
    "netlist_to_json",
    "netlist_from_json",
    "save_netlist",
    "load_netlist",
    "netlist_to_verilog",
    "netlist_to_dot",
    "sg_to_dot",
    "decompose_fanin",
    "fanin_violations",
]
