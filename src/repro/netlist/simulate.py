"""Discrete-event simulation of netlists with random gate delays.

An independent, *dynamic* check of the static speed-independence
verifier: the closed loop of circuit and specification mirror is run
with randomly drawn per-event gate delays under the pure delay model.

Hazard criterion (the dynamic face of semi-modularity): a gate whose
output change is pending -- its next-state function disagrees with its
output and a firing has been scheduled -- must eventually fire; if an
input change makes the pending transition vanish, the gate was *disabled
while excited*, which under the pure delay model is a potential glitch.
The simulator records every such disabling on a non-input signal.

Monte-Carlo usage: many short runs with different seeds.  On an MC
implementation (Theorem 3) no run may record a disabling; on the
Figure-4 baseline a modest number of runs suffices to watch the paper's
``t = c'd`` gate lose its excitation.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.netlist.netlist import Netlist, NetlistPlan
from repro.sg import lanes
from repro.sg.events import SignalEvent
from repro.sg.graph import StateGraph

#: gate count from which the auto mode batches the excitation refresh
#: (below it, one lane sweep costs more than the per-gate closure calls)
BATCH_GATE_THRESHOLD = 32


class _LaneSweep:
    """Whole-netlist excitation scoring for one packed code.

    Replaces the per-gate closure calls of the simulator's refresh loop:
    every match-family gate (:meth:`repro.netlist.gates.Gate.lane_test`)
    is one row of a ``(mask, value, flip)`` lane table and the whole
    table is scored against the current code in one vectorised
    comparison; C/RS/COMPLEX gates keep their compiled closures.  The
    produced targets are exactly those of the scalar loop, in the same
    gate order.
    """

    def __init__(self, plan: NetlistPlan, kernel) -> None:
        self.kernel = kernel
        space = plan.space
        self.nwords = lanes.words_for(space.width)
        width = space.width
        simple: List[Tuple[int, int, int, int, int]] = []
        special: List[Tuple[int, int, object]] = []
        for slot, (name, out_bit, evaluate) in enumerate(plan.items):
            test = plan.netlist.gates[name].lane_test(space)
            if test is not None:
                mask, value, flip = test
                simple.append((slot, mask, value, flip, space.position[name]))
            else:
                special.append((slot, out_bit, evaluate))
        self.ngates = len(plan.items)
        self.simple = simple
        self.special = special
        if kernel.name == "numpy" and simple:
            np = lanes._np
            self.slots = [entry[0] for entry in simple]
            self.masks = np.vstack(
                [kernel.to_words(entry[1], width) for entry in simple]
            )
            self.values = np.vstack(
                [kernel.to_words(entry[2], width) for entry in simple]
            )
            self.flips = np.array([bool(entry[3]) for entry in simple])
            self.out_word = np.array(
                [entry[4] >> 6 for entry in simple], dtype=np.intp
            )
            self.out_shift = np.array(
                [entry[4] & 63 for entry in simple], dtype=np.uint64
            )

    def targets(self, packed: int) -> List[Optional[int]]:
        """Per gate slot: the pending output value, ``None`` if unexcited."""
        out: List[Optional[int]] = [None] * self.ngates
        if self.kernel.name == "numpy" and self.simple:
            np = lanes._np
            code = np.frombuffer(
                packed.to_bytes(self.nwords * 8, "little"), dtype=np.uint64
            )
            nxt = ((code & self.masks) == self.values).all(axis=1) ^ self.flips
            cur = ((code[self.out_word] >> self.out_shift) & 1).astype(bool)
            for k in np.nonzero(nxt != cur)[0].tolist():
                out[self.slots[k]] = int(nxt[k])
        else:
            for slot, mask, value, flip, pos in self.simple:
                nxt = (packed & mask == value) ^ flip
                if nxt != packed >> pos & 1:
                    out[slot] = int(nxt)
        for slot, out_bit, evaluate in self.special:
            current = 1 if packed & out_bit else 0
            nxt = evaluate(packed, current)
            if nxt != current:
                out[slot] = nxt
        return out


@dataclass
class Disabling:
    """A pending gate transition withdrawn before it could fire."""

    time: float
    gate: str
    lost_value: int

    def __str__(self) -> str:
        edge = "+" if self.lost_value else "-"
        return f"t={self.time:.2f}: pending {self.gate}{edge} withdrawn"


@dataclass
class SimulationReport:
    """Outcome of one simulation run."""

    netlist: Netlist
    spec: StateGraph
    seed: int
    fired_events: int
    disablings: List[Disabling] = field(default_factory=list)
    conformance_failures: List[Tuple[float, str]] = field(default_factory=list)
    #: single-event upsets applied during the run (fault injection)
    injections_applied: List[Tuple[float, str]] = field(default_factory=list)

    @property
    def hazard_free(self) -> bool:
        return not self.disablings and not self.conformance_failures

    def describe(self) -> str:
        lines = [
            f"simulation of {self.netlist.name} (seed {self.seed}): "
            f"{self.fired_events} events, "
            f"{'clean' if self.hazard_free else 'HAZARDOUS'}"
        ]
        for disabling in self.disablings[:6]:
            lines.append(f"  {disabling}")
        for time, signal in self.conformance_failures[:6]:
            lines.append(
                f"  t={time:.2f}: output {signal!r} fired outside the spec"
            )
        return "\n".join(lines)


class _Scheduler:
    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, str]] = []
        self._counter = 0

    def push(self, time: float, signal: str) -> None:
        heapq.heappush(self._queue, (time, self._counter, signal))
        self._counter += 1

    def pop(self) -> Optional[Tuple[float, str]]:
        while self._queue:
            time, _, signal = heapq.heappop(self._queue)
            return time, signal
        return None

    def __bool__(self) -> bool:
        return bool(self._queue)


def simulate(
    netlist: Netlist,
    spec: StateGraph,
    max_events: int = 2000,
    seed: int = 0,
    gate_delay: Tuple[float, float] = (1.0, 10.0),
    input_delay: Tuple[float, float] = (1.0, 20.0),
    delay_overrides: Optional[Dict[str, Tuple[float, float]]] = None,
    injections: Optional[Sequence[Tuple[float, str]]] = None,
    batch: Optional[bool] = None,
) -> SimulationReport:
    """Run one random-delay execution of the closed loop.

    Gate firings are scheduled when the gate becomes excited, with a
    uniformly drawn delay; a fresh excitation evaluation happens after
    every event, and a scheduled firing whose excitation vanished is a
    recorded :class:`Disabling` (for non-input signals) or an input
    choice resolution (for specification inputs -- benign).

    ``delay_overrides`` maps individual gate names to their own delay
    ranges -- used e.g. to model the paper's bounded-inverter regime
    (``d_inv^max < D_sn^min``).

    ``injections`` is a list of ``(time, gate_output)`` single-event
    upsets (see :mod:`repro.verify.faults`): at the given time the named
    gate output is forcibly flipped, any pending transition of that gate
    is considered consumed by the flip, and simulation continues -- the
    flip of an *interface* output is additionally checked against the
    specification mirror, so an upset the environment cannot absorb is
    recorded as a conformance failure.

    ``batch`` selects the refresh strategy: ``True`` scores every
    match-family gate in one lane sweep (:class:`_LaneSweep`), ``False``
    keeps the per-gate compiled closures, ``None`` (default) batches
    automatically when the numpy kernel is available and the netlist has
    at least :data:`BATCH_GATE_THRESHOLD` gates.  Reports are identical
    either way -- the sweep computes the same targets in the same order.
    """
    rng = random.Random(seed)
    from repro.netlist.circuit_sg import _settled_initial_values

    plan = NetlistPlan(netlist)
    space = plan.space
    bit_of = {s: 1 << space.position[s] for s in netlist.signals}
    gate_plan = {name: (out_bit, ev) for name, out_bit, ev in plan.items}
    sweep: Optional[_LaneSweep] = None
    if batch or (batch is None and len(plan.items) >= BATCH_GATE_THRESHOLD):
        kernel = lanes.get_kernel()
        if batch or kernel.name == "numpy":
            sweep = _LaneSweep(plan, kernel)
    packed = space.pack(_settled_initial_values(netlist, spec))
    spec_state = spec.initial
    report = SimulationReport(netlist=netlist, spec=spec, seed=seed, fired_events=0)

    #: signal -> (scheduled time, target value); None when idle
    pending: Dict[str, Optional[Tuple[float, int]]] = {
        s: None for s in netlist.signals
    }
    scheduler = _Scheduler()
    now = 0.0

    def gate_target(name: str) -> Optional[int]:
        out_bit, evaluate = gate_plan[name]
        current = 1 if packed & out_bit else 0
        nxt = evaluate(packed, current)
        return nxt if nxt != current else None

    def enabled_inputs() -> List[SignalEvent]:
        return [
            event
            for event in spec.enabled_events(spec_state)
            if event.signal in spec.inputs
        ]

    def refresh(time: float) -> None:
        # gates: schedule new excitations, withdraw vanished ones; the
        # batched sweep precomputes every gate's target in one pass
        targets = sweep.targets(packed) if sweep is not None else None
        for slot_index, (name, out_bit, evaluate) in enumerate(plan.items):
            if targets is not None:
                target = targets[slot_index]
            else:
                current = 1 if packed & out_bit else 0
                nxt = evaluate(packed, current)
                target = nxt if nxt != current else None
            slot = pending.get(name)
            if target is None and slot is not None:
                report.disablings.append(
                    Disabling(time=time, gate=name, lost_value=slot[1])
                )
                pending[name] = None
            elif target is not None and slot is None:
                bounds = (delay_overrides or {}).get(name, gate_delay)
                fire_at = time + rng.uniform(*bounds)
                pending[name] = (fire_at, target)
                scheduler.push(fire_at, name)
        # environment: schedule enabled inputs, silently drop stale ones
        enabled = {e.signal: e for e in enabled_inputs()}
        for name in netlist.inputs:
            slot = pending.get(name)
            event = enabled.get(name)
            if event is None:
                if slot is not None:
                    pending[name] = None  # input choice resolved: benign
            elif slot is None:
                fire_at = time + rng.uniform(*input_delay)
                pending[name] = (fire_at, event.value_after)
                scheduler.push(fire_at, name)

    #: queued single-event upsets, earliest last (popped from the end)
    upsets = sorted(injections or [], key=lambda entry: entry[0], reverse=True)

    def apply_upset(time: float, target_name: str) -> bool:
        """Flip a gate output in place; False when the run must stop."""
        nonlocal spec_state, packed
        if target_name not in netlist.gates:
            return True  # inputs are owned by the environment: ignore
        packed ^= bit_of[target_name]
        pending[target_name] = None  # the flip consumed any pending firing
        report.injections_applied.append((time, target_name))
        if target_name in spec.non_inputs:
            event = SignalEvent(target_name, +1 if packed & bit_of[target_name] else -1)
            targets = spec.fire(spec_state, event)
            if not targets:
                report.conformance_failures.append((time, target_name))
                return False
            spec_state = targets[0]
        refresh(time)
        return True

    refresh(now)
    while report.fired_events < max_events:
        popped = scheduler.pop()
        stopped = False
        applied = False
        while upsets and (popped is None or upsets[-1][0] <= popped[0]):
            upset_time, upset_signal = upsets.pop()
            now = max(now, upset_time)
            applied = True
            if not apply_upset(now, upset_signal):
                stopped = True
                break
        if stopped:
            break
        if popped is None:
            if applied:
                continue  # an upset may have re-excited some gate
            break
        now, signal = popped
        slot = pending.get(signal)
        if slot is None or slot[0] != now:
            continue  # stale queue entry
        _, target = slot
        pending[signal] = None
        if signal in netlist.inputs:
            event = SignalEvent(signal, +1 if target else -1)
            targets = spec.fire(spec_state, event)
            if not targets:
                continue  # environment changed its mind; skip silently
            spec_state = targets[0]
            bit = bit_of[signal]
            packed = (packed | bit) if target else (packed & ~bit)
        else:
            if gate_target(signal) != target:
                continue  # vanished between scheduling and now (recorded)
            bit = bit_of[signal]
            packed = (packed | bit) if target else (packed & ~bit)
            if signal in spec.non_inputs:
                event = SignalEvent(signal, +1 if target else -1)
                targets = spec.fire(spec_state, event)
                if not targets:
                    report.conformance_failures.append((now, signal))
                    break
                spec_state = targets[0]
        report.fired_events += 1
        refresh(now)
    return report


def monte_carlo(
    netlist: Netlist,
    spec: StateGraph,
    runs: int = 25,
    max_events: int = 1000,
    seed: int = 0,
    batch: Optional[bool] = None,
) -> List[SimulationReport]:
    """Independent random-delay runs; returns one report per run."""
    return [
        simulate(
            netlist,
            spec,
            max_events=max_events,
            seed=seed + run,
            batch=batch,
        )
        for run in range(runs)
    ]
