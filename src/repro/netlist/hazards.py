"""Speed-independence verification of implementations.

Under the pure delay model, "any violation of semi-modularity by
internal signals will result in hazardous behavior on circuit outputs"
(Sec. III, citing Beerel & Meng's semi-modularity/testability result).
So the verifier builds the circuit-level state graph of the closed loop
(circuit + specification mirror) and checks output semi-modularity with
respect to *every gate output*.  A conflict on a gate -- the gate gets
excited and then loses its excitation without firing -- is a hazard
witness: the classic unacknowledged-gate scenario of Example 2, where
AND gate ``t = c'd`` starts switching in ER(+b_2) and input ``a``
overtakes it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.netlist.circuit_sg import Composition, build_circuit_state_graph
from repro.netlist.netlist import Netlist
from repro.sg.graph import StateGraph
from repro.sg.properties import Conflict, conflict_states


@dataclass
class HazardReport:
    """Verification outcome for one netlist against one specification."""

    netlist: Netlist
    spec: StateGraph
    composition: Composition
    conflicts: List[Conflict] = field(default_factory=list)

    @property
    def circuit_sg(self) -> StateGraph:
        return self.composition.sg

    @property
    def hazard_free(self) -> bool:
        """Speed-independent: no gate conflict, no conformance failure,
        and the whole space explored.

        Transient S = R overlaps at atomic RS flip-flops are reported
        separately (:attr:`rs_overlaps`): with the MC property the
        overlap always resolves by the stale side falling first (the
        active side cannot withdraw until the latch answers), so the
        flip-flop merely holds through it.
        """
        return (
            not self.conflicts
            and not self.composition.conformance_failures
            and not self.composition.truncated
        )

    @property
    def rs_overlaps(self) -> List[Tuple]:
        return list(self.composition.rs_violations)

    def witness_trace(self, conflict: Optional[Conflict] = None) -> List:
        """The event sequence from reset to a conflict state.

        Defaults to the first conflict; returns the BFS-shortest firing
        sequence of the closed loop leading to the state in which the
        gate is excited, followed by the disabling event.
        """
        if conflict is None:
            if not self.conflicts:
                return []
            conflict = self.conflicts[0]
        return self.composition.trace_to(conflict.state) + [conflict.by]

    def describe(self) -> str:
        lines = [
            f"speed-independence check: {self.netlist.name} vs {self.spec.name}: "
            f"{'HAZARD-FREE' if self.hazard_free else 'HAZARDOUS'}",
            f"  circuit states explored: {len(self.circuit_sg)}",
        ]
        for conflict in self.conflicts[:8]:
            lines.append(f"  gate conflict: {conflict}")
        if self.conflicts:
            trace = self.witness_trace()
            lines.append(
                "  witness trace: " + " ".join(str(e) for e in trace)
            )
        for state, signal in self.composition.conformance_failures[:8]:
            lines.append(
                f"  conformance failure: output {signal!r} fires outside the "
                f"specification in state {state!r}"
            )
        if self.composition.rs_violations:
            lines.append(
                f"  note: {len(self.composition.rs_violations)} transient "
                f"S=R overlap state(s) at RS flip-flops (held through)"
            )
        if self.composition.truncated:
            lines.append("  WARNING: exploration truncated")
        return "\n".join(lines)


def verify_speed_independence(
    netlist: Netlist,
    spec: StateGraph,
    max_states: int = 500_000,
) -> HazardReport:
    """Build the circuit-level SG and check it for gate-level conflicts.

    The watched signals are all non-inputs of the composed graph, i.e.
    every gate output (latches, AND/OR gates, wires alike).
    """
    composition = build_circuit_state_graph(netlist, spec, max_states=max_states)
    conflicts = conflict_states(
        composition.sg, composition.sg.non_inputs
    )
    return HazardReport(
        netlist=netlist,
        spec=spec,
        composition=composition,
        conflicts=conflicts,
    )
