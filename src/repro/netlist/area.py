"""Transistor-count area estimation for netlists.

A standard static-CMOS costing, good enough to compare implementation
variants (the paper's Section VI motivates gate sharing with "better
usage of the silicon area"):

=========  =========================================================
gate       transistors
=========  =========================================================
NOT        2
BUF        4 (two inverters)
NAND/NOR   2n (n = fan-in)
AND/OR     2n + 2 (NAND/NOR plus output inverter)
C-element  12 (standard static implementation with keeper)
RS latch   8 (cross-coupled NOR pair)
COMPLEX    2 * (total literals) + 2 (single AOI stage + inverter)
bubble     2 per inverted input pin (local inverter)
=========  =========================================================
"""

from __future__ import annotations

from typing import Dict

from repro.netlist.gates import Gate, GateKind
from repro.netlist.netlist import Netlist


def gate_transistors(gate: Gate) -> int:
    """Estimated transistor count of one gate, bubbles included."""
    fanin = len(gate.inputs)
    bubbles = sum(1 for _, polarity in gate.inputs if polarity == 0)
    base: int
    if gate.kind == GateKind.NOT:
        base = 2
        bubbles = 0  # an inverted inverter input is just a buffer; keep simple
    elif gate.kind == GateKind.BUF:
        base = 4
        bubbles = 0
    elif gate.kind in (GateKind.NAND, GateKind.NOR):
        base = 2 * fanin
    elif gate.kind in (GateKind.AND, GateKind.OR):
        base = 2 * fanin + 2
    elif gate.kind == GateKind.C:
        base = 12
        bubbles = sum(1 for _, polarity in gate.inputs if polarity == 0)
    elif gate.kind == GateKind.RS:
        base = 8
    elif gate.kind == GateKind.COMPLEX:
        literals = sum(len(cube) for cube in gate.function)
        base = 2 * literals + 2
        bubbles = 0  # polarities live in the function
    else:  # pragma: no cover - exhaustive over GateKind
        raise ValueError(f"unknown gate kind {gate.kind}")
    return base + 2 * bubbles


def area_estimate(netlist: Netlist) -> int:
    """Total estimated transistor count of the netlist."""
    return sum(gate_transistors(gate) for gate in netlist.gates.values())


def area_report(netlist: Netlist) -> str:
    """Per-gate breakdown plus the total."""
    lines = [f"area estimate for {netlist.name} (transistors)"]
    by_kind: Dict[str, int] = {}
    for name, gate in netlist.gates.items():
        cost = gate_transistors(gate)
        by_kind[gate.kind.value] = by_kind.get(gate.kind.value, 0) + cost
        lines.append(f"  {name:<16}{gate.kind.value:<9}{cost:>4}")
    lines.append("  " + "-" * 29)
    for kind, cost in sorted(by_kind.items()):
        lines.append(f"  {'subtotal':<16}{kind:<9}{cost:>4}")
    lines.append(f"  {'TOTAL':<25}{area_estimate(netlist):>4}")
    return "\n".join(lines)
