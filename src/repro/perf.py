"""Lightweight performance instrumentation: phase timers and op counters.

The synthesis pipeline runs in distinct phases (reachability -> regions
-> MC analysis -> insertion -> netlist -> hazard check) whose relative
cost shifts dramatically with the workload shape: `concurrent_fork(n)`
explodes the state count, `alternator(n)` the SAT search.  This module
provides a zero-dependency recorder so every phase can report wall time
and primitive-operation counts (candidate cubes examined, bitmask cube
evaluations, monotonicity checks) without a profiler run.

Design constraints:

* **Off by default, near-zero cost when off.**  Each instrumentation
  point is a module-level ``None`` check; hot loops batch their counts
  and report once per call rather than once per candidate.
* **No global state leakage between runs.**  ``enable()`` installs a
  fresh recorder and returns it; ``disable()`` detaches it.  Library
  code never enables recording on its own -- the CLI ``--profile`` flag
  and the benchmark harnesses do.

Usage::

    from repro import perf

    recorder = perf.enable()
    with perf.phase("mc-analysis"):
        report = analyze_mc(sg)
    print(recorder.report())
    perf.disable()

or as a decorator::

    @perf.timed("reachability")
    def explore(stg): ...
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from typing import Callable, Dict, Optional


class PerfRecorder:
    """Accumulates per-phase wall times and named counters."""

    __slots__ = ("phases", "phase_calls", "counters")

    def __init__(self) -> None:
        #: phase name -> total wall seconds (re-entrant phases accumulate)
        self.phases: Dict[str, float] = {}
        #: phase name -> number of completed enter/exit pairs
        self.phase_calls: Dict[str, int] = {}
        #: counter name -> running total
        self.counters: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def add_phase(self, name: str, seconds: float) -> None:
        self.phases[name] = self.phases.get(name, 0.0) + seconds
        self.phase_calls[name] = self.phase_calls.get(name, 0) + 1

    def increment(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def reset(self) -> None:
        self.phases.clear()
        self.phase_calls.clear()
        self.counters.clear()

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, Dict]:
        """Machine-readable snapshot (the BENCH_pipeline.json payload)."""
        return {
            "phases": {
                name: {
                    "seconds": self.phases[name],
                    "calls": self.phase_calls.get(name, 0),
                }
                for name in sorted(self.phases)
            },
            "counters": {name: self.counters[name] for name in sorted(self.counters)},
        }

    def report(self) -> str:
        """Human-readable table of phases and counters."""
        lines = ["profile:"]
        if self.phases:
            width = max(len(name) for name in self.phases)
            for name in sorted(self.phases, key=self.phases.get, reverse=True):
                lines.append(
                    f"  {name:<{width}}  {self.phases[name] * 1000:>10.2f} ms"
                    f"  ({self.phase_calls.get(name, 0)} call"
                    f"{'s' if self.phase_calls.get(name, 0) != 1 else ''})"
                )
        else:
            lines.append("  (no phases recorded)")
        if self.counters:
            lines.append("counters:")
            width = max(len(name) for name in self.counters)
            for name in sorted(self.counters):
                lines.append(f"  {name:<{width}}  {self.counters[name]:>12}")
        return "\n".join(lines)


#: the active recorder, or ``None`` when instrumentation is off
_recorder: Optional[PerfRecorder] = None


def enable() -> PerfRecorder:
    """Install (and return) a fresh active recorder."""
    global _recorder
    _recorder = PerfRecorder()
    return _recorder


def disable() -> None:
    """Detach the active recorder; instrumentation points become no-ops."""
    global _recorder
    _recorder = None


def active() -> Optional[PerfRecorder]:
    """The currently installed recorder, if any."""
    return _recorder


@contextmanager
def recording(recorder: Optional[PerfRecorder]):
    """Install ``recorder`` for the duration of the block, then restore.

    ``None`` leaves the currently active recorder in place (the block is
    a no-op), so callers can thread an *optional* recorder without
    branching.  This is the supported way to scope instrumentation to
    one run -- harnesses must not assign ``perf._recorder`` directly.
    """
    global _recorder
    if recorder is None:
        yield None
        return
    previous = _recorder
    _recorder = recorder
    try:
        yield recorder
    finally:
        _recorder = previous


@contextmanager
def phase(name: str):
    """Context manager timing one pipeline phase (no-op when disabled)."""
    recorder = _recorder
    if recorder is None:
        yield
        return
    started = time.perf_counter()
    try:
        yield
    finally:
        recorder.add_phase(name, time.perf_counter() - started)


def timed(name: str) -> Callable:
    """Decorator form of :func:`phase`."""

    def decorate(function: Callable) -> Callable:
        @functools.wraps(function)
        def wrapper(*args, **kwargs):
            recorder = _recorder
            if recorder is None:
                return function(*args, **kwargs)
            started = time.perf_counter()
            try:
                return function(*args, **kwargs)
            finally:
                recorder.add_phase(name, time.perf_counter() - started)

        return wrapper

    return decorate


def count(name: str, amount: int = 1) -> None:
    """Add to a named counter (no-op when disabled).

    Hot loops should accumulate locally and call this once per search,
    not once per candidate.
    """
    recorder = _recorder
    if recorder is not None:
        recorder.increment(name, amount)
