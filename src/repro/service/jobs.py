"""The service's async job engine: queue, budgets, executors, events.

One :class:`JobManager` is the resident analysis world of a running
server: it owns the shared on-disk :class:`~repro.pipeline.store.ArtifactStore`,
one in-memory artifact memo shared by every request context (via
``AnalysisContext(memo=...)``), the per-tenant token buckets and the
executor the CPU-bound synthesis work runs on.

Execution model
---------------
``workers=1`` (the default) runs jobs on a single dedicated worker
thread: every job gets its own :class:`~repro.pipeline.context.AnalysisContext`
(own budget, own streaming perf recorder) that shares the resident memo
dict and store handle, so a repeated specification is an in-memory cache
hit and per-stage/per-phase events stream live.  ``workers > 1`` lifts
the worker model of :func:`repro.pipeline.batch.run_batch`: jobs fan out
across a :class:`~concurrent.futures.ProcessPoolExecutor` and share
warmth through the store directory instead (each worker process opens
its own handle on the same root); phase events are collected in the
worker and replayed into the stream when the job completes.

Tenant budgets
--------------
Each tenant gets a :class:`TokenBucket` of *state tokens* (capacity +
refill per second).  A job runs under a
:class:`~repro.verify.budget.Budget` capped by the tokens currently
available; the states the run actually charges (specification
elaboration + circuit composition, exactly the quantities the CLI
budgets meter) are drained from the bucket afterwards.  An empty bucket
-- or a budget tripping mid-run -- makes the job **inconclusive**, the
same verdict (and the same "neither proven nor refuted" meaning) as the
CLI's exit code 3.
"""

from __future__ import annotations

import itertools
import sys
import time
import traceback
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro import perf
from repro.verify.budget import Budget, BudgetExceeded

#: job lifecycle states
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
INCONCLUSIVE = "inconclusive"

#: states a job never leaves
TERMINAL = frozenset({DONE, FAILED, INCONCLUSIVE})

#: default per-tenant bucket: capacity and refill, in state tokens
DEFAULT_TENANT_TOKENS = 2_000_000.0
DEFAULT_TENANT_REFILL = 100_000.0

#: per-job state cap when the request does not lower it further
DEFAULT_JOB_STATES = 500_000

#: resident-memory bounds: memoised artifacts (LRU) and how many
#: finished jobs (events + result payloads) the manager keeps around
DEFAULT_MEMO_ENTRIES = 512
DEFAULT_KEEP_JOBS = 1024


class LRUMemo(OrderedDict):
    """A bounded artifact memo: recently-used entries survive.

    Shared between every request's :class:`AnalysisContext`; reads
    refresh an entry, inserts evict the least-recently-used once
    ``max_entries`` is exceeded, so a long-running server's cache stays
    warm for the working set without growing with total jobs served.
    """

    def __init__(self, max_entries: int = DEFAULT_MEMO_ENTRIES):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        super().__init__()
        self.max_entries = max_entries

    def __getitem__(self, key):
        value = super().__getitem__(key)
        self.move_to_end(key)
        return value

    def __setitem__(self, key, value) -> None:
        super().__setitem__(key, value)
        self.move_to_end(key)
        while len(self) > self.max_entries:
            self.popitem(last=False)


class TokenBucket:
    """A per-tenant budget of state tokens with steady refill.

    ``available()`` lazily refills at ``refill_per_second`` up to
    ``capacity``; :meth:`drain` subtracts what a finished job charged
    (the bucket may go negative when a job overshoots its snapshot --
    the debt is paid back by refill before the tenant runs again).
    """

    def __init__(
        self,
        capacity: float = DEFAULT_TENANT_TOKENS,
        refill_per_second: float = DEFAULT_TENANT_REFILL,
        clock: Callable[[], float] = time.monotonic,
    ):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if refill_per_second < 0:
            raise ValueError("refill_per_second must be >= 0")
        self.capacity = float(capacity)
        self.refill_per_second = float(refill_per_second)
        self._clock = clock
        self._tokens = self.capacity
        self._refilled = clock()

    def available(self) -> float:
        """Tokens available right now (refill applied, capped)."""
        now = self._clock()
        self._tokens = min(
            self.capacity,
            self._tokens + (now - self._refilled) * self.refill_per_second,
        )
        self._refilled = now
        return self._tokens

    def drain(self, tokens: float) -> None:
        """Subtract what a finished job actually charged."""
        self.available()
        self._tokens -= float(tokens)


class StreamRecorder(perf.PerfRecorder):
    """A perf recorder that mirrors every finished phase as an event.

    The pipeline's existing ``perf.phase`` hooks (regions, insertion,
    synthesis, netlist, hazard-check) drive the service's progress
    stream: each completed phase becomes one ``{"event": "phase"}``
    record, with counters summarised separately at job completion.
    """

    __slots__ = ("_emit",)

    def __init__(self, emit: Callable[[Dict], None]):
        super().__init__()
        self._emit = emit

    def add_phase(self, name: str, seconds: float) -> None:
        super().add_phase(name, seconds)
        self._emit(
            {"event": "phase", "phase": name, "ms": round(seconds * 1000, 3)}
        )


@dataclass
class Job:
    """One submitted request and everything it produced."""

    id: str
    kind: str
    tenant: str
    params: Dict
    status: str = QUEUED
    detail: str = ""
    result: Optional[Dict] = None
    #: ordered progress events (appended by the executor, read by SSE)
    events: List[Dict] = field(default_factory=list)
    #: artifact-cache traffic of this job's context, ``{"hits": .., ..}``
    cache: Dict[str, int] = field(default_factory=dict)
    charged_states: int = 0
    created: float = field(default_factory=time.monotonic)
    started: Optional[float] = None
    finished: Optional[float] = None

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL

    @property
    def seconds(self) -> Optional[float]:
        """Wall seconds spent running (None until the job started)."""
        if self.started is None:
            return None
        end = self.finished if self.finished is not None else time.monotonic()
        return end - self.started


# ----------------------------------------------------------------------
# Job runners (executor-agnostic: also run inside pool workers)
# ----------------------------------------------------------------------
@dataclass
class JobOutcome:
    """What one runner produced: a result document plus the verdict."""

    result: Optional[Dict] = None
    status: str = DONE
    detail: str = ""
    #: tokens to drain from the tenant bucket (None: budget.charged_states)
    charged: Optional[int] = None


class InvalidSpecification(ValueError):
    """The submitted ``.g`` text does not parse into a usable STG."""


def _parse_spec(params: Dict):
    from repro.stg.parser import parse_g

    try:
        stg = parse_g(params["spec_text"], name=params["name"])
    except ValueError as exc:
        raise InvalidSpecification(str(exc)) from exc
    if not stg.net.transitions:
        raise InvalidSpecification("malformed .g specification: no transitions")
    return stg


def _pipeline_spec(params: Dict, stg):
    from repro.pipeline import PipelineSpec

    return PipelineSpec.from_stg(
        stg,
        name=params["name"],
        style=params["style"],
        share_gates=params["share_gates"],
        verify=params["verify"],
        max_models=params["max_models"],
        max_states=params["max_states"],
        verify_max_states=params["verify_max_states"],
    )


def _synth_result(pipeline, spec) -> Dict:
    """Drive the staged pipeline and build the synth result document.

    The ``netlist`` payload is exactly
    :func:`repro.netlist.io.netlist_to_json` (what ``repro-si synth
    --save-netlist`` writes), the hazard verdict is the detached codec
    of :mod:`repro.pipeline.serialize` -- both byte-comparable to the
    CLI artifacts.
    """
    import json as _json

    from repro.netlist.io import netlist_to_json
    from repro.pipeline.serialize import _hazard_to_json

    netlist = pipeline.run(spec, until="netlist")
    covers = pipeline.run(spec, until="covers")
    reached = pipeline.run(spec, until="reach")
    return {
        "schema": "repro-service-synth/1",
        "name": spec.name,
        "states": reached.states,
        "inputs": sorted(reached.sg.inputs),
        "added_signals": list(covers.added_signals),
        "equations": covers.implementation.equations(),
        "netlist": _json.loads(netlist_to_json(netlist.netlist)),
        "gates": len(netlist.netlist.gates),
        "hazard": _hazard_to_json(netlist.hazard_report),
        "fingerprint": netlist.fingerprint,
    }


def _stage_events(
    pipeline, spec, emit: Callable[[Dict], None], delta=None
) -> Dict[str, Dict]:
    """Run the pipeline stage by stage, emitting one event per stage.

    Each event carries the stage's reuse ledger entry (``mode`` of
    ``hit`` / ``miss`` / ``partial`` plus per-signal/function/marking
    counts) captured right after the stage first ran, so delta jobs
    stream exactly how much of each stage was recomputed.
    """
    from repro.pipeline.core import STAGES

    context = pipeline.context
    collected: Dict[str, Dict] = {}
    for stage in STAGES:
        before = dict(context.cache_misses_by_stage)
        started = time.perf_counter()
        pipeline.run(spec, until=stage, delta=delta)
        computed = sum(context.cache_misses_by_stage.values()) - sum(
            before.values()
        )
        event = {
            "event": "stage",
            "stage": stage,
            "cached": computed == 0,
            "ms": round((time.perf_counter() - started) * 1000, 3),
        }
        reuse = context.last_reuse.get(stage)
        if reuse is not None:
            event["reuse"] = dict(reuse)
            collected[stage] = dict(reuse)
        emit(event)
    return collected


def _run_synth(params: Dict, context, emit) -> JobOutcome:
    from repro.pipeline import Pipeline

    stg = _parse_spec(params)
    spec = _pipeline_spec(params, stg)
    pipeline = Pipeline(context)
    delta = params.get("delta")
    if delta:
        reuse = _stage_events(pipeline, spec, emit, delta=delta)
        # package the edited design's result (memo hits throughout)
        spec = spec.apply_delta(delta)
        result = _synth_result(pipeline, spec)
        result["base_job"] = params["base_job"]
        result["delta"] = delta
        result["reuse"] = reuse
        return JobOutcome(result=result)
    _stage_events(pipeline, spec, emit)
    return JobOutcome(result=_synth_result(pipeline, spec))


def _run_verify(params: Dict, context, emit) -> JobOutcome:
    """Synthesise and model-check; verdict mirrors ``repro-si verify``."""
    outcome = _run_synth(params, context, emit)
    result = dict(outcome.result)
    result["schema"] = "repro-service-verify/1"
    hazard = result["hazard"]
    if hazard["hazard_free"]:
        verdict, exit_code, status, detail = "hazard-free", 0, DONE, ""
    elif hazard["truncated"] and not hazard["conflicts"]:
        # truncated with no witness: nothing proven -- the same
        # inconclusive verdict the CLI reports with exit code 3
        verdict, exit_code, status = "inconclusive", 3, INCONCLUSIVE
        detail = "circuit state space truncated before full exploration"
    else:
        verdict, exit_code, status = "hazardous", 1, DONE
        detail = f"{hazard['conflicts']} conflict(s)"
    result["verdict"] = verdict
    result["exit_code"] = exit_code
    return JobOutcome(result=result, status=status, detail=detail)


def _run_table1(params: Dict, context, emit) -> JobOutcome:
    """The Table-1 suite over the resident store (``run_table1``)."""
    from repro.bench.suite import (
        BENCHMARKS,
        format_table1,
        run_table1,
        table1_payload,
    )

    names = list(params["designs"] or BENCHMARKS)
    store_root = None if context.store is None else context.store.root
    emit({"event": "stage", "stage": "table1", "designs": len(names)})
    results = run_table1(
        verify=params["verify"],
        names=names,
        jobs=params["jobs"],
        store=store_root,
        backend=params["backend"] or context.backend.name,
    )
    for result in results:
        emit(
            {
                "event": "design",
                "design": result.name,
                "added_signals": result.added_signals,
                "ms": round(result.elapsed_seconds * 1000, 3),
            }
        )
    return JobOutcome(
        result={
            "schema": "repro-service-table1/1",
            "designs": names,
            "rows": table1_payload(results),
            "table": format_table1(results),
        },
        charged=sum(len(r.spec_sg) for r in results),
    )


def _run_diff(params: Dict, context, emit) -> JobOutcome:
    """A differential-oracle campaign (``differential_campaign``)."""
    from repro.verify.differential import differential_campaign

    def progress(record) -> None:
        emit(
            {
                "event": "design",
                "design": record.name,
                "diverged": bool(record.mismatches),
                "skipped": record.skipped is not None,
            }
        )

    store_root = None if context.store is None else context.store.root
    report = differential_campaign(
        count=params["count"],
        seed=params["seed"],
        max_states=params["max_states"],
        max_seconds_each=params["max_seconds_each"],
        progress=progress,
        store=store_root,
        backend=params["backend"],
    )
    divergent = report.divergent
    result = {
        "schema": "repro-service-diff/1",
        "designs": len(report.records),
        "checked": report.checked,
        "skipped": len(report.skipped),
        "divergent": len(divergent),
        "divergent_names": sorted(r.name for r in divergent),
        "exit_code": 1 if divergent else (3 if report.checked == 0 else 0),
        "summary": report.describe(),
    }
    status, detail = DONE, ""
    if not divergent and report.checked == 0:
        status, detail = INCONCLUSIVE, "every design blew its budget"
    return JobOutcome(
        result=result,
        status=status,
        detail=detail,
        charged=sum(r.states for r in report.records),
    )


def _run_corpus(params: Dict, context, emit) -> JobOutcome:
    """A corpus-backed batch sweep (``run_batch(corpus=...)``).

    The generated design stream runs through the batch scheduler
    against the resident store; the result carries the deterministic
    manifest document (byte-comparable to ``repro-si batch --corpus``)
    plus the run's status tally and scheduler counters.
    """
    from repro.corpus import CorpusError, CorpusSpec
    from repro.pipeline.batch import run_batch

    spec = CorpusSpec.from_json(params["corpus"])

    def progress(outcome) -> None:
        emit(
            {
                "event": "design",
                "design": outcome.name,
                "status": outcome.status,
                "resumed": outcome.resumed,
            }
        )

    store_root = None if context.store is None else context.store.root
    emit({"event": "stage", "stage": "corpus", "designs": spec.count})
    try:
        report = run_batch(
            corpus=spec,
            store=store_root,
            jobs=params["jobs"] or 1,
            backend=params["backend"] or context.backend.name,
            style=params["style"],
            verify=params["verify"],
            max_states=params["max_states"],
            timeout_seconds=params["timeout_seconds"],
            progress=progress,
        )
    except CorpusError as exc:
        return JobOutcome(status=FAILED, detail=str(exc), charged=0)
    counts: Dict[str, int] = {}
    for outcome in report.outcomes:
        counts[outcome.status] = counts.get(outcome.status, 0) + 1
    result = {
        "schema": "repro-service-corpus/1",
        "seed": report.seed,
        "designs": len(report.outcomes),
        "statuses": counts,
        "scheduler": dict(report.scheduler),
        "manifest": report.manifest(),
        "exit_code": report.exit_code,
        "summary": report.describe(),
    }
    status, detail = DONE, ""
    if report.exit_code == 3:
        status = INCONCLUSIVE
        detail = "at least one design blew its budget"
    elif report.exit_code != 0:
        detail = "hazardous or failed design(s) in the sweep"
    return JobOutcome(
        result=result,
        status=status,
        detail=detail,
        charged=sum(o.states for o in report.outcomes),
    )


_RUNNERS = {
    "synth": _run_synth,
    "verify": _run_verify,
    "table1": _run_table1,
    "diff": _run_diff,
    "corpus": _run_corpus,
}


def run_job(kind: str, params: Dict, context, emit) -> Dict:
    """Execute one job to a terminal outcome dict (never raises).

    The returned dict carries ``status`` / ``detail`` / ``result`` /
    ``charged`` / ``cache`` and is identical across the thread and
    process executors, so the manager finishes jobs uniformly.
    """
    from repro.core.complexgate import CSCViolation
    from repro.core.insertion import InsertionError
    from repro.core.synthesis import SynthesisError
    from repro.pipeline.delta import DeltaError
    from repro.stg.reachability import ReachabilityError

    status, detail, result, charged = DONE, "", None, None
    try:
        outcome = _RUNNERS[kind](params, context, emit)
        status, detail = outcome.status, outcome.detail
        result, charged = outcome.result, outcome.charged
    except BudgetExceeded as exc:
        status, detail = INCONCLUSIVE, exc.reason or str(exc)
    except DeltaError as exc:
        # the delta parsed at submit time but does not apply to the
        # base specification (e.g. dropping an edge it does not have)
        status, detail = FAILED, f"edit does not apply: {exc}"
    except ReachabilityError as exc:
        status, detail = INCONCLUSIVE, str(exc)
    except (CSCViolation, InsertionError, SynthesisError) as exc:
        status, detail = FAILED, f"synthesis failed: {exc}"
    except InvalidSpecification as exc:
        # the only parameter submit-time validation cannot vet: .g text
        status, detail = FAILED, f"invalid specification: {exc}"
    except Exception as exc:  # an internal bug, not a bad request:
        # keep the traceback visible instead of mislabeling it
        traceback.print_exc(file=sys.stderr)
        status, detail = (
            FAILED, f"internal error: {type(exc).__name__}: {exc}"
        )
    if charged is None:
        charged = context.budget.charged_states
    return {
        "status": status,
        "detail": detail,
        "result": result,
        "charged": int(charged),
        "cache": {
            "hits": context.cache_hits,
            "misses": context.cache_misses,
        },
    }


def _thread_job(kind: str, params: Dict, context, emit) -> Dict:
    """Thread-executor body: live event streaming via the recorder."""
    return run_job(kind, params, context, emit)


def _process_job(task: Dict) -> Dict:
    """Process-pool worker body (picklable I/O, run_batch's model).

    Builds its own context -- fresh memo, own handle on the shared
    store root -- and collects events locally; the manager replays them
    into the job's stream on completion.
    """
    from repro.pipeline.context import AnalysisContext

    events: List[Dict] = []
    budget = Budget(
        max_states=task["max_states"], max_seconds=task["max_seconds"]
    )
    store = task["store_root"]
    if store is not None:
        from repro.pipeline.shard import open_store

        store = open_store(
            store,
            shards=task.get("store_shards"),
            remote=task.get("remote_root"),
        )
    context = AnalysisContext(
        backend=task["backend"],
        budget=budget,
        store=store,
        recorder=StreamRecorder(events.append),
    )
    outcome = run_job(task["kind"], task["params"], context, events.append)
    outcome["events"] = events
    if context.store is not None:
        outcome["store_traffic"] = context.store.totals()
    return outcome


__all__ = [
    "DEFAULT_JOB_STATES",
    "DEFAULT_KEEP_JOBS",
    "DEFAULT_MEMO_ENTRIES",
    "DEFAULT_TENANT_REFILL",
    "DEFAULT_TENANT_TOKENS",
    "DONE",
    "FAILED",
    "INCONCLUSIVE",
    "InvalidSpecification",
    "Job",
    "JobManager",
    "JobOutcome",
    "LRUMemo",
    "QUEUED",
    "RUNNING",
    "StreamRecorder",
    "TERMINAL",
    "TokenBucket",
    "run_job",
]


class QueueFull(RuntimeError):
    """The submission queue is at capacity -> HTTP 429."""


class Draining(RuntimeError):
    """The server is shutting down; no new jobs -> HTTP 503."""


class JobManager:
    """The resident job world: queue + buckets + executor + caches.

    Construct, then ``await start()`` inside a running event loop;
    ``await drain()`` stops accepting work, finishes what is in flight
    and shuts the executor down (the graceful-shutdown contract the CI
    smoke test asserts).
    """

    def __init__(
        self,
        store: Optional[str] = None,
        shards: Optional[int] = None,
        remote_store: Optional[str] = None,
        backend: Optional[str] = None,
        workers: int = 1,
        tenant_tokens: float = DEFAULT_TENANT_TOKENS,
        tenant_refill: float = DEFAULT_TENANT_REFILL,
        job_max_states: int = DEFAULT_JOB_STATES,
        job_max_seconds: Optional[float] = None,
        max_queued: int = 256,
        memo_entries: int = DEFAULT_MEMO_ENTRIES,
        keep_jobs: int = DEFAULT_KEEP_JOBS,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        from repro.pipeline.backends import get_backend

        self.backend = get_backend(backend).name
        self.workers = workers
        #: ``thread``: one worker thread, shared in-memory memo, live
        #: phase events.  ``process``: run_batch-style fan-out sharing
        #: warmth through the store directory.
        self.mode = "thread" if workers == 1 else "process"
        self.store_root = None if store is None else str(store)
        self.shards = shards
        self.remote_store = None if remote_store is None else str(remote_store)
        if self.store_root is None and (shards or remote_store):
            raise ValueError("shards/remote_store need a store root")
        self.store = None
        if self.store_root is not None:
            # flat or sharded, autodetected -- one server can sit on the
            # root a ``repro-si batch --shards`` sweep warmed
            from repro.pipeline.shard import open_store

            self.store = open_store(
                self.store_root, shards=shards, remote=self.remote_store
            )
        self.tenant_tokens = float(tenant_tokens)
        self.tenant_refill = float(tenant_refill)
        self.job_max_states = job_max_states
        self.job_max_seconds = job_max_seconds
        self.max_queued = max_queued
        if keep_jobs < 1:
            raise ValueError(f"keep_jobs must be >= 1, got {keep_jobs}")
        self.keep_jobs = keep_jobs
        self.started_at = time.monotonic()
        #: bounded resident caches -- a long-running server must not
        #: grow with total jobs served (see :class:`LRUMemo`)
        self._memo: Dict = LRUMemo(memo_entries)
        #: shared across thread-mode request contexts so delta jobs can
        #: replay the base job's reachability exploration snapshot
        self._incremental = None
        self._jobs: Dict[str, Job] = {}
        self._buckets: Dict[str, TokenBucket] = {}
        self._ids = itertools.count(1)
        self._draining = False
        self._loop = None
        self._queue = None
        self._cond = None
        self._pool = None
        self._worker_tasks: List = []
        #: aggregate artifact-cache traffic across finished jobs
        self.cache_totals = {"hits": 0, "misses": 0}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        import asyncio

        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._cond = asyncio.Condition()
        if self.mode == "thread":
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-service"
            )
        else:
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        self._worker_tasks = [
            asyncio.create_task(self._worker(), name=f"job-worker-{n}")
            for n in range(self.workers)
        ]

    async def drain(self) -> Dict:
        """Graceful shutdown: finish in-flight work, stop the executor.

        Returns the shutdown report the ``/v1/shutdown`` endpoint (and
        the CLI's clean-exit message) serialises: job counts by status
        plus ``pending`` -- which is 0 on a clean drain and what CI
        fails on otherwise.
        """
        import asyncio

        self._draining = True
        await self._queue.join()
        for _ in self._worker_tasks:
            self._queue.put_nowait(None)
        await asyncio.gather(*self._worker_tasks)
        pool, self._pool = self._pool, None
        if pool is not None:
            await self._loop.run_in_executor(None, pool.shutdown)
        pending = [job.id for job in self._jobs.values() if not job.terminal]
        return {
            "drained": True,
            "jobs": self.status_counts(),
            "pending": len(pending),
            "pending_ids": pending,
        }

    # ------------------------------------------------------------------
    # Submission + lookup
    # ------------------------------------------------------------------
    def submit(self, kind: str, tenant: str, params: Dict) -> Job:
        """Queue one validated job (see :func:`protocol.parse_submit`)."""
        if self._draining:
            raise Draining("server is draining; no new jobs accepted")
        if self._queue.qsize() >= self.max_queued:
            raise QueueFull(
                f"submission queue full ({self.max_queued} jobs queued)"
            )
        job = Job(
            id=f"j{next(self._ids):06d}", kind=kind, tenant=tenant,
            params=params,
        )
        self._jobs[job.id] = job
        self._queue.put_nowait(job)
        return job

    def get(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        return list(self._jobs.values())

    def status_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for job in self._jobs.values():
            counts[job.status] = counts.get(job.status, 0) + 1
        return counts

    def bucket(self, tenant: str) -> TokenBucket:
        if tenant not in self._buckets:
            self._buckets[tenant] = TokenBucket(
                self.tenant_tokens, self.tenant_refill
            )
        return self._buckets[tenant]

    def stats(self) -> Dict:
        """The ``/v1/stats`` document: one resident world, observable."""
        return {
            "schema": "repro-service-stats/1",
            "backend": self.backend,
            "mode": self.mode,
            "workers": self.workers,
            "draining": self._draining,
            "uptime_seconds": round(time.monotonic() - self.started_at, 3),
            "queued": 0 if self._queue is None else self._queue.qsize(),
            "jobs": self.status_counts(),
            "cache": dict(self.cache_totals),
            "memo_entries": len(self._memo),
            "store": None if self.store is None else {
                "root": self.store.root,
                "shards": getattr(self.store, "shards", None),
                "traffic": self.store.totals(),
                "traffic_by_shard": (
                    self.store.shard_totals()
                    if hasattr(self.store, "shard_totals")
                    else None
                ),
            },
            "tenants": {
                tenant: round(bucket.available(), 1)
                for tenant, bucket in sorted(self._buckets.items())
            },
        }

    # ------------------------------------------------------------------
    # Event streaming
    # ------------------------------------------------------------------
    async def next_events(self, job: Job, cursor: int) -> List[Dict]:
        """Events past ``cursor``; waits unless the job is terminal."""
        async with self._cond:
            while len(job.events) <= cursor and not job.terminal:
                await self._cond.wait()
        return job.events[cursor:]

    def _wake(self) -> None:
        """Notify event-stream watchers (called on the loop thread)."""
        import asyncio

        asyncio.ensure_future(self._notify())

    async def _notify(self) -> None:
        async with self._cond:
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    async def _worker(self) -> None:
        while True:
            job = await self._queue.get()
            try:
                if job is None:
                    return
                await self._run(job)
            finally:
                self._queue.task_done()

    def _emitter(self, job: Job) -> Callable[[Dict], None]:
        """A threadsafe event appender usable from executor threads."""

        def emit(event: Dict) -> None:
            job.events.append(dict(event))
            self._loop.call_soon_threadsafe(self._wake)

        return emit

    async def _run(self, job: Job) -> None:
        emit = self._emitter(job)
        bucket = self.bucket(job.tenant)
        available = bucket.available()
        if available < 1.0:
            job.started = job.finished = time.monotonic()
            self._finish(
                job,
                {
                    "status": INCONCLUSIVE,
                    "detail": (
                        "tenant budget exhausted: 0 state tokens available "
                        f"(bucket refills at "
                        f"{self.tenant_refill:.0f} tokens/s)"
                    ),
                    "result": None,
                    "charged": 0,
                    "cache": {},
                },
                emit,
            )
            return
        state_cap = min(
            job.params.get("max_states") or self.job_max_states,
            int(available),
        )
        max_seconds = job.params.get("budget_seconds") or self.job_max_seconds
        job.status = RUNNING
        job.started = time.monotonic()
        emit({"event": "status", "status": RUNNING, "job": job.id})
        if self.mode == "thread":
            from repro.pipeline.context import AnalysisContext

            context = AnalysisContext(
                backend=job.params.get("backend") or self.backend,
                budget=Budget(max_states=state_cap, max_seconds=max_seconds),
                store=self.store,
                recorder=StreamRecorder(emit),
                memo=self._memo,
            )
            if self._incremental is None:
                from repro.pipeline.incremental import IncrementalIndex

                self._incremental = IncrementalIndex()
            # one resident index (single worker thread): snapshots taken
            # by earlier jobs replay in later delta jobs
            context._incremental = self._incremental
            outcome = await self._loop.run_in_executor(
                self._pool, _thread_job, job.kind, job.params, context, emit
            )
        else:
            task = {
                "kind": job.kind,
                "params": job.params,
                "backend": job.params.get("backend") or self.backend,
                "store_root": self.store_root,
                "store_shards": self.shards,
                "remote_root": self.remote_store,
                "max_states": state_cap,
                "max_seconds": max_seconds,
            }
            outcome = await self._loop.run_in_executor(
                self._pool, _process_job, task
            )
            for event in outcome.pop("events", []):
                emit(event)
            # surface the worker's store traffic alongside the (fresh,
            # hence hit-free) in-memory counters so warmth stays visible
            cache = dict(outcome.get("cache") or {})
            for event, count in outcome.pop("store_traffic", {}).items():
                cache[f"store_{event}"] = count
            outcome["cache"] = cache
        bucket.drain(outcome["charged"])
        self._finish(job, outcome, emit)

    def _prune_jobs(self) -> None:
        """Retention policy: keep at most ``keep_jobs`` finished jobs.

        ``_jobs`` is submission-ordered, so the oldest terminal jobs
        (with their event lists and result payloads) go first; running
        and queued jobs are never touched.  Called on the loop thread
        whenever a job finishes, keeping a long-running server's
        memory bounded by the retention window, not by jobs served.
        """
        terminal = [job.id for job in self._jobs.values() if job.terminal]
        excess = len(terminal) - self.keep_jobs
        if excess > 0:
            for job_id in terminal[:excess]:
                del self._jobs[job_id]

    def _finish(self, job: Job, outcome: Dict, emit) -> None:
        job.status = outcome["status"]
        job.detail = outcome["detail"]
        job.result = outcome["result"]
        job.charged_states = outcome["charged"]
        job.cache = dict(outcome.get("cache") or {})
        job.finished = time.monotonic()
        for key in ("hits", "misses"):
            self.cache_totals[key] += job.cache.get(key, 0)
        self._prune_jobs()
        emit(
            {
                "event": "status",
                "status": job.status,
                "job": job.id,
                "detail": job.detail,
                "charged_states": job.charged_states,
            }
        )
        # wake watchers even though no further events will arrive
        self._loop.call_soon_threadsafe(self._wake)
