"""Wire protocol of the synthesis service: request validation + codecs.

Every byte that crosses the HTTP boundary is defined here, so the
server (:mod:`repro.service.server`), the job engine
(:mod:`repro.service.jobs`), the load-test harness
(``benchmarks/bench_service.py``) and the CI smoke script agree on one
schema.  Result payloads reuse the repo-wide JSON codecs from
:mod:`repro.pipeline.serialize` (netlists through
:mod:`repro.netlist.io`, hazard verdicts through the detached hazard
codec, Table-1 rows through :func:`pipeline_result_to_json`), so a
service response is byte-comparable to the matching CLI artifact.

Submit request (``POST /v1/jobs``)::

    {"kind": "synth" | "verify" | "table1" | "diff" | "corpus",
     "spec": "<.g text>",            # synth/verify only
     "corpus": {...},                # corpus only: repro-corpus-spec/1
     "name": "design",               # optional label
     "tenant": "team-a",             # optional (or X-Tenant header)
     "options": {...}}               # per-kind knobs, all optional

Corpus sweep jobs carry an inline ``repro-corpus-spec/1`` document
(see docs/FORMATS.md): the admitted design stream runs through the
batch machinery and the result is the deterministic batch manifest
plus the generation stats.  ``options.seed`` re-seeds the spec,
``options.max_states`` / ``options.timeout_seconds`` bound each design
separately; the admitted-design count is capped per job.

Delta re-synthesis (synth/verify only): replace ``spec`` with a
``base_job`` id plus a ``delta`` -- edit text lines (``"add a+ b-"``,
``"drop a+ b-"``, ``"retype x internal"``, ``"marking p1 p2"``), a list
of such lines, or the ``{"ops": [...]}`` JSON form of
:class:`repro.pipeline.delta.SpecDelta`.  The job inherits the base
job's specification and options (explicit options override) and runs
incrementally against the resident caches; the result is byte-identical
to synthesising the edited specification from scratch.

Any malformed body -- not JSON, not an object, unknown kind, unknown
option, wrong type -- raises :class:`ProtocolError`, which the server
maps to HTTP 400 with ``{"error": ...}``.  Validation happens entirely
at submit time so a queued job can no longer fail on its parameters.

Event streams (``GET /v1/jobs/<id>/events``) are NDJSON by default
(one JSON object per line) or SSE (``?format=sse``); each event carries
an ``"event"`` discriminator (``status`` / ``stage`` / ``phase`` /
``design`` / ``profile``).
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Tuple

#: job kinds the service accepts, mapping 1:1 onto library entry points
#: (synth/verify -> ``Pipeline.run``, table1 -> ``run_table1``,
#: diff -> ``differential_campaign``, corpus -> ``run_batch(corpus=...)``)
KINDS = ("synth", "verify", "table1", "diff", "corpus")

#: largest admitted-design count one corpus job may request
MAX_CORPUS_COUNT = 5000

#: netlist styles, mirroring the CLI ``--style`` vocabulary
STYLES = ("C", "RS", "RS-NOR", "C-INV")

#: largest accepted request body (a fuzz-scale ``.g`` is a few KB)
MAX_BODY_BYTES = 8 * 1024 * 1024

_SHARE_VALUES = (False, True, "optimal")


class ProtocolError(ValueError):
    """A malformed request: reported as HTTP 400, never queued."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ProtocolError(message)


def _known_backends() -> Tuple[str, ...]:
    from repro.pipeline.backends import available_backends

    return tuple(available_backends())


def _check_backend(value) -> Optional[str]:
    if value is None:
        return None
    names = _known_backends()
    _require(
        isinstance(value, str) and value in names,
        f"unknown backend {value!r}; registered: {', '.join(names)}",
    )
    return value


def _check_int(value, name: str, minimum: int = 1) -> int:
    _require(
        isinstance(value, int) and not isinstance(value, bool)
        and value >= minimum,
        f"{name} must be an integer >= {minimum}",
    )
    return value


def _check_number(value, name: str) -> float:
    _require(
        isinstance(value, (int, float)) and not isinstance(value, bool)
        and value > 0,
        f"{name} must be a positive number",
    )
    return float(value)


def _check_options(options, allowed) -> Dict:
    if options is None:
        return {}
    _require(isinstance(options, dict), "options must be an object")
    unknown = sorted(set(options) - set(allowed))
    _require(
        not unknown,
        f"unknown option(s): {', '.join(unknown)}; "
        f"allowed: {', '.join(sorted(allowed))}",
    )
    return options


def _check_delta(value) -> Dict:
    from repro.pipeline.delta import DeltaError, SpecDelta

    try:
        if isinstance(value, dict):
            delta = SpecDelta.from_json(value)
        elif isinstance(value, str) or (
            isinstance(value, list)
            and all(isinstance(item, str) for item in value)
        ):
            delta = SpecDelta.parse(value)
        else:
            raise ProtocolError(
                "delta must be edit text, a list of edit lines or an "
                "{'ops': [...]} object"
            )
    except DeltaError as exc:
        raise ProtocolError(f"bad delta: {exc}") from exc
    _require(bool(delta.ops), "delta must contain at least one edit")
    return delta.to_json()


def _synth_params(body: Dict, kind: str) -> Dict:
    spec = body.get("spec")
    base_job = body.get("base_job")
    delta = body.get("delta")
    if base_job is not None or delta is not None:
        _require(
            base_job is not None and delta is not None,
            "delta re-synthesis needs both 'base_job' and 'delta'",
        )
        _require(
            isinstance(base_job, str) and 0 < len(base_job) <= 120,
            "base_job must be a job id string",
        )
        _require(
            spec is None,
            "'spec' and 'base_job' are mutually exclusive "
            "(the specification comes from the base job)",
        )
        delta = _check_delta(delta)
    else:
        _require(
            isinstance(spec, str) and spec.strip(),
            "synth/verify jobs need a non-empty 'spec' (.g text)",
        )
    options = _check_options(
        body.get("options"),
        (
            "style", "share_gates", "verify", "max_models", "max_states",
            "backend", "budget_seconds", "verify_max_states",
        ),
    )
    params = {
        "spec_text": spec,
        "name": _job_name(body),
        "style": options.get("style", "C"),
        "share_gates": options.get("share_gates", False),
        # verify jobs always model-check; synth jobs may opt out
        "verify": bool(options.get("verify", True)) or kind == "verify",
        "max_models": _check_int(options.get("max_models", 400), "max_models"),
        "max_states": _check_int(
            options.get("max_states", 200_000), "max_states"
        ),
        "verify_max_states": _check_int(
            options.get("verify_max_states", 500_000), "verify_max_states"
        ),
        "backend": _check_backend(options.get("backend")),
        "budget_seconds": (
            None
            if options.get("budget_seconds") is None
            else _check_number(options["budget_seconds"], "budget_seconds")
        ),
    }
    _require(params["style"] in STYLES, f"style must be one of {STYLES}")
    _require(
        params["share_gates"] in _SHARE_VALUES,
        "share_gates must be false, true or 'optimal'",
    )
    if base_job is not None:
        params["base_job"] = base_job
        params["delta"] = delta
        # the server overlays these explicit fields onto the base job's
        # params before queueing (underscore keys are dropped there)
        params["_explicit_options"] = sorted(options)
        params["_explicit_name"] = "name" in body
    return params


def _table1_params(body: Dict, kind: str) -> Dict:
    from repro.bench.suite import BENCHMARKS

    options = _check_options(
        body.get("options"), ("designs", "verify", "backend", "jobs")
    )
    designs = options.get("designs")
    if designs is not None:
        _require(
            isinstance(designs, list)
            and all(isinstance(name, str) for name in designs)
            and designs,
            "designs must be a non-empty list of benchmark names",
        )
        unknown = sorted(set(designs) - set(BENCHMARKS))
        _require(
            not unknown,
            f"unknown design(s): {', '.join(unknown)}; "
            f"available: {', '.join(sorted(BENCHMARKS))}",
        )
    return {
        "name": _job_name(body, default="table1"),
        "designs": designs,
        "verify": bool(options.get("verify", True)),
        "backend": _check_backend(options.get("backend")),
        "jobs": (
            None
            if options.get("jobs") is None
            else _check_int(options["jobs"], "jobs")
        ),
    }


def _diff_params(body: Dict, kind: str) -> Dict:
    options = _check_options(
        body.get("options"),
        ("count", "seed", "backend", "max_states", "max_seconds_each"),
    )
    count = _check_int(options.get("count", 50), "count")
    _require(count <= 5000, "count must be <= 5000 per job")
    seed = options.get("seed", 0)
    _require(
        isinstance(seed, int) and not isinstance(seed, bool),
        "seed must be an integer",
    )
    return {
        "name": _job_name(body, default="diff"),
        "count": count,
        "seed": seed,
        "backend": _check_backend(options.get("backend")) or "bitengine",
        "max_states": _check_int(
            options.get("max_states", 20_000), "max_states"
        ),
        "max_seconds_each": _check_number(
            options.get("max_seconds_each", 30.0), "max_seconds_each"
        ),
    }


def _corpus_params(body: Dict, kind: str) -> Dict:
    """A corpus sweep: an inline repro-corpus-spec/1 + batch knobs.

    The spec document is validated (and normalized) at submit time via
    :meth:`repro.corpus.CorpusSpec.from_json`, so a queued corpus job
    can no longer fail on its recipe; the per-job design count is
    capped at :data:`MAX_CORPUS_COUNT`.
    """
    from repro.corpus import CorpusSpec, CorpusSpecError

    document = body.get("corpus")
    _require(
        isinstance(document, dict),
        "corpus jobs need a 'corpus' object (repro-corpus-spec/1)",
    )
    try:
        spec = CorpusSpec.from_json(document)
    except CorpusSpecError as exc:
        raise ProtocolError(f"bad corpus spec: {exc}") from exc
    _require(
        spec.count <= MAX_CORPUS_COUNT,
        f"corpus count must be <= {MAX_CORPUS_COUNT} per job",
    )
    options = _check_options(
        body.get("options"),
        (
            "seed", "backend", "style", "verify", "max_states",
            "timeout_seconds", "jobs",
        ),
    )
    seed = options.get("seed")
    if seed is not None:
        _require(
            isinstance(seed, int) and not isinstance(seed, bool)
            and seed >= 0,
            "seed must be a non-negative integer",
        )
        spec = spec.with_seed(seed)
    style = options.get("style", "C")
    _require(style in STYLES, f"style must be one of {STYLES}")
    return {
        "name": _job_name(body, default="corpus"),
        "corpus": spec.to_json(),
        "style": style,
        "verify": bool(options.get("verify", True)),
        "backend": _check_backend(options.get("backend")),
        "max_states": _check_int(
            options.get("max_states", 20_000), "max_states"
        ),
        "timeout_seconds": (
            None
            if options.get("timeout_seconds") is None
            else _check_number(options["timeout_seconds"], "timeout_seconds")
        ),
        "jobs": (
            None
            if options.get("jobs") is None
            else _check_int(options["jobs"], "jobs")
        ),
    }


def _job_name(body: Dict, default: str = "job") -> str:
    name = body.get("name", default)
    _require(
        isinstance(name, str) and 0 < len(name) <= 120,
        "name must be a short non-empty string",
    )
    return name


_PARSERS = {
    "synth": _synth_params,
    "verify": _synth_params,
    "table1": _table1_params,
    "diff": _diff_params,
    "corpus": _corpus_params,
}

_TOP_LEVEL_KEYS = {
    "kind", "spec", "corpus", "name", "tenant", "options", "base_job", "delta",
}


def parse_submit(
    body: bytes, default_tenant: str = "default"
) -> Tuple[str, str, Dict]:
    """Validate one submit body -> ``(kind, tenant, normalized params)``.

    Raises :class:`ProtocolError` on any defect; a returned triple is
    fully normalized (defaults applied, types checked) and safe to
    queue.
    """
    _require(len(body) <= MAX_BODY_BYTES, "request body too large")
    try:
        document = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"body is not valid JSON: {exc}") from exc
    _require(isinstance(document, dict), "body must be a JSON object")
    unknown = sorted(set(document) - _TOP_LEVEL_KEYS)
    _require(not unknown, f"unknown field(s): {', '.join(unknown)}")
    kind = document.get("kind")
    _require(kind in KINDS, f"kind must be one of {', '.join(KINDS)}")
    if kind not in ("synth", "verify"):
        _require(
            "base_job" not in document and "delta" not in document,
            "base_job/delta apply only to synth/verify jobs",
        )
    if kind != "corpus":
        _require(
            "corpus" not in document, "'corpus' applies only to corpus jobs"
        )
    else:
        _require(
            "spec" not in document,
            "corpus jobs take a 'corpus' object, not a 'spec'",
        )
    tenant = document.get("tenant", default_tenant)
    _require(
        isinstance(tenant, str) and 0 < len(tenant) <= 120,
        "tenant must be a short non-empty string",
    )
    return kind, tenant, _PARSERS[kind](document, kind)


# ----------------------------------------------------------------------
# Response documents
# ----------------------------------------------------------------------
def job_to_json(job) -> Dict:
    """The job status document (``GET /v1/jobs/<id>``)."""
    return {
        "schema": "repro-service-job/1",
        "id": job.id,
        "kind": job.kind,
        "name": job.params.get("name", ""),
        "tenant": job.tenant,
        "status": job.status,
        "detail": job.detail,
        "events": len(job.events),
        "cache": dict(job.cache),
        "charged_states": job.charged_states,
        "seconds": None if job.seconds is None else round(job.seconds, 6),
        "result_ready": job.result is not None,
    }


def error_to_json(message: str) -> Dict:
    return {"error": message}


def encode_ndjson(event: Dict) -> bytes:
    """One NDJSON line (the default event-stream framing)."""
    return (json.dumps(event, sort_keys=True) + "\n").encode("utf-8")


def encode_sse(event: Dict) -> bytes:
    """One Server-Sent-Events frame (``?format=sse``)."""
    return (
        f"event: {event.get('event', 'message')}\n"
        f"data: {json.dumps(event, sort_keys=True)}\n\n"
    ).encode("utf-8")


def dumps_canonical(document: Dict) -> str:
    """Canonical JSON text (sorted keys) -- what CI byte-compares."""
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


__all__ = [
    "KINDS",
    "MAX_BODY_BYTES",
    "MAX_CORPUS_COUNT",
    "ProtocolError",
    "STYLES",
    "dumps_canonical",
    "encode_ndjson",
    "encode_sse",
    "error_to_json",
    "job_to_json",
    "parse_submit",
]
