"""Stdlib-only asyncio HTTP server: synthesis as a resident service.

One process, one :class:`~repro.service.jobs.JobManager`, many
concurrent clients.  The HTTP layer is deliberately minimal --
``asyncio.start_server`` plus a hand-rolled HTTP/1.1 request parser
(request line, headers, ``Content-Length`` body) -- so the service
stays dependency-free like the rest of the repo.

Connections are persistent per HTTP/1.1 semantics: a client can pump
its whole submit/poll/result conversation through one socket.  A
``Connection: close`` request header opts out, HTTP/1.0 clients
default to one-shot, event streams close when the stream ends (their
length is unknown up front), and once a graceful shutdown has begun
every response carries ``Connection: close`` so draining is never
held up by idle keep-alive sockets.  Between requests an idle
keep-alive socket is dropped after :data:`KEEPALIVE_IDLE_SECONDS`.

Endpoints (all JSON; see :mod:`repro.service.protocol` for schemas)::

    GET  /healthz               liveness + identity
    GET  /v1/stats              resident-world stats (queue, caches,
                                store traffic, tenant buckets)
    POST /v1/jobs               submit (body: the submit document)
                                (``base_job`` + ``delta`` submits a
                                delta re-synthesis of a finished job)
    GET  /v1/jobs               all jobs, summary documents
    GET  /v1/jobs/<id>          one job's status document
    GET  /v1/jobs/<id>/result   terminal result (409 while running)
    GET  /v1/jobs/<id>/events   progress stream: NDJSON (default) or
                                SSE (``?format=sse``), live until the
                                job reaches a terminal status
    POST /v1/shutdown           graceful drain, then stop the server

Status codes: 400 malformed body (:class:`ProtocolError`), 404 unknown
job/path, 405 wrong method, 409 result not ready, 413 oversized body,
429 queue full, 503 draining.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.service import jobs as jobs_mod
from repro.service.jobs import Draining, JobManager, QueueFull
from repro.service.protocol import (
    MAX_BODY_BYTES,
    ProtocolError,
    encode_ndjson,
    encode_sse,
    error_to_json,
    job_to_json,
    parse_submit,
)

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}

#: idle keep-alive sockets are dropped after this many seconds between
#: requests (generous: clients poll far more often than this)
KEEPALIVE_IDLE_SECONDS = 75.0


class HttpError(Exception):
    """Maps straight to one JSON error response."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


async def _read_request(
    reader: asyncio.StreamReader, idle_timeout: Optional[float] = None
) -> Optional[Tuple[str, str, str, Dict[str, str], bytes]]:
    """Parse one request -> (method, target, version, headers, body) or None.

    ``idle_timeout`` bounds the wait for the *first byte* of a
    follow-up request on a kept-alive socket; an expiry reads as
    end-of-connection (None), not an error.
    """
    try:
        if idle_timeout is not None:
            line = await asyncio.wait_for(reader.readline(), idle_timeout)
        else:
            line = await reader.readline()
    except ValueError:
        # StreamReader's line-length limit (64 KiB) tripped
        raise HttpError(400, "request line too long") from None
    except (ConnectionError, asyncio.TimeoutError):
        return None
    if not line:
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise HttpError(400, "malformed request line")
    method, target, version = parts[0].upper(), parts[1], parts[2]
    headers: Dict[str, str] = {}
    while True:
        try:
            raw = await reader.readline()
        except ValueError:
            raise HttpError(400, "header line too long") from None
        if raw in (b"\r\n", b"\n", b""):
            break
        if len(headers) > 100:
            raise HttpError(400, "too many headers")
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {raw!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpError(400, "malformed Content-Length") from None
        if length < 0:
            raise HttpError(400, "malformed Content-Length")
        if length > MAX_BODY_BYTES:
            raise HttpError(413, "request body too large")
        body = await reader.readexactly(length)
    return method, target, version, headers, body


def _wants_keep_alive(version: str, headers: Dict[str, str]) -> bool:
    """HTTP/1.1 defaults to persistent, HTTP/1.0 to one-shot."""
    connection = headers.get("connection", "").lower()
    if version == "HTTP/1.0":
        return connection == "keep-alive"
    return connection != "close"


def _response_head(
    status: int, content_type: str, length: Optional[int],
    close: bool = True,
) -> bytes:
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        # a response without a Content-Length (event stream) is
        # delimited by the connection closing, so it must never be
        # marked persistent
        "Connection: close" if close or length is None else "Connection: keep-alive",
    ]
    if length is not None:
        lines.append(f"Content-Length: {length}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


class ServiceServer:
    """The HTTP face of one :class:`JobManager`."""

    def __init__(
        self,
        manager: JobManager,
        host: str = "127.0.0.1",
        port: int = 8080,
    ):
        self.manager = manager
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopped = asyncio.Event()
        #: serialises shutdown: POST /v1/shutdown and the signal
        #: handlers may race, and the manager must drain exactly once
        self._shutdown_lock = asyncio.Lock()
        self.shutdown_report: Optional[Dict] = None

    # ------------------------------------------------------------------
    async def start(self) -> None:
        await self.manager.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_until_shutdown(self) -> Dict:
        """Block until a graceful shutdown completed; returns its report."""
        await self._stopped.wait()
        return self.shutdown_report or {"drained": False, "pending": -1}

    async def shutdown(self) -> Dict:
        """Drain the manager, close the listener, release the waiters.

        Idempotent and race-free: concurrent callers (a second POST, a
        SIGINT during a POST) queue on the lock and get the first
        drain's report instead of draining twice.
        """
        async with self._shutdown_lock:
            if self.shutdown_report is None:
                self.shutdown_report = await self.manager.drain()
                if self._server is not None:
                    self._server.close()
                    await self._server.wait_closed()
                self._stopped.set()
        return self.shutdown_report

    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one connection: a loop of requests until it closes.

        ``keep`` is False while a request is still being parsed (a
        parse error leaves the stream position unreliable, so those
        responses always close) and is recomputed per request from the
        HTTP version and ``Connection`` header; a begun shutdown
        forces the connection shut after the in-flight response.
        """
        try:
            first = True
            while True:
                keep = False
                try:
                    request = await _read_request(
                        reader, None if first else KEEPALIVE_IDLE_SECONDS
                    )
                    if request is None:
                        return
                    first = False
                    method, target, version, headers, body = request
                    keep = (
                        _wants_keep_alive(version, headers)
                        and self.shutdown_report is None
                    )
                    streamed = await self._route(
                        writer, method, target, headers, body, keep
                    )
                    if streamed or not keep or self.shutdown_report is not None:
                        return
                except HttpError as error:
                    await self._send_json(
                        writer, error.status, error_to_json(error.message),
                        keep=keep,
                    )
                    if not keep:
                        return
                except (ConnectionError, asyncio.IncompleteReadError):
                    return
                except Exception as error:  # never kill the accept loop
                    print(f"repro-si serve: error: {error!r}", file=sys.stderr)
                    try:
                        await self._send_json(
                            writer, 500, error_to_json("internal server error")
                        )
                    except (ConnectionError, OSError):
                        pass
                    return
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _send_json(
        self, writer: asyncio.StreamWriter, status: int, document: Dict,
        keep: bool = False,
    ) -> None:
        payload = (json.dumps(document, sort_keys=True) + "\n").encode("utf-8")
        writer.write(
            _response_head(
                status, "application/json", len(payload), close=not keep
            )
            + payload
        )
        await writer.drain()

    # ------------------------------------------------------------------
    async def _route(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        target: str,
        headers: Dict[str, str],
        body: bytes,
        keep: bool,
    ) -> bool:
        """Dispatch one request; returns True when the response was a
        stream (the connection is already committed to closing)."""
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        query = parse_qs(split.query)
        if path == "/healthz":
            self._expect(method, "GET")
            await self._send_json(
                writer,
                200,
                {
                    "status": "ok",
                    "service": "repro-si",
                    "backend": self.manager.backend,
                    "mode": self.manager.mode,
                },
                keep=keep,
            )
        elif path == "/v1/stats":
            self._expect(method, "GET")
            await self._send_json(writer, 200, self.manager.stats(), keep=keep)
        elif path == "/v1/jobs":
            if method == "POST":
                await self._submit(writer, headers, body, keep)
            elif method == "GET":
                await self._send_json(
                    writer,
                    200,
                    {
                        "jobs": [
                            job_to_json(job) for job in self.manager.jobs()
                        ]
                    },
                    keep=keep,
                )
            else:
                raise HttpError(405, "use GET or POST")
        elif path == "/v1/shutdown":
            self._expect(method, "POST")
            report = await self.shutdown()
            await self._send_json(writer, 200, report)
        elif path.startswith("/v1/jobs/"):
            return await self._job_route(writer, method, path, query, keep)
        else:
            raise HttpError(404, f"no such path: {path}")
        return False

    @staticmethod
    def _expect(method: str, expected: str) -> None:
        if method != expected:
            raise HttpError(405, f"use {expected}")

    async def _submit(
        self, writer: asyncio.StreamWriter, headers: Dict[str, str],
        body: bytes, keep: bool = False,
    ) -> None:
        try:
            kind, tenant, params = parse_submit(
                body, default_tenant=headers.get("x-tenant", "default")
            )
        except ProtocolError as error:
            raise HttpError(400, str(error)) from error
        if params.get("base_job"):
            params = self._resolve_base(kind, params)
        try:
            job = self.manager.submit(kind, tenant, params)
        except Draining as error:
            raise HttpError(503, str(error)) from error
        except QueueFull as error:
            raise HttpError(429, str(error)) from error
        await self._send_json(writer, 202, job_to_json(job), keep=keep)

    def _resolve_base(self, kind: str, params: Dict) -> Dict:
        """Expand a ``base_job`` + ``delta`` submit against the registry.

        The new job inherits the base job's specification text and
        options; explicitly supplied options (and name) override.  A
        base that itself was a delta job chains: its edit ops are
        prepended so the combined delta applies to the original
        specification.  Resolution happens before queueing, so a bad
        base id is HTTP 400, never a queued-then-failed job.
        """
        base = self.manager.get(params["base_job"])
        if base is None:
            raise HttpError(400, f"base_job {params['base_job']!r} not found")
        if base.kind not in ("synth", "verify"):
            raise HttpError(
                400,
                f"base_job {base.id} is a {base.kind} job; delta "
                "re-synthesis needs a synth or verify base",
            )
        merged = dict(base.params)
        for key in params.get("_explicit_options") or ():
            merged[key] = params[key]
        if params.get("_explicit_name"):
            merged["name"] = params["name"]
        else:
            merged["name"] = f"{base.params.get('name', 'job')}+edit"
        if kind == "verify":
            merged["verify"] = True
        base_delta = base.params.get("delta")
        if base_delta:
            merged["delta"] = {
                "ops": list(base_delta["ops"]) + list(params["delta"]["ops"])
            }
        else:
            merged["delta"] = params["delta"]
        merged["base_job"] = params["base_job"]
        merged.pop("_explicit_options", None)
        merged.pop("_explicit_name", None)
        return merged

    async def _job_route(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        query: Dict,
        keep: bool,
    ) -> bool:
        parts = path.split("/")  # ['', 'v1', 'jobs', '<id>', ...]
        job = self.manager.get(parts[3])
        if job is None:
            raise HttpError(404, f"no such job: {parts[3]}")
        tail = parts[4:]
        if not tail:
            self._expect(method, "GET")
            await self._send_json(writer, 200, job_to_json(job), keep=keep)
        elif tail == ["result"]:
            self._expect(method, "GET")
            if not job.terminal:
                raise HttpError(
                    409, f"job {job.id} is {job.status}; result not ready"
                )
            await self._send_json(
                writer,
                200,
                {
                    "id": job.id,
                    "status": job.status,
                    "detail": job.detail,
                    "result": job.result,
                },
                keep=keep,
            )
        elif tail == ["events"]:
            self._expect(method, "GET")
            await self._stream_events(writer, job, query)
            return True
        else:
            raise HttpError(404, f"no such path: {path}")
        return False

    async def _stream_events(
        self, writer: asyncio.StreamWriter, job, query: Dict
    ) -> None:
        sse = query.get("format", ["ndjson"])[0] == "sse"
        encode = encode_sse if sse else encode_ndjson
        content_type = (
            "text/event-stream" if sse else "application/x-ndjson"
        )
        writer.write(_response_head(200, content_type, None))
        await writer.drain()
        cursor = 0
        while True:
            batch = await self.manager.next_events(job, cursor)
            for event in batch:
                writer.write(encode(event))
            await writer.drain()
            cursor += len(batch)
            if job.terminal and len(job.events) <= cursor:
                return


def serve(
    host: str = "127.0.0.1",
    port: int = 8080,
    store: Optional[str] = None,
    shards: Optional[int] = None,
    remote_store: Optional[str] = None,
    backend: Optional[str] = None,
    workers: int = 1,
    tenant_tokens: float = jobs_mod.DEFAULT_TENANT_TOKENS,
    tenant_refill: float = jobs_mod.DEFAULT_TENANT_REFILL,
    job_max_states: int = jobs_mod.DEFAULT_JOB_STATES,
    job_max_seconds: Optional[float] = None,
    max_queued: int = 256,
    memo_entries: int = jobs_mod.DEFAULT_MEMO_ENTRIES,
    keep_jobs: int = jobs_mod.DEFAULT_KEEP_JOBS,
    port_file: Optional[str] = None,
) -> int:
    """Run the server until a graceful shutdown; the CLI entry point.

    Returns the process exit code: 0 for a clean drain (no pending
    jobs), 1 when jobs leaked past the drain.  ``port 0`` binds an
    ephemeral port; ``port_file`` publishes the bound port for scripts.
    ``shards``/``remote_store`` open the store root through the sharded
    composition (:mod:`repro.pipeline.shard`), so one server can sit on
    the same sharded root a ``repro-si batch --shards`` sweep warmed.
    SIGINT/SIGTERM trigger the same graceful drain as ``POST
    /v1/shutdown``.
    """

    async def _amain() -> int:
        manager = JobManager(
            store=store,
            shards=shards,
            remote_store=remote_store,
            backend=backend,
            workers=workers,
            tenant_tokens=tenant_tokens,
            tenant_refill=tenant_refill,
            job_max_states=job_max_states,
            job_max_seconds=job_max_seconds,
            max_queued=max_queued,
            memo_entries=memo_entries,
            keep_jobs=keep_jobs,
        )
        server = ServiceServer(manager, host=host, port=port)
        await server.start()
        print(
            f"repro-si serve: listening on http://{host}:{server.port} "
            f"(backend {manager.backend}, {manager.mode} executor, "
            f"store {store or 'none'})",
            flush=True,
        )
        if port_file:
            with open(port_file, "w", encoding="utf-8") as handle:
                handle.write(f"{server.port}\n")
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(
                    signum,
                    lambda: asyncio.ensure_future(server.shutdown()),
                )
            except (NotImplementedError, RuntimeError):
                pass  # non-Unix event loops
        report = await server.serve_until_shutdown()
        pending = report.get("pending", 0)
        print(
            "repro-si serve: "
            + (
                f"clean shutdown ({sum(report['jobs'].values())} job(s), "
                "0 pending)"
                if not pending
                else f"shutdown with {pending} pending job(s)"
            ),
            flush=True,
        )
        return 0 if not pending else 1

    return asyncio.run(_amain())


__all__ = ["HttpError", "ServiceServer", "serve"]
