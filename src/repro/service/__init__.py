"""Synthesis-as-a-service: a resident asyncio job server.

The ``repro-si serve`` verb (and the :func:`repro.service.server.serve`
entry point) turns the staged pipeline into a long-running process: one
shared :class:`~repro.pipeline.store.ArtifactStore` plus one in-memory
artifact memo serve every request, so the ~100x warm-store speedup that
a CLI invocation only enjoys within a single process is shared across
all concurrent clients.

Layers::

    protocol.py   wire formats: submit validation, job/result/event JSON
    jobs.py       async queue, tenant token buckets, thread/process
                  executors, streaming perf-recorder events
    server.py     the asyncio HTTP front end + graceful shutdown

See docs/API.md for the endpoint reference and
``benchmarks/bench_service.py`` for the load-test harness.
"""

from repro.service.jobs import (
    DONE,
    FAILED,
    INCONCLUSIVE,
    Job,
    JobManager,
    QUEUED,
    RUNNING,
    TokenBucket,
)
from repro.service.protocol import ProtocolError, parse_submit
from repro.service.server import ServiceServer, serve

__all__ = [
    "DONE",
    "FAILED",
    "INCONCLUSIVE",
    "Job",
    "JobManager",
    "ProtocolError",
    "QUEUED",
    "RUNNING",
    "ServiceServer",
    "TokenBucket",
    "parse_submit",
    "serve",
]
