"""Structural classes of Petri nets underlying STGs.

* **Marked graph**: every place has at most one input and one output
  transition -- no choice at all.  Yu & Subrahmanyam's method [14] is
  restricted to this class; the paper's method is not, which Example 1
  (an input choice) exercises.
* **Free choice**: if a place has several output transitions, it is the
  unique input place of each of them -- choices are "clean".
* **Live and safe** (on the explored reachability graph): every
  transition remains fireable from every reachable marking, and no
  firing ever violates 1-safeness.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set

from repro.stg.petrinet import PetriNet
from repro.stg.stg import STG


def is_marked_graph(net: PetriNet) -> bool:
    """Every place has at most one producer and one consumer."""
    return all(
        len(net.place_preset[p]) <= 1 and len(net.place_postset[p]) <= 1
        for p in net.places
    )


def is_free_choice(net: PetriNet) -> bool:
    """Every choice place is the unique input of its output transitions."""
    for place in net.places:
        consumers = net.place_postset[place]
        if len(consumers) > 1:
            for transition in consumers:
                if net.preset[transition] != {place}:
                    return False
    return True


def is_live_and_safe(stg: STG, max_states: int = 200_000) -> bool:
    """Liveness + safeness over the explored reachability graph.

    Safeness is enforced by exploration itself (unsafe nets raise).
    Liveness here is the practical check for cyclic specifications: from
    every reachable marking, every transition of the net can eventually
    fire.
    """
    from repro.stg.reachability import ReachabilityError, explore

    try:
        order, _, arcs = explore(stg, max_states=max_states)
    except ReachabilityError:
        return False

    successors: Dict[FrozenSet[str], List[FrozenSet[str]]] = {m: [] for m in order}
    fired_at: Dict[FrozenSet[str], Set[str]] = {m: set() for m in order}
    for source, transition, target in arcs:
        successors[source].append(target)
        fired_at[source].add(transition)

    all_transitions = set(stg.net.transitions)
    # backward fixpoint: can_fire[m] = transitions fireable now or later
    can_fire = {m: set(fired_at[m]) for m in order}
    changed = True
    while changed:
        changed = False
        for marking in order:
            merged = set(can_fire[marking])
            for target in successors[marking]:
                merged |= can_fire[target]
            if merged != can_fire[marking]:
                can_fire[marking] = merged
                changed = True
    return all(can_fire[m] == all_transitions for m in order)
