"""Parser for the classic ``.g`` (astg) STG format.

The dialect accepted here is the common core used by SIS and petrify::

    .model nak-pa
    .inputs  req ack
    .outputs r a
    .graph
    req+ r+            # arcs from transition req+ to transition r+
    r+ p0 a+           # several targets on one line
    p0 req-            # explicit place p0
    .marking { <req+,r+> p0 }
    .end

* Arcs between two transitions create an *implicit place*.
* Explicit places are ids that do not parse as signal transitions.
* The initial marking lists explicit places by name and implicit places
  as ``<source,target>`` pairs.
* ``.internal`` declares non-input signals that are not outputs.
* ``.initial a=1 b=0`` (an extension) seeds initial signal values for
  signals whose level cannot be inferred from the net.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.stg.petrinet import PetriNet
from repro.stg.stg import STG, parse_transition_id


def _is_transition_id(token: str) -> bool:
    try:
        parse_transition_id(token)
        return True
    except ValueError:
        return False


def implicit_place_name(source: str, target: str) -> str:
    """The canonical name for the implicit place between two transitions."""
    return f"<{source},{target}>"


def parse_g(text: str, name: str = "stg") -> STG:
    """Parse ``.g`` text into an :class:`~repro.stg.stg.STG`."""
    inputs: List[str] = []
    outputs: List[str] = []
    internal: List[str] = []
    initial_values: Dict[str, int] = {}
    graph_lines: List[List[str]] = []
    marking_tokens: List[str] = []
    model = name
    in_graph = False

    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        keyword = parts[0]
        if keyword == ".model" or keyword == ".name":
            model = parts[1]
            in_graph = False
        elif keyword == ".inputs":
            inputs += parts[1:]
            in_graph = False
        elif keyword == ".outputs":
            outputs += parts[1:]
            in_graph = False
        elif keyword == ".internal":
            internal += parts[1:]
            in_graph = False
        elif keyword == ".initial":
            for token in parts[1:]:
                signal, value = token.split("=")
                initial_values[signal] = int(value)
            in_graph = False
        elif keyword == ".graph":
            in_graph = True
        elif keyword == ".marking":
            body = line[len(".marking"):].strip()
            if body.startswith("{") and body.endswith("}"):
                body = body[1:-1]
            # tokens are either bare place names or <t1,t2> pairs (which
            # may contain spaces after the comma)
            import re as _re

            pairs = _re.findall(r"<[^>]*>", body)
            marking_tokens += pairs
            marking_tokens += _re.sub(r"<[^>]*>", " ", body).split()
            in_graph = False
        elif keyword in (".end", ".capacity", ".slowenv", ".dummy"):
            if keyword == ".dummy" and len(parts) > 1:
                raise ValueError(".dummy transitions are not supported")
            in_graph = keyword != ".end" and in_graph
            if keyword == ".end":
                break
        elif keyword.startswith("."):
            raise ValueError(f"unknown directive {keyword!r}")
        elif in_graph:
            graph_lines.append(parts)
        else:
            raise ValueError(f"unexpected line outside .graph: {line!r}")

    transitions: Set[str] = set()
    places: Set[str] = set()
    arcs: List[Tuple[str, str]] = []
    for parts in graph_lines:
        source = parts[0]
        if _is_transition_id(source):
            transitions.add(source)
        else:
            places.add(source)
        for target in parts[1:]:
            if _is_transition_id(target):
                transitions.add(target)
            else:
                places.add(target)

    for parts in graph_lines:
        source = parts[0]
        for target in parts[1:]:
            source_is_t = source in transitions
            target_is_t = target in transitions
            if source_is_t and target_is_t:
                place = implicit_place_name(source, target)
                places.add(place)
                arcs.append((source, place))
                arcs.append((place, target))
            else:
                arcs.append((source, target))

    marking: Set[str] = set()
    for token in marking_tokens:
        token = token.strip()
        if not token:
            continue
        if token.startswith("<") and token.endswith(">"):
            inner = token[1:-1]
            source, target = [t.strip() for t in inner.split(",")]
            place = implicit_place_name(source, target)
            if place not in places:
                raise ValueError(f"marking names unknown implicit place {token}")
            marking.add(place)
        else:
            if token not in places:
                raise ValueError(f"marking names unknown place {token!r}")
            marking.add(token)

    net = PetriNet(places, transitions, arcs)
    return STG(
        net,
        inputs=inputs,
        outputs=outputs,
        internal=internal,
        initial_marking=frozenset(marking),
        initial_values=initial_values,
        name=model,
    )


def load_g(path: str) -> STG:
    """Parse a ``.g`` file from disk."""
    with open(path) as handle:
        return parse_g(handle.read())
