"""Token-flow reachability: elaborating an STG into a state graph.

The reachability graph of a 1-safe STG, with each marking labelled by the
signal values at that marking, *is* the paper's state graph.  Signal
values are computed in two passes:

1. BFS over markings recording, per signal, the *parity* of its edges
   along the path from the initial marking (0 = even number of toggles).
   Reconvergent paths must agree on every signal's parity, otherwise the
   STG has no consistent state assignment.
2. The initial value of each signal is then inferred: if some marking at
   parity ``p`` enables a rising edge of ``s``, the value of ``s`` there
   is 0, so ``initial(s) = p xor 0``.  All such constraints must agree.
   Signals that never switch take their value from
   ``stg.initial_values`` (default 0 with a warning-free fallback).

The construction enforces 1-safeness (via the Petri net firing rule) and
an exploration bound to keep pathological inputs from running away.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro import perf
from repro.sg.graph import StateGraph
from repro.stg.petrinet import Marking, SafenessViolation
from repro.stg.stg import STG


class ReachabilityError(ValueError):
    """The STG is unbounded/unsafe, inconsistent, or too large."""


def explore(stg: STG, max_states: int = 200_000):
    """Enumerate reachable markings with per-signal parities.

    Returns ``(order, parities, arcs)`` where ``order`` maps each marking
    to a dense index (BFS discovery order), ``parities[marking]`` is a
    tuple over ``stg.signals`` of 0/1 toggle parities, and ``arcs`` lists
    ``(marking, transition, marking')``.
    """
    signals = stg.signals
    position = {s: i for i, s in enumerate(signals)}
    net = stg.net

    initial = stg.initial_marking
    zero = tuple(0 for _ in signals)
    order: Dict[Marking, int] = {initial: 0}
    parities: Dict[Marking, Tuple[int, ...]] = {initial: zero}
    arcs: List[Tuple[Marking, str, Marking]] = []
    queue: List[Marking] = [initial]
    head = 0
    while head < len(queue):
        marking = queue[head]
        head += 1
        parity = parities[marking]
        for transition in net.enabled(marking):
            try:
                after = net.fire(marking, transition)
            except SafenessViolation as exc:
                raise ReachabilityError(str(exc)) from exc
            event = stg.event_of(transition)
            i = position[event.signal]
            new_parity = parity[:i] + (parity[i] ^ 1,) + parity[i + 1 :]
            known = parities.get(after)
            if known is None:
                if len(order) >= max_states:
                    raise ReachabilityError(
                        f"more than {max_states} reachable markings"
                    )
                order[after] = len(order)
                parities[after] = new_parity
                queue.append(after)
            elif known != new_parity:
                raise ReachabilityError(
                    f"inconsistent state assignment: marking reached with "
                    f"signal parities {known} and {new_parity}"
                )
            arcs.append((marking, transition, after))
    return order, parities, arcs


def _infer_initial_values(stg: STG, parities, arcs) -> Dict[str, int]:
    """Initial signal values from edge-enabledness constraints."""
    values: Dict[str, Optional[int]] = {s: None for s in stg.signals}
    position = {s: i for i, s in enumerate(stg.signals)}
    for marking, transition, _ in arcs:
        event = stg.event_of(transition)
        parity = parities[marking][position[event.signal]]
        # value at this marking is event.value_before = initial ^ parity
        implied = event.value_before ^ parity
        known = values[event.signal]
        if known is None:
            values[event.signal] = implied
        elif known != implied:
            raise ReachabilityError(
                f"signal {event.signal!r} has no consistent initial value"
            )
    resolved: Dict[str, int] = {}
    for signal, value in values.items():
        explicit = stg.initial_values.get(signal)
        if value is None:
            resolved[signal] = explicit if explicit is not None else 0
        else:
            if explicit is not None and explicit != value:
                raise ReachabilityError(
                    f"declared initial value of {signal!r} ({explicit}) "
                    f"contradicts the net (inferred {value})"
                )
            resolved[signal] = value
    return resolved


@perf.timed("reachability")
def stg_to_state_graph(stg: STG, max_states: int = 200_000) -> StateGraph:
    """Build the state graph of an STG (markings become states ``m0, m1, ...``)."""
    order, parities, arcs = explore(stg, max_states=max_states)
    initial_values = _infer_initial_values(stg, parities, arcs)
    signals = stg.signals

    def state_name(marking: Marking) -> str:
        return f"m{order[marking]}"

    codes = {}
    for marking, parity in parities.items():
        codes[state_name(marking)] = tuple(
            initial_values[s] ^ parity[i] for i, s in enumerate(signals)
        )
    # Two differently-named transitions with the same signal edge can fire
    # between the same pair of markings; at the state-graph level that is
    # a single arc, so deduplicate.
    sg_arcs = sorted(
        {
            (state_name(source), stg.event_of(transition), state_name(target))
            for source, transition, target in arcs
        }
    )
    sg = StateGraph(
        signals,
        stg.inputs,
        codes,
        sg_arcs,
        state_name(stg.initial_marking),
        name=stg.name,
    )
    sg.check()
    return sg
