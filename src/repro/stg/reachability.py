"""Token-flow reachability: elaborating an STG into a state graph.

The reachability graph of a 1-safe STG, with each marking labelled by the
signal values at that marking, *is* the paper's state graph.  Signal
values are computed in two passes:

1. BFS over markings recording, per signal, the *parity* of its edges
   along the path from the initial marking (0 = even number of toggles).
   Reconvergent paths must agree on every signal's parity, otherwise the
   STG has no consistent state assignment.
2. The initial value of each signal is then inferred: if some marking at
   parity ``p`` enables a rising edge of ``s``, the value of ``s`` there
   is 0, so ``initial(s) = p xor 0``.  All such constraints must agree.
   Signals that never switch take their value from
   ``stg.initial_values`` (default 0 with a warning-free fallback).

The construction enforces 1-safeness (via the Petri net firing rule) and
an exploration bound to keep pathological inputs from running away.

Incremental replay
------------------
``explore`` can replay an :class:`ExplorationSnapshot` captured from a
previous run on an edited net.  A cached marking's successor list is
reused verbatim when no *dirty* transition (one whose preset/postset
changed between the nets) appears in it and no dirty transition is
enabled at that marking under the new net; otherwise the marking is
re-expanded from scratch.  Because the snapshot stores successors in
``net.enabled`` order and the BFS bookkeeping below is shared between
both paths, the replayed exploration discovers markings in *exactly* the
order a cold run would — state names ``m{i}``, codes, arcs, cap errors
and consistency errors are all byte-identical.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro import perf
from repro.sg.graph import StateGraph
from repro.stg.petrinet import Marking, PetriNet, SafenessViolation
from repro.stg.stg import STG


class ReachabilityError(ValueError):
    """The STG is unbounded/unsafe, inconsistent, or too large."""


class ExplorationSnapshot:
    """Cached marking expansions of a completed :func:`explore` run.

    Stores, per reached marking, its ``(transition, successor)`` pairs in
    ``net.enabled`` (sorted) order, plus the preset/postset of every
    transition of the net the snapshot was taken from — enough to decide,
    against an edited net, which expansions are still valid.  Parities
    are deliberately *not* cached: a signal retype reorders
    ``stg.signals``, so parities are recomputed during replay (cheap
    tuple surgery) while the expensive enabledness/firing work is reused.
    """

    __slots__ = ("successors", "preset", "postset", "initial")

    def __init__(
        self,
        successors: Dict[Marking, Tuple[Tuple[str, Marking], ...]],
        preset: Dict[str, FrozenSet[str]],
        postset: Dict[str, FrozenSet[str]],
        initial: Marking,
    ):
        self.successors = successors
        self.preset = preset
        self.postset = postset
        self.initial = initial

    @classmethod
    def capture(cls, stg: STG, order, arcs) -> "ExplorationSnapshot":
        """Capture from ``explore`` results (arcs are grouped per marking
        in expansion order, which is ``net.enabled`` order)."""
        successors: Dict[Marking, List[Tuple[str, Marking]]] = {m: [] for m in order}
        for marking, transition, after in arcs:
            successors[marking].append((transition, after))
        net = stg.net
        return cls(
            {m: tuple(pairs) for m, pairs in successors.items()},
            {t: frozenset(net.preset[t]) for t in net.transitions},
            {t: frozenset(net.postset[t]) for t in net.transitions},
            stg.initial_marking,
        )

    def dirty_transitions(self, net: PetriNet) -> FrozenSet[str]:
        """Transitions whose preset/postset differ from the snapshot's net."""
        dirty = set()
        for transition in set(self.preset) | net.transitions:
            if transition not in self.preset or transition not in net.transitions:
                dirty.add(transition)
            elif (
                self.preset[transition] != net.preset[transition]
                or self.postset[transition] != net.postset[transition]
            ):
                dirty.add(transition)
        return frozenset(dirty)


def explore(
    stg: STG,
    max_states: int = 200_000,
    snapshot: Optional[ExplorationSnapshot] = None,
    stats: Optional[Dict[str, int]] = None,
):
    """Enumerate reachable markings with per-signal parities.

    Returns ``(order, parities, arcs)`` where ``order`` maps each marking
    to a dense index (BFS discovery order), ``parities[marking]`` is a
    tuple over ``stg.signals`` of 0/1 toggle parities, and ``arcs`` lists
    ``(marking, transition, marking')``.

    ``snapshot`` (from a previous exploration of a related net) lets
    clean markings replay their cached successor lists instead of
    re-running enabledness and firing; the result is identical either
    way.
    """
    signals = stg.signals
    position = {s: i for i, s in enumerate(signals)}
    net = stg.net

    cached_successors: Dict[Marking, Tuple[Tuple[str, Marking], ...]] = {}
    dirty: FrozenSet[str] = frozenset()
    dirty_present: List[str] = []
    if snapshot is not None:
        cached_successors = snapshot.successors
        dirty = snapshot.dirty_transitions(net)
        dirty_present = sorted(t for t in dirty if t in net.transitions)

    initial = stg.initial_marking
    zero = tuple(0 for _ in signals)
    order: Dict[Marking, int] = {initial: 0}
    parities: Dict[Marking, Tuple[int, ...]] = {initial: zero}
    arcs: List[Tuple[Marking, str, Marking]] = []
    queue: List[Marking] = [initial]
    head = 0
    replayed = 0
    expanded = 0
    while head < len(queue):
        marking = queue[head]
        head += 1
        parity = parities[marking]
        expansions: Optional[Tuple[Tuple[str, Marking], ...]] = None
        cached = cached_successors.get(marking)
        if cached is not None:
            if not dirty:
                expansions = cached
            elif not any(t in dirty for t, _ in cached) and not any(
                net.preset[t] <= marking for t in dirty_present
            ):
                expansions = cached
        if expansions is None:
            fresh: List[Tuple[str, Marking]] = []
            for transition in net.enabled(marking):
                try:
                    fresh.append((transition, net.fire(marking, transition)))
                except SafenessViolation as exc:
                    raise ReachabilityError(str(exc)) from exc
            expansions = tuple(fresh)
            expanded += 1
        else:
            replayed += 1
        for transition, after in expansions:
            event = stg.event_of(transition)
            i = position[event.signal]
            new_parity = parity[:i] + (parity[i] ^ 1,) + parity[i + 1 :]
            known = parities.get(after)
            if known is None:
                if len(order) >= max_states:
                    raise ReachabilityError(
                        f"more than {max_states} reachable markings"
                    )
                order[after] = len(order)
                parities[after] = new_parity
                queue.append(after)
            elif known != new_parity:
                raise ReachabilityError(
                    f"inconsistent state assignment: marking reached with "
                    f"signal parities {known} and {new_parity}"
                )
            arcs.append((marking, transition, after))
    if snapshot is not None:
        perf.count("reach.replayed", replayed)
        perf.count("reach.expanded", expanded)
    if stats is not None:
        stats["replayed"] = replayed
        stats["expanded"] = expanded
    return order, parities, arcs


def _infer_initial_values(stg: STG, parities, arcs) -> Dict[str, int]:
    """Initial signal values from edge-enabledness constraints."""
    values: Dict[str, Optional[int]] = {s: None for s in stg.signals}
    position = {s: i for i, s in enumerate(stg.signals)}
    for marking, transition, _ in arcs:
        event = stg.event_of(transition)
        parity = parities[marking][position[event.signal]]
        # value at this marking is event.value_before = initial ^ parity
        implied = event.value_before ^ parity
        known = values[event.signal]
        if known is None:
            values[event.signal] = implied
        elif known != implied:
            raise ReachabilityError(
                f"signal {event.signal!r} has no consistent initial value"
            )
    resolved: Dict[str, int] = {}
    for signal, value in values.items():
        explicit = stg.initial_values.get(signal)
        if value is None:
            resolved[signal] = explicit if explicit is not None else 0
        else:
            if explicit is not None and explicit != value:
                raise ReachabilityError(
                    f"declared initial value of {signal!r} ({explicit}) "
                    f"contradicts the net (inferred {value})"
                )
            resolved[signal] = value
    return resolved


@perf.timed("reachability")
def stg_to_state_graph(
    stg: STG,
    max_states: int = 200_000,
    snapshot: Optional[ExplorationSnapshot] = None,
    on_snapshot=None,
    stats: Optional[Dict[str, int]] = None,
) -> StateGraph:
    """Build the state graph of an STG (markings become states ``m0, m1, ...``).

    ``snapshot`` replays cached expansions from a previous exploration of
    a related net (see :class:`ExplorationSnapshot`); ``on_snapshot``, if
    given, receives a snapshot of *this* exploration for future replay;
    ``stats``, if given, is filled with replayed/expanded marking counts.
    """
    order, parities, arcs = explore(
        stg, max_states=max_states, snapshot=snapshot, stats=stats
    )
    if on_snapshot is not None:
        on_snapshot(ExplorationSnapshot.capture(stg, order, arcs))
    initial_values = _infer_initial_values(stg, parities, arcs)
    signals = stg.signals

    def state_name(marking: Marking) -> str:
        return f"m{order[marking]}"

    codes = {}
    for marking, parity in parities.items():
        codes[state_name(marking)] = tuple(
            initial_values[s] ^ parity[i] for i, s in enumerate(signals)
        )
    # Two differently-named transitions with the same signal edge can fire
    # between the same pair of markings; at the state-graph level that is
    # a single arc, so deduplicate.
    sg_arcs = sorted(
        {
            (state_name(source), stg.event_of(transition), state_name(target))
            for source, transition, target in arcs
        }
    )
    sg = StateGraph(
        signals,
        stg.inputs,
        codes,
        sg_arcs,
        state_name(stg.initial_marking),
        name=stg.name,
    )
    sg.check()
    return sg
