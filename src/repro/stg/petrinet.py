"""Ordinary Petri nets with interleaving firing semantics.

Places and transitions are identified by strings.  All arcs have weight
one (ordinary nets); the STG interpretation of asynchronous control
requires 1-safe behaviour, which the reachability analysis enforces
dynamically (a marking trying to put a second token on a place is
reported as a safeness violation).

Markings are ``frozenset`` of marked places -- adequate for the safe nets
this library targets, and the safeness monitor rejects the nets for which
it would be lossy.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

Marking = FrozenSet[str]


class SafenessViolation(ValueError):
    """A transition firing would place a second token on a place."""


class PetriNet:
    """An ordinary Petri net.

    Parameters
    ----------
    places / transitions:
        Disjoint sets of identifiers.
    arcs:
        ``(source, target)`` pairs; each arc must connect a place and a
        transition (either direction).
    """

    def __init__(
        self,
        places: Iterable[str],
        transitions: Iterable[str],
        arcs: Iterable[Tuple[str, str]],
    ):
        self.places: Set[str] = set(places)
        self.transitions: Set[str] = set(transitions)
        overlap = self.places & self.transitions
        if overlap:
            raise ValueError(f"ids used as both place and transition: {sorted(overlap)}")
        self.preset: Dict[str, Set[str]] = {t: set() for t in self.transitions}
        self.postset: Dict[str, Set[str]] = {t: set() for t in self.transitions}
        self.place_preset: Dict[str, Set[str]] = {p: set() for p in self.places}
        self.place_postset: Dict[str, Set[str]] = {p: set() for p in self.places}
        for source, target in arcs:
            if source in self.places and target in self.transitions:
                self.preset[target].add(source)
                self.place_postset[source].add(target)
            elif source in self.transitions and target in self.places:
                self.postset[source].add(target)
                self.place_preset[target].add(source)
            else:
                raise ValueError(
                    f"arc ({source!r}, {target!r}) must connect a place and a transition"
                )

    # ------------------------------------------------------------------
    def enabled(self, marking: Marking) -> List[str]:
        """Transitions enabled under ``marking``, sorted for determinism."""
        return sorted(t for t in self.transitions if self.preset[t] <= marking)

    def is_enabled(self, marking: Marking, transition: str) -> bool:
        return self.preset[transition] <= marking

    def fire(self, marking: Marking, transition: str) -> Marking:
        """Fire ``transition``; raises on disabled or unsafe firings."""
        if not self.is_enabled(marking, transition):
            raise ValueError(f"transition {transition!r} is not enabled")
        after = set(marking) - self.preset[transition]
        for place in self.postset[transition]:
            if place in after:
                raise SafenessViolation(
                    f"firing {transition!r} puts a second token on {place!r}"
                )
            after.add(place)
        return frozenset(after)

    # ------------------------------------------------------------------
    def check_connected(self) -> bool:
        """Weak connectivity of the net graph (places + transitions)."""
        nodes = self.places | self.transitions
        if not nodes:
            return True
        neighbours: Dict[str, Set[str]] = {n: set() for n in nodes}
        for transition in self.transitions:
            for place in self.preset[transition]:
                neighbours[transition].add(place)
                neighbours[place].add(transition)
            for place in self.postset[transition]:
                neighbours[transition].add(place)
                neighbours[place].add(transition)
        seen = set()
        frontier = [next(iter(nodes))]
        while frontier:
            node = frontier.pop()
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(neighbours[node] - seen)
        return seen == nodes

    def __repr__(self) -> str:
        return (
            f"PetriNet({len(self.places)} places, "
            f"{len(self.transitions)} transitions)"
        )
