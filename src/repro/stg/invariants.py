"""Structural invariants of Petri nets (S- and T-invariants).

Classic linear-algebraic net theory over the incidence matrix ``C``
(places x transitions, ``C[p][t] = post(p,t) - pre(p,t)``):

* a **T-invariant** is a non-negative integer vector ``x`` with
  ``C x = 0`` -- a multiset of transition firings reproducing a marking.
  A live cyclic STG should have a T-invariant firing every transition
  (for the marked-graph benchmarks: the all-ones vector).
* an **S-invariant** is a non-negative integer vector ``y`` with
  ``yᵀ C = 0`` -- a weighting of places whose token count is conserved.
  Every place of a live-and-safe marked graph lies on such an invariant,
  and the token count of an S-invariant bounds the marking (safeness
  evidence).

The kernels are computed exactly over the rationals (Fraction-based
Gaussian elimination -- no float error), then scaled to integer basis
vectors.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Dict, List, Sequence, Tuple

from repro.stg.petrinet import PetriNet


def incidence_matrix(
    net: PetriNet,
) -> Tuple[List[str], List[str], List[List[int]]]:
    """(places, transitions, C) with C[i][j] = effect of t_j on p_i."""
    places = sorted(net.places)
    transitions = sorted(net.transitions)
    matrix = [[0] * len(transitions) for _ in places]
    p_index = {p: i for i, p in enumerate(places)}
    for j, transition in enumerate(transitions):
        for place in net.preset[transition]:
            matrix[p_index[place]][j] -= 1
        for place in net.postset[transition]:
            matrix[p_index[place]][j] += 1
    return places, transitions, matrix


def _kernel_basis(matrix: List[List[int]]) -> List[List[Fraction]]:
    """A basis of the right kernel of ``matrix`` over the rationals."""
    rows = [[Fraction(v) for v in row] for row in matrix]
    cols = len(rows[0]) if rows else 0
    pivots: Dict[int, int] = {}  # column -> row index
    row_index = 0
    for col in range(cols):
        pivot_row = None
        for r in range(row_index, len(rows)):
            if rows[r][col] != 0:
                pivot_row = r
                break
        if pivot_row is None:
            continue
        rows[row_index], rows[pivot_row] = rows[pivot_row], rows[row_index]
        pivot_value = rows[row_index][col]
        rows[row_index] = [v / pivot_value for v in rows[row_index]]
        for r in range(len(rows)):
            if r != row_index and rows[r][col] != 0:
                factor = rows[r][col]
                rows[r] = [
                    a - factor * b for a, b in zip(rows[r], rows[row_index])
                ]
        pivots[col] = row_index
        row_index += 1
    free_columns = [c for c in range(cols) if c not in pivots]
    basis: List[List[Fraction]] = []
    for free in free_columns:
        vector = [Fraction(0)] * cols
        vector[free] = Fraction(1)
        for col, row in pivots.items():
            vector[col] = -rows[row][free]
        basis.append(vector)
    return basis


def _to_integer(vector: Sequence[Fraction]) -> List[int]:
    denominators = [v.denominator for v in vector]
    multiple = 1
    for d in denominators:
        multiple = multiple * d // gcd(multiple, d)
    scaled = [int(v * multiple) for v in vector]
    divisor = 0
    for v in scaled:
        divisor = gcd(divisor, abs(v))
    if divisor > 1:
        scaled = [v // divisor for v in scaled]
    return scaled


def t_invariants(net: PetriNet) -> List[Dict[str, int]]:
    """Integer basis of ``C x = 0`` as transition->weight mappings."""
    _, transitions, matrix = incidence_matrix(net)
    basis = _kernel_basis(matrix)
    result = []
    for vector in basis:
        weights = _to_integer(vector)
        if all(w <= 0 for w in weights):
            weights = [-w for w in weights]
        result.append(
            {t: w for t, w in zip(transitions, weights) if w != 0}
        )
    return result


def s_invariants(net: PetriNet) -> List[Dict[str, int]]:
    """Integer basis of ``yᵀ C = 0`` as place->weight mappings."""
    places, _, matrix = incidence_matrix(net)
    transposed = [list(col) for col in zip(*matrix)] if matrix else []
    basis = _kernel_basis(transposed)
    result = []
    for vector in basis:
        weights = _to_integer(vector)
        if all(w <= 0 for w in weights):
            weights = [-w for w in weights]
        result.append({p: w for p, w in zip(places, weights) if w != 0})
    return result


def is_consistent_net(net: PetriNet) -> bool:
    """A positive T-invariant covering every transition exists.

    Necessary for a live bounded cyclic behaviour; checked by summing
    kernel basis vectors and testing positivity (sufficient for the
    marked-graph-like nets the benchmarks use; a full test would solve
    an LP).
    """
    if not net.transitions:
        return True
    invariants = t_invariants(net)
    totals = {t: 0 for t in net.transitions}
    for invariant in invariants:
        for t, w in invariant.items():
            totals[t] += w
    return all(v > 0 for v in totals.values())


def is_covered_by_s_invariants(net: PetriNet) -> bool:
    """Every place carries positive weight in the summed S-invariants.

    For ordinary nets this is structural evidence of boundedness.
    """
    if not net.places:
        return True
    invariants = s_invariants(net)
    totals = {p: 0 for p in net.places}
    for invariant in invariants:
        for p, w in invariant.items():
            totals[p] += w
    return all(v > 0 for v in totals.values())
