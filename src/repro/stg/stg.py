"""Signal Transition Graphs: labelled Petri nets plus a signal partition.

A transition id like ``a+`` or ``c-/2`` denotes an edge of the named
signal; the optional ``/k`` suffix distinguishes multiple occurrences of
the same edge in one net.  The signal set is partitioned into inputs
(environment-controlled) and outputs/internal (to be synthesised); the
paper treats outputs and internal signals uniformly as "non-input".
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

from repro.sg.events import SignalEvent
from repro.stg.petrinet import Marking, PetriNet

_TRANSITION_RE = re.compile(r"^(?P<signal>[A-Za-z_][\w.\[\]]*?)(?P<edge>[+-])(/(?P<occ>\d+))?$")


def parse_transition_id(text: str) -> Tuple[SignalEvent, int]:
    """Split ``c-/2`` into (SignalEvent('c', -1), 2); occurrence defaults to 1."""
    match = _TRANSITION_RE.match(text)
    if not match:
        raise ValueError(f"not a signal transition id: {text!r}")
    event = SignalEvent(match.group("signal"), +1 if match.group("edge") == "+" else -1)
    occurrence = int(match.group("occ") or 1)
    return event, occurrence


class STG:
    """A signal transition graph.

    Parameters
    ----------
    net:
        The underlying Petri net; every transition id must parse as a
        signal edge (``a+``, ``b-``, ``a+/2``...).
    inputs / outputs / internal:
        Signal name sets; outputs and internal are both non-input.
    initial_marking:
        The initial marking of the net.
    initial_values:
        Optional explicit initial signal values.  Values that can be
        inferred from the net (a signal whose rising edge can fire first
        must start at 0) are inferred by the reachability analysis; this
        mapping seeds/overrides the inference for signals that never
        switch or whose level is otherwise unconstrained.
    """

    def __init__(
        self,
        net: PetriNet,
        inputs: Iterable[str],
        outputs: Iterable[str],
        initial_marking: Marking,
        internal: Iterable[str] = (),
        initial_values: Optional[Dict[str, int]] = None,
        name: str = "stg",
    ):
        self.net = net
        self.name = name
        self.inputs: FrozenSet[str] = frozenset(inputs)
        self.outputs: FrozenSet[str] = frozenset(outputs)
        self.internal: FrozenSet[str] = frozenset(internal)
        self.initial_marking: Marking = frozenset(initial_marking)
        self.initial_values: Dict[str, int] = dict(initial_values or {})

        self.events: Dict[str, SignalEvent] = {}
        for transition in net.transitions:
            event, _ = parse_transition_id(transition)
            self.events[transition] = event

        declared = self.inputs | self.outputs | self.internal
        used = {event.signal for event in self.events.values()}
        undeclared = used - declared
        if undeclared:
            raise ValueError(f"signals used but not declared: {sorted(undeclared)}")
        overlap = (self.inputs & self.outputs) | (self.inputs & self.internal)
        if overlap:
            raise ValueError(f"signals declared both input and non-input: {sorted(overlap)}")
        missing = self.initial_marking - net.places
        if missing:
            raise ValueError(f"initial marking uses unknown places: {sorted(missing)}")

    # ------------------------------------------------------------------
    @property
    def signals(self) -> Tuple[str, ...]:
        """Deterministic signal order: declared inputs, outputs, internal."""
        return tuple(sorted(self.inputs) + sorted(self.outputs) + sorted(self.internal))

    @property
    def non_inputs(self) -> FrozenSet[str]:
        return self.outputs | self.internal

    def event_of(self, transition: str) -> SignalEvent:
        return self.events[transition]

    def transitions_of(self, signal: str) -> Set[str]:
        return {t for t, e in self.events.items() if e.signal == signal}

    def __repr__(self) -> str:
        return (
            f"STG({self.name!r}, {len(self.net.transitions)} transitions, "
            f"{len(self.net.places)} places, "
            f"in={sorted(self.inputs)}, out={sorted(self.non_inputs)})"
        )
