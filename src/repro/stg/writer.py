"""Serialisation of STGs back to the ``.g`` format."""

from __future__ import annotations

from typing import List

from repro.stg.stg import STG


def dumps_g(stg: STG) -> str:
    """Render an STG in the ``.g`` dialect accepted by :mod:`repro.stg.parser`.

    Implicit places (named ``<t1,t2>``) are rendered as direct
    transition-to-transition arcs; explicit places keep their names.
    """
    lines = [f".model {stg.name}"]
    if stg.inputs:
        lines.append(".inputs " + " ".join(sorted(stg.inputs)))
    if stg.outputs:
        lines.append(".outputs " + " ".join(sorted(stg.outputs)))
    if stg.internal:
        lines.append(".internal " + " ".join(sorted(stg.internal)))
    if stg.initial_values:
        rendered = " ".join(
            f"{signal}={value}" for signal, value in sorted(stg.initial_values.items())
        )
        lines.append(f".initial {rendered}")
    lines.append(".graph")

    net = stg.net
    arc_lines: List[str] = []
    for transition in sorted(net.transitions):
        for place in sorted(net.postset[transition]):
            if place.startswith("<"):
                target = next(iter(net.place_postset[place]))
                arc_lines.append(f"{transition} {target}")
            else:
                arc_lines.append(f"{transition} {place}")
    for place in sorted(net.places):
        if place.startswith("<"):
            continue
        for transition in sorted(net.place_postset[place]):
            arc_lines.append(f"{place} {transition}")
    lines += sorted(set(arc_lines))

    tokens = []
    for place in sorted(stg.initial_marking):
        tokens.append(place)
    lines.append(".marking { " + " ".join(tokens) + " }")
    lines.append(".end")
    return "\n".join(lines) + "\n"
