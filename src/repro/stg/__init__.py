"""Signal Transition Graphs (STGs) over 1-safe Petri nets.

The paper formulates synthesis at the state-graph level but notes that
"the translation from different high-level specifications (e.g. STGs ...)
to state graphs is straightforward".  This subpackage provides that
substrate: benchmark behaviours are written as STGs (in the classic
``.g``/astg text format) and elaborated into state graphs by token-flow
reachability.

* :class:`~repro.stg.petrinet.PetriNet` -- places, transitions, arcs,
  markings, firing rule,
* :class:`~repro.stg.stg.STG` -- a Petri net whose transitions are
  labelled with signal edges, plus the input/output signal partition,
* :mod:`~repro.stg.parser` / :mod:`~repro.stg.writer` -- ``.g`` I/O with
  implicit places (``a+ b-`` arcs between transitions),
* :func:`~repro.stg.reachability.stg_to_state_graph` -- reachability
  analysis producing a consistent :class:`~repro.sg.graph.StateGraph`,
* :mod:`~repro.stg.structural` -- marked-graph / free-choice / safeness
  checks.
"""

from repro.stg.petrinet import PetriNet
from repro.stg.stg import STG
from repro.stg.parser import parse_g, load_g
from repro.stg.writer import dumps_g
from repro.stg.reachability import stg_to_state_graph, ReachabilityError
from repro.stg.structural import is_marked_graph, is_free_choice
from repro.stg.synthesis import stg_from_state_graph, NotSynthesizableError
from repro.stg.invariants import t_invariants, s_invariants

__all__ = [
    "PetriNet",
    "STG",
    "parse_g",
    "load_g",
    "dumps_g",
    "stg_to_state_graph",
    "ReachabilityError",
    "is_marked_graph",
    "is_free_choice",
    "stg_from_state_graph",
    "NotSynthesizableError",
    "t_invariants",
    "s_invariants",
]
