"""Deriving an STG from a state graph (theory of regions).

The inverse of reachability analysis: given a state graph, synthesise a
1-safe Petri net whose reachability graph is trace-equivalent to it
(Cortadella, Kishinevsky, Kondratyev, Lavagno, Yakovlev: *Deriving Petri
nets from finite transition systems*, IEEE TC 1998 -- the same authors'
follow-up toolchain to this paper).  With it, a specification repaired
by state-signal insertion can be written back as a ``.g`` file.

A **region** is a set of states crossed uniformly by every event label:
all arcs of a label enter it, or all exit it, or none crosses it.
Regions become places; a label's *pre-regions* (regions it exits) become
the input places of its transition.  The implementation:

* splits labels by excitation-region occurrence first (``r2+/2``), so
  multiple transitions of a signal synthesise to distinct net
  transitions -- this removes the most common need for label splitting;
* generates the *minimal* pre-regions of each label by the expansion
  search of the reference algorithm;
* checks **excitation closure** (the intersection of a label's
  pre-regions is exactly its enabling set); when it fails, the state
  graph needs further label splitting, reported as
  :class:`NotSynthesizableError`;
* validates the result by re-elaborating the net and checking trace
  equivalence with the input.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.sg.conformance import trace_equivalent
from repro.sg.graph import State, StateGraph
from repro.sg.regions import all_excitation_regions
from repro.stg.petrinet import PetriNet
from repro.stg.stg import STG


class NotSynthesizableError(RuntimeError):
    """The state graph violates excitation closure for some label."""


def _split_labels(sg: StateGraph) -> Dict[Tuple[State, State, str], str]:
    """Arc -> occurrence-split transition id (``a+``, ``a+/2``, ...)."""
    instance_of: Dict[Tuple[str, int, State], int] = {}
    counts: Dict[Tuple[str, int], int] = {}
    for er in all_excitation_regions(sg, only_non_inputs=False):
        key = (er.signal, er.direction)
        counts[key] = max(counts.get(key, 0), er.index)
        for state in er.states:
            instance_of[(er.signal, er.direction, state)] = er.index
    labels: Dict[Tuple[State, State, str], str] = {}
    for source, event, target in sg.arcs():
        index = instance_of[(event.signal, event.direction, source)]
        suffix = "" if index == 1 else f"/{index}"
        labels[(source, target, str(event))] = f"{event}{suffix}"
    return labels


def _arcs_by_label(sg, labels) -> Dict[str, List[Tuple[State, State]]]:
    grouped: Dict[str, List[Tuple[State, State]]] = {}
    for source, event, target in sg.arcs():
        label = labels[(source, target, str(event))]
        grouped.setdefault(label, []).append((source, target))
    return grouped


def _classify(
    arcs: List[Tuple[State, State]], region: FrozenSet[State]
) -> Optional[str]:
    """'enter' / 'exit' / 'none' when uniform, None when mixed."""
    enter = exit_ = cross_free = 0
    for source, target in arcs:
        s_in, t_in = source in region, target in region
        if s_in and not t_in:
            exit_ += 1
        elif t_in and not s_in:
            enter += 1
        else:
            cross_free += 1
    kinds = [k for k, n in (("enter", enter), ("exit", exit_)) if n]
    if not kinds:
        return "none"
    if len(kinds) == 2 or cross_free:
        return None
    return kinds[0]


def _expansions(
    arcs: List[Tuple[State, State]], region: FrozenSet[State]
) -> List[FrozenSet[State]]:
    """Ways to repair a mixed label by growing the region."""
    options: List[FrozenSet[State]] = []
    # (1) make the label non-crossing: absorb the missing endpoints
    absorbed = set(region)
    for source, target in arcs:
        if (source in region) != (target in region):
            absorbed.add(source)
            absorbed.add(target)
    options.append(frozenset(absorbed))
    # (2) make the label entering: all targets inside, no source inside
    if all(source not in region for source, _ in arcs):
        options.append(frozenset(region | {t for _, t in arcs}))
    # (3) make the label exiting: all sources inside, no target inside
    if all(target not in region for _, target in arcs):
        options.append(frozenset(region | {s for s, _ in arcs}))
    return [o for o in options if o != region]


def _minimal_regions_from(
    seed: FrozenSet[State],
    grouped: Dict[str, List[Tuple[State, State]]],
    universe: FrozenSet[State],
    limit: int = 4000,
) -> List[FrozenSet[State]]:
    """Minimal legal regions containing ``seed`` (expansion search)."""
    found: List[FrozenSet[State]] = []
    seen: Set[FrozenSet[State]] = set()
    stack = [seed]
    steps = 0
    while stack:
        steps += 1
        if steps > limit:
            break
        candidate = stack.pop()
        if candidate in seen or candidate == universe:
            continue
        seen.add(candidate)
        if any(candidate >= r for r in found):
            continue
        violating = None
        for label, arcs in grouped.items():
            if _classify(arcs, candidate) is None:
                violating = arcs
                break
        if violating is None:
            found = [r for r in found if not r >= candidate]
            found.append(candidate)
            continue
        stack.extend(_expansions(violating, candidate))
    return found


def stg_from_state_graph(
    sg: StateGraph,
    name: Optional[str] = None,
    validate: bool = True,
) -> STG:
    """Synthesise an STG whose behaviour is trace-equivalent to ``sg``."""
    labels = _split_labels(sg)
    grouped = _arcs_by_label(sg, labels)
    universe = frozenset(sg.states)

    # minimal pre-regions per label, seeded with the label's source set
    pre_regions: Dict[str, List[FrozenSet[State]]] = {}
    all_regions: Set[FrozenSet[State]] = set()
    for label, arcs in grouped.items():
        seed = frozenset(source for source, _ in arcs)
        candidates = _minimal_regions_from(seed, grouped, universe)
        exiting = [
            region
            for region in candidates
            if _classify(arcs, region) == "exit"
        ]
        if not exiting:
            raise NotSynthesizableError(
                f"no pre-region found for transition {label!r}"
            )
        pre_regions[label] = exiting
        all_regions.update(exiting)

    # excitation closure: the intersection of a label's pre-regions must
    # be exactly its enabling set
    for label, arcs in grouped.items():
        enabled = frozenset(source for source, _ in arcs)
        intersection = frozenset(sg.states)
        for region in pre_regions[label]:
            intersection &= region
        if intersection != enabled:
            raise NotSynthesizableError(
                f"excitation closure fails for {label!r}: needs label "
                f"splitting beyond occurrence indices"
            )

    region_names = {
        region: f"p{i}"
        for i, region in enumerate(sorted(all_regions, key=sorted))
    }
    places = set(region_names.values())
    transitions = set(grouped)
    arcs: List[Tuple[str, str]] = []
    for region, place in region_names.items():
        for label, label_arcs in grouped.items():
            kind = _classify(label_arcs, region)
            if kind == "exit":
                arcs.append((place, label))
            elif kind == "enter":
                arcs.append((label, place))
    marking = frozenset(
        place for region, place in region_names.items() if sg.initial in region
    )

    net = PetriNet(places, transitions, arcs)
    initial_values = {s: sg.value(sg.initial, s) for s in sg.signals}
    stg = STG(
        net,
        inputs=sg.inputs,
        outputs=frozenset(sg.non_inputs),
        initial_marking=marking,
        initial_values=initial_values,
        name=name or f"{sg.name}_synth",
    )
    if validate:
        from repro.stg.reachability import stg_to_state_graph

        back = stg_to_state_graph(stg)
        if not trace_equivalent(back, sg):
            raise NotSynthesizableError(
                "synthesised net is not trace-equivalent to the input "
                "(insufficient regions)"
            )
    return stg
