"""A library of standard asynchronous handshake components.

The building blocks of handshake-circuit design (van Berkel's Tangram /
Philips style and the classic Sutherland micropipeline cells), each as
an STG ready for the synthesis pipeline:

========== ==========================================================
component  behaviour (all channels 4-phase: req+/ack+/req-/ack-)
========== ==========================================================
buffer     passive in (r,a) then active out (ro,ai), sequential
fork2      one input handshake forks to two concurrent outputs
join2      two concurrent input handshakes joined into one output
sequencer  activates two output channels one after the other
par        activates two output channels in parallel, joins the acks
call2      two mutually exclusive callers share one server channel
toggle2    successive input handshakes steered alternately to two outputs
celement   the C-element itself as a specification (2 inputs, 1 output)
mutex_free merge of two exclusive requests onto one output channel
========== ==========================================================

Every component is cyclic, live and 1-safe; the test-suite pushes each
through the full pipeline (insertion where needed, synthesis, gate-level
verification).
"""

from __future__ import annotations

from repro.stg.parser import parse_g
from repro.stg.stg import STG


def buffer() -> STG:
    """One-place handshake buffer: accept, pass on, acknowledge."""
    return parse_g(
        """
        .inputs r ai
        .outputs a ro
        .graph
        r+ ro+
        ro+ ai+
        ai+ ro-
        ro- ai-
        ai- a+
        a+ r-
        r- a-
        a- r+
        .marking { <a-,r+> }
        .end
        """,
        name="buffer",
    )


def fork2() -> STG:
    """One request forked into two concurrent output handshakes."""
    return parse_g(
        """
        .inputs r a1 a2
        .outputs a r1 r2
        .graph
        r+ r1+ r2+
        r1+ a1+
        r2+ a2+
        a1+ a+
        a2+ a+
        a+ r-
        r- r1- r2-
        r1- a1-
        r2- a2-
        a1- a-
        a2- a-
        a- r+
        .marking { <a-,r+> }
        .end
        """,
        name="fork2",
    )


def join2() -> STG:
    """Two concurrent input handshakes joined into one output."""
    return parse_g(
        """
        .inputs r1 r2 a
        .outputs a1 a2 r
        .graph
        r1+ r+
        r2+ r+
        r+ a+
        a+ a1+ a2+
        a1+ r1-
        a2+ r2-
        r1- r-
        r2- r-
        r- a-
        a- a1- a2-
        a1- r1+
        a2- r2+
        .marking { <a1-,r1+> <a2-,r2+> }
        .end
        """,
        name="join2",
    )


def sequencer() -> STG:
    """Activate channel 1, then channel 2, then acknowledge the parent."""
    return parse_g(
        """
        .inputs r d1 d2
        .outputs a q1 q2
        .graph
        r+ q1+
        q1+ d1+
        d1+ q1-
        q1- d1-
        d1- q2+
        q2+ d2+
        d2+ q2-
        q2- d2-
        d2- a+
        a+ r-
        r- a-
        a- r+
        .marking { <a-,r+> }
        .end
        """,
        name="sequencer",
    )


def par() -> STG:
    """Activate two child channels in parallel; join their completions."""
    return parse_g(
        """
        .inputs r d1 d2
        .outputs a q1 q2
        .graph
        r+ q1+ q2+
        q1+ d1+
        q2+ d2+
        d1+ q1-
        d2+ q2-
        q1- d1-
        q2- d2-
        d1- a+
        d2- a+
        a+ r-
        r- a-
        a- r+
        .marking { <a-,r+> }
        .end
        """,
        name="par",
    )


def call2() -> STG:
    """Two mutually exclusive callers multiplexed onto one server.

    The environment raises r1 or r2 (free choice); the call module
    forwards to the shared server channel (s, ds) and routes the
    acknowledgement back to the requesting side.
    """
    return parse_g(
        """
        .inputs r1 r2 ds
        .outputs a1 a2 s
        .graph
        p0 r1+ r2+
        r1+ s+
        s+ ds+
        ds+ s-
        s- ds-
        ds- a1+
        a1+ r1-
        r1- a1-
        a1- p0
        r2+ s+/2
        s+/2 ds+/2
        ds+/2 s-/2
        s-/2 ds-/2
        ds-/2 a2+
        a2+ r2-
        r2- a2-
        a2- p0
        .marking { p0 }
        .end
        """,
        name="call2",
    )


def toggle2() -> STG:
    """Successive input handshakes steered alternately to two outputs."""
    return parse_g(
        """
        .inputs r
        .outputs t1 t2
        .graph
        r+ t1+
        t1+ r-
        r- t1-
        t1- r+/2
        r+/2 t2+
        t2+ r-/2
        r-/2 t2-
        t2- r+
        .marking { <t2-,r+> }
        .end
        """,
        name="toggle2",
    )


def celement() -> STG:
    """The Muller C-element as a specification: c follows a AND b."""
    return parse_g(
        """
        .inputs a b
        .outputs c
        .graph
        a+ c+
        b+ c+
        c+ a- b-
        a- c-
        b- c-
        c- a+ b+
        .marking { <c-,a+> <c-,b+> }
        .end
        """,
        name="celement",
    )


def mutex_free_merge() -> STG:
    """Merge of two exclusive input handshakes onto one output channel."""
    return parse_g(
        """
        .inputs r1 r2 d
        .outputs a1 a2 q
        .graph
        p0 r1+ r2+
        r1+ q+
        q+ d+
        d+ q-
        q- d-
        d- a1+
        a1+ r1-
        r1- a1-
        a1- p0
        r2+ q+/2
        q+/2 d+/2
        d+/2 q-/2
        q-/2 d-/2
        d-/2 a2+
        a2+ r2-
        r2- a2-
        a2- p0
        .marking { p0 }
        .end
        """,
        name="mutex_free_merge",
    )


#: name -> constructor, for enumeration in tests and docs
COMPONENTS = {
    "buffer": buffer,
    "fork2": fork2,
    "join2": join2,
    "sequencer": sequencer,
    "par": par,
    "call2": call2,
    "toggle2": toggle2,
    "celement": celement,
    "mutex_free_merge": mutex_free_merge,
}


def mutex_request() -> STG:
    """Two *concurrent* requesters competing for one grant -- NOT
    speed-independent-synthesisable.

    Unlike :func:`call2` (whose requests are mutually exclusive by
    construction), both requests can be pending at once and the
    component must *arbitrate*: one grant output must win and disable
    the other.  At the state-graph level that is an internal conflict
    (an excited non-input transition gets disabled), so the behaviour is
    not output semi-modular and lies outside the paper's theory -- real
    designs use a dedicated mutual-exclusion element with an analogue
    metastability filter.  Kept in the library as the canonical
    boundary example; the test-suite asserts the pipeline rejects it.
    """
    return parse_g(
        """
        .inputs r1 r2
        .outputs g1 g2
        .graph
        r1+ g1+
        r2+ g2+
        g1+ r1-
        g2+ r2-
        r1- g1-
        r2- g2-
        g1- r1+
        g2- r2+
        p0 g1+ g2+
        g1- p0
        g2- p0
        .marking { <g1-,r1+> <g2-,r2+> p0 }
        .end
        """,
        name="mutex_request",
    )
