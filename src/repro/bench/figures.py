"""The paper's example state graphs, entered from the figures.

**Figure 1** (inputs ``a, b``; outputs ``c, d``): the running example.
Key facts the paper states about it, all checked in the test-suite:

* the initial state ``0*0*00`` is an *input* conflict state (firing ``a``
  disables ``b`` and vice versa); the SG is output semi-modular and
  output distributive;
* ER(+d_1) = {1000, 1010, 0010} with unique minimal state ``100*0*``;
* trigger ``+a`` of ER(+d_1) is non-persistent (``a-`` is excited inside
  the region at state ``1*010*``);
* no single cube covers ER(+d_1) correctly -- the Beerel-style correct
  cover needs two cubes ``a b'`` + ``b' c`` (the paper prints them without
  the overbars as ``ab`` and ``bc``), giving equations (1);
* one inserted signal restores the MC requirement, giving equations (2).

**Figure 3** (signals ``a b c d x``): the MC reduction of Figure 1 by one
inserted internal signal ``x``, entered verbatim (17 states).  It is the
paper's reference solution: ``x`` rises at 0001 (before ``d-``), falls
once on each branch after ``a`` rises, and the implementation collapses
``d`` to a wire from ``x`` (equations (2)).  Projecting ``x`` away gives
back Figure 1 exactly, which pins down the one ambiguous OCR reading in
Figure 1 (state ``1110*``: code 1110 with ``d+`` excited).

**Figure 4** (inputs ``a, c, d``; output ``b``): a *persistent* SG on
which Beerel's conditions hold, yet the cover cube ``a`` of ER(+b_1) also
covers state ``10*01`` of ER(+b_2), so the AND gate ``t = c'd`` can fire
unacknowledged -- a hazard.  The graph has two distinct states with code
1100 (a USC violation that is *not* a CSC violation, since neither state
excites the output), so it is entered via named states rather than
asterisk notation.
"""

from __future__ import annotations

from repro.sg.builder import sg_from_arcs, sg_from_asterisk_states
from repro.sg.graph import StateGraph

#: Figure 1 states in the paper's asterisk notation, signal order a b c d.
FIGURE1_STATES = [
    "0*0*00",  # initial: input choice between a+ and b+
    "100*0*",
    "010*0",
    "1*010*",
    "100*1",
    "0*110",
    "1*0*11",
    "1110*",
    "0010*",
    "1*111",
    "011*1",
    "01*01",
    "00*11",
    "0001*",
]


def figure1_sg() -> StateGraph:
    """The state graph of Figure 1."""
    return sg_from_asterisk_states(
        signals=("a", "b", "c", "d"),
        inputs=("a", "b"),
        states=FIGURE1_STATES,
        initial="0*0*00",
        name="fig1",
    )


#: Figure 3 states in asterisk notation, signal order a b c d x.  The
#: initial state is the Figure-1 initial state 0000 with x already at 1
#: (x rises at 0001, just before d falls back to the initial code).
FIGURE3_STATES = [
    "0*0*001",
    "10001*",
    "010*01",
    "100*0*0",
    "0*1101",
    "1*010*0",
    "100*10",
    "11101*",
    "1110*0",
    "1*0*110",
    "0010*0",
    "1*1110",
    "011*10",
    "00*110",
    "01*010",
    "00010*",
    "0001*1",
]


def figure3_sg() -> StateGraph:
    """The state graph of Figure 3 (Figure 1 reduced to MC form)."""
    return sg_from_asterisk_states(
        signals=("a", "b", "c", "d", "x"),
        inputs=("a", "b"),
        states=FIGURE3_STATES,
        initial="0*0*001",
        name="fig3",
    )


#: Figure 4 arcs.  Two states share code 1100: ``s1100c`` (left branch,
#: ``c+`` excited) and ``s1100a`` (right branch, ``a-`` excited).
FIGURE4_ARCS = [
    ("s0000", "a+", "s1000"),
    ("s1000", "b+", "s1100c"),
    ("s1000", "c+", "s1010"),
    ("s1100c", "c+", "s1110"),
    ("s1010", "b+", "s1110"),
    ("s1010", "d+", "s1011"),
    ("s1110", "d+", "s1111"),
    ("s1011", "b+", "s1111"),
    ("s1111", "a-", "s0111"),
    ("s0111", "b-", "s0011"),
    ("s0011", "c-", "s0001"),
    ("s0001", "a+", "s1001"),
    ("s0001", "b+", "s0101"),
    ("s1001", "b+", "s1101"),
    ("s0101", "a+", "s1101"),
    ("s1101", "d-", "s1100a"),
    ("s1100a", "a-", "s0100"),
    ("s0100", "b-", "s0000"),
]


def figure4_sg() -> StateGraph:
    """The state graph of Figure 4."""
    return sg_from_arcs(
        signals=("a", "b", "c", "d"),
        inputs=("a", "c", "d"),
        initial_code=(0, 0, 0, 0),
        arcs=FIGURE4_ARCS,
        initial="s0000",
        name="fig4",
    )
