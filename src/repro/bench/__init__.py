"""Benchmark designs: the paper's figures and the Table-1 suite.

* :mod:`repro.bench.figures` -- the state graphs of Figures 1 and 4,
  entered state-by-state from the paper.
* :mod:`repro.bench.suite` -- the nine Table-1 designs, reconstructed as
  STGs with the interface sizes the table reports (see DESIGN.md for the
  substitution rationale), plus a registry for the harness.
"""

from repro.bench.figures import figure1_sg, figure3_sg, figure4_sg
from repro.bench.suite import BENCHMARKS, load_benchmark

__all__ = ["figure1_sg", "figure3_sg", "figure4_sg", "BENCHMARKS", "load_benchmark"]
