"""Deprecated forwarding shim — the generators live in :mod:`repro.corpus`.

The parametric STG families (``token_ring``, ``concurrent_fork``,
``alternator``, ``random_series_parallel``) and the ``fuzz_specs``
stream moved verbatim to :mod:`repro.corpus.families` when design
generation was unified under the corpus subsystem.  Importing them
from here still works but emits a :class:`DeprecationWarning`; new
code should import from :mod:`repro.corpus` (which also carries the
newer families and the seeded, structurally-admitted corpus factory).
"""

from __future__ import annotations

import warnings

_FORWARDED = (
    "token_ring",
    "concurrent_fork",
    "alternator",
    "random_series_parallel",
    "fuzz_specs",
)

__all__ = list(_FORWARDED)

def __getattr__(name: str):
    if name in _FORWARDED:
        warnings.warn(
            f"repro.bench.generators.{name} is deprecated; "
            f"import it from repro.corpus instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.corpus import families

        return getattr(families, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_FORWARDED))
