"""Parameterised specification families for scaling experiments.

The paper's Table 1 uses fixed moderate-size designs; these generators
provide families whose size is a parameter, used by the scaling
benchmarks (``benchmarks/bench_scaling.py``) and as fuzz fodder for the
property tests:

* :func:`token_ring` -- n handshake channels served round-robin
  (sequential; state count grows linearly; MC-clean as specified);
* :func:`concurrent_fork` -- one request forked to n concurrent
  downstream handshakes with a full join (state count grows
  exponentially in n; exercises region analysis under concurrency);
* :func:`alternator` -- one input whose successive pulses are steered
  to n different outputs (the ``luciano`` pattern generalised; needs
  ~log2(n) inserted state signals, exercising the insertion engine).
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.stg.parser import parse_g
from repro.stg.stg import STG


def token_ring(channels: int) -> STG:
    """n sequential 4-phase handshakes served in a fixed rotation."""
    if channels < 1:
        raise ValueError("need at least one channel")
    inputs = [f"r{i}" for i in range(channels)]
    outputs = [f"a{i}" for i in range(channels)]
    events: List[str] = []
    for i in range(channels):
        events += [f"r{i}+", f"a{i}+", f"r{i}-", f"a{i}-"]
    lines = [
        ".model token_ring",
        ".inputs " + " ".join(inputs),
        ".outputs " + " ".join(outputs),
        ".graph",
    ]
    for i, event in enumerate(events):
        lines.append(f"{event} {events[(i + 1) % len(events)]}")
    lines.append(f".marking {{ <{events[-1]},{events[0]}> }}")
    lines.append(".end")
    return parse_g("\n".join(lines), name=f"token_ring_{channels}")


def concurrent_fork(branches: int) -> STG:
    """One request forks to n concurrent handshakes, then a full join.

    ``r+`` enables all ``qi+`` concurrently; each is acknowledged by the
    input ``di+``; when all acknowledgements are in, ``done+`` fires and
    the whole structure resets symmetrically.
    """
    if branches < 1:
        raise ValueError("need at least one branch")
    inputs = ["r"] + [f"d{i}" for i in range(branches)]
    outputs = [f"q{i}" for i in range(branches)] + ["done"]
    lines = [
        ".model concurrent_fork",
        ".inputs " + " ".join(inputs),
        ".outputs " + " ".join(outputs),
        ".graph",
    ]
    ups = " ".join(f"q{i}+" for i in range(branches))
    lines.append(f"r+ {ups}")
    for i in range(branches):
        lines.append(f"q{i}+ d{i}+")
        lines.append(f"d{i}+ done+")
    lines.append("done+ r-")
    downs = " ".join(f"q{i}-" for i in range(branches))
    lines.append(f"r- {downs}")
    for i in range(branches):
        lines.append(f"q{i}- d{i}-")
        lines.append(f"d{i}- done-")
    lines.append("done- r+")
    lines.append(".marking { <done-,r+> }")
    lines.append(".end")
    return parse_g("\n".join(lines), name=f"concurrent_fork_{branches}")


def alternator(ways: int) -> STG:
    """Successive pulses of one input steered to n outputs in rotation.

    For n >= 2 the idle code repeats between rounds, so the controller
    needs inserted state signals to count -- about log2(n) of them.
    """
    if ways < 2:
        raise ValueError("need at least two outputs to alternate")
    outputs = [f"y{i}" for i in range(ways)]
    lines = [
        ".model alternator",
        ".inputs r",
        ".outputs " + " ".join(outputs),
        ".graph",
    ]
    events: List[str] = []
    for i in range(ways):
        occurrence = "" if i == 0 else f"/{i + 1}"
        events += [
            f"r+{occurrence}",
            f"y{i}+",
            f"r-{occurrence}",
            f"y{i}-",
        ]
    for i, event in enumerate(events):
        lines.append(f"{event} {events[(i + 1) % len(events)]}")
    lines.append(f".marking {{ <{events[-1]},{events[0]}> }}")
    lines.append(".end")
    return parse_g("\n".join(lines), name=f"alternator_{ways}")


def random_series_parallel(seed: int, leaves: int = 4) -> STG:
    """A random series-parallel controller over fresh handshake channels.

    A process term over SEQ and PAR combinators with handshake leaves is
    sampled (``leaves`` leaf channels ``q_i``/``d_i``), wrapped in a
    parent handshake ``r``/``a``.  The resulting STGs are live, 1-safe
    and output semi-modular by construction -- fuzz fodder for the whole
    pipeline.
    """
    import random as _random

    rng = _random.Random(seed)
    lines: List[str] = []
    counter = [0]

    def leaf() -> Tuple[str, str]:
        i = counter[0]
        counter[0] += 1
        lines.append(f"q{i}+ d{i}+")
        lines.append(f"d{i}+ q{i}-")
        lines.append(f"q{i}- d{i}-")
        return f"q{i}+", f"d{i}-"

    def build(remaining: int) -> Tuple[str, str]:
        if remaining <= 1:
            return leaf()
        split = rng.randint(1, remaining - 1)
        left_start, left_end = build(split)
        right_start, right_end = build(remaining - split)
        if rng.random() < 0.5:  # SEQ
            lines.append(f"{left_end} {right_start}")
            return left_start, right_end
        # PAR: forked by a shared predecessor, joined by a shared successor
        i = counter[0]
        counter[0] += 1
        fork, join = f"q{i}+", f"q{i}-"  # a bracketing output pulse
        lines.append(f"{fork} {left_start} {right_start}")
        lines.append(f"{left_end} {join}")
        lines.append(f"{right_end} {join}")
        return fork, join

    start, end = build(leaves)
    lines.append(f"r+ {start}")
    lines.append(f"{end} a+")
    lines.append("a+ r-")
    lines.append("r- a-")
    lines.append("a- r+")

    used = set()
    for line in lines:
        for token in line.split():
            used.add(token[:-1].split("/")[0])
    outputs = sorted(s for s in used if s.startswith("q")) + ["a"]
    inputs = sorted(s for s in used if s.startswith("d")) + ["r"]
    text = "\n".join(
        [
            ".model series_parallel",
            ".inputs " + " ".join(inputs),
            ".outputs " + " ".join(outputs),
            ".graph",
        ]
        + lines
        + [".marking { <a-,r+> }", ".end"]
    )
    return parse_g(text, name=f"sp_{seed}")


def fuzz_specs(count: int, seed: int = 0) -> Iterator[Tuple[str, STG]]:
    """A deterministic stream of ``count`` named fuzz specifications.

    The mix feeding the differential-verification oracle
    (:mod:`repro.verify.differential`): seven in ten designs are random
    series-parallel controllers (each with a fresh seed and a varying
    leaf count), the rest rotate through the parametric families so the
    sweep also exercises sequential rings, exponential forks and
    insertion-heavy alternators.  The stream depends only on
    ``(count, seed)``.
    """
    for i in range(count):
        slot = i % 10
        if slot < 7:
            leaves = 2 + (seed + i) % 5
            stg = random_series_parallel(seed * 100_003 + i, leaves=leaves)
            yield f"sp_{seed}_{i}(leaves={leaves})", stg
        elif slot == 7:
            n = 2 + (i // 10) % 6
            yield f"token_ring({n})", token_ring(n)
        elif slot == 8:
            n = 2 + (i // 10) % 3
            yield f"concurrent_fork({n})", concurrent_fork(n)
        else:
            n = 2 + (i // 10) % 4
            yield f"alternator({n})", alternator(n)
