# Two-channel request server: the environment raises one of two requests
# (free input choice); the controller runs a downstream handshake (z/c)
# and acknowledges with y.  On each branch the code after c- aliases the
# code right after the request, so a state signal is inserted.
.model nowick
.inputs a b c
.outputs y z
.graph
p0 a+ b+
a+ z+
z+ c+
c+ z-
z- c-
c- y+
y+ a-
a- y-
y- p0
b+ z+/2
z+/2 c+/2
c+/2 z-/2
z-/2 c-/2
c-/2 y+/2
y+/2 b-
b- y-/2
y-/2 p0
.marking { p0 }
.end
