# One-input alternator: successive pulses of r are steered to y1, y2.
# After y1- the state code returns to 000 although the controller must
# remember that the next pulse goes to y2 -- a CSC conflict repaired by
# one state signal.
.model luciano
.inputs r
.outputs y1 y2
.graph
r+ y1+
y1+ r-
r- y1-
y1- r+/2
r+/2 y2+
y2+ r-/2
r-/2 y2-
y2- r+
.marking { <y2-,r+> }
.end
