# Varshavsky's D-element: a passive-to-active handshake adapter.
# Left handshake: request a (input), acknowledge b (output).
# Right handshake: request c (output), acknowledge d (input).
# The classic CSC conflict: code 1000 occurs both before c+ and before b+.
.model delement
.inputs a d
.outputs b c
.graph
a+ c+
c+ d+
d+ c-
c- d-
d- b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
