# Mixer in the style of van Berkel's handshake circuits: two enclosed
# right handshakes with the left acknowledge raised between the second
# request and its release.  As in the duplicator, the two service
# rounds alias in state code and need two inserted state signals.
.model berkel3
.inputs r a2
.outputs a r2
.graph
r+ r2+
r2+ r-
r- a2+
a2+ r2-
r2- a2-
a2- r2+/2
r2+/2 a2+/2
a2+/2 a+
a+ r2-/2
r2-/2 a2-/2
a2-/2 a-
a- r+
.marking { <a-,r+> }
.end
