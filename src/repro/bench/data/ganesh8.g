# Repeater with early acknowledge: the left acknowledge a1 pulses while
# the first right handshake is still completing, and a second right
# handshake follows.  The interleaving aliases the idle codes of the two
# right handshakes in incompatible windows, so one state signal cannot
# disambiguate both -- two are inserted.
.model ganesh8
.inputs r a2
.outputs a1 r2
.graph
r+ r2+
r2+ r-
r- a2+
a2+ r2-
r2- a1+
a1+ a1-
a1- a2-
a2- r2+/2
r2+/2 a2+/2
a2+/2 r2-/2
r2-/2 a2-/2
a2-/2 r+
.marking { <a2-/2,r+> }
.end
