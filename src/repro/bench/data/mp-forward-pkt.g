# Packet-forwarding controller: an incoming request is enabled, two
# downstream requests fire concurrently and join before acknowledging.
# Every signal switches once per cycle; the graph satisfies MC as given.
.model mp-forward-pkt
.inputs r1 a2 a3
.outputs a1 r2 r3 en
.graph
r1+ en+
en+ r2+ r3+
r2+ a2+
r3+ a3+
a2+ a1+
a3+ a1+
a1+ r1-
r1- en-
en- r2- r3-
r2- a2-
r3- a3-
a2- a1-
a3- a1-
a1- r1+
.marking { <a1-,r1+> }
.end
