# Sequencer in the style of van Berkel's handshake circuits: the left
# handshake (r/a) encloses one right handshake (r2/a2) performed before
# the left acknowledge.  Code 1000 repeats with different futures.
.model berkel2
.inputs r a2
.outputs a r2
.graph
r+ r2+
r2+ a2+
a2+ r2-
r2- a2-
a2- a+
a+ r-
r- a-
a- r+
.marking { <a-,r+> }
.end
