# Negative-acknowledgement protocol adapter: an incoming request is
# granted (g+), forwarded over two sequential downstream handshakes, and
# the grant phase must be remembered across the return path.
.model nak-pa
.inputs r1 a2 a3 d
.outputs a1 r2 r3 g q
.graph
r1+ g+
g+ r2+
r2+ a2+
a2+ r2-
r2- a2-
a2- r3+
r3+ a3+
a3+ q+
q+ d+
d+ r3-
r3- a3-
a3- g-
g- a1+
a1+ r1-
r1- q-
q- d-
d- a1-
a1- r1+
.marking { <a1-,r1+> }
.end
