# Handshake duplicator (reshuffled): one handshake on the left channel
# (r in / a1 out) encloses two complete handshakes on the right channel
# (r2 out / a2 in).  The request r is released early and the final right
# acknowledge is withdrawn after a1+, so the controller must remember
# which of the two right handshakes it is serving across code-aliased
# states -- two state signals are required, as in the paper's Table 1.
.model duplicator
.inputs r a2
.outputs a1 r2
.graph
r+ r2+
r2+ r-
r- a2+
a2+ r2-
r2- a2-
a2- r2+/2
r2+/2 a2+/2
a2+/2 r2-/2
r2-/2 a1+
a1+ a2-/2
a2-/2 a1-
a1- r+
.marking { <a1-,r+> }
.end
