"""The Table-1 benchmark suite and the end-to-end pipeline driver.

Table 1 of the paper reports, for nine asynchronous-controller designs,
the interface size and the number of state signals the MC-driven state
assignment inserts.  The original 1994 ``.tim`` files are not available;
each design here is a reconstruction as an STG with the *same interface
size* and the control structure its name denotes in the asynchronous
benchmark literature (see DESIGN.md).  The reproduction target is the
shape of the table: how many signals MC reduction needs (0-2 per
design), with every run far under the paper's 5-minute timeout.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import perf
from repro.core.insertion import InsertionResult
from repro.core.synthesis import Implementation
from repro.netlist.hazards import HazardReport
from repro.netlist.netlist import netlist_from_implementation
from repro.sg.graph import StateGraph
from repro.stg.parser import load_g
from repro.stg.stg import STG

_DATA_DIR = os.path.join(os.path.dirname(__file__), "data")

#: benchmark name -> (file, paper's (inputs, outputs, added signals))
BENCHMARKS: Dict[str, Tuple[str, Tuple[int, int, int]]] = {
    "nak-pa": ("nak-pa.g", (4, 5, 1)),
    "nowick": ("nowick.g", (3, 2, 1)),
    "duplicator": ("duplicator.g", (2, 2, 2)),
    "ganesh8": ("ganesh8.g", (2, 2, 2)),
    "berkel2": ("berkel2.g", (2, 2, 1)),
    "berkel3": ("berkel3.g", (2, 2, 2)),
    "mp-forward-pkt": ("mp-forward-pkt.g", (3, 4, 0)),
    "luciano": ("luciano.g", (1, 2, 1)),
    "delement": ("delement.g", (2, 2, 1)),
}


def load_benchmark(name: str) -> STG:
    """Load one of the Table-1 designs by name."""
    try:
        filename, _ = BENCHMARKS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {sorted(BENCHMARKS)}"
        ) from None
    return load_g(os.path.join(_DATA_DIR, filename))


def paper_row(name: str) -> Tuple[int, int, int]:
    """The paper's (inputs, outputs, added signals) for a design."""
    return BENCHMARKS[name][1]


@dataclass
class PipelineResult:
    """Everything the Table-1 harness reports for one design."""

    name: str
    stg: STG
    spec_sg: StateGraph
    insertion: InsertionResult
    implementation: Implementation
    hazard_report: Optional[HazardReport]
    elapsed_seconds: float
    #: per-phase wall time / op counters when run with ``profile=True``
    profile: Optional[Dict] = None
    #: per-stage reuse ledger of the run that produced this result:
    #: stage -> {"mode": "hit" | "miss" | "partial", ...counts}
    reuse: Optional[Dict] = None

    @property
    def added_signals(self) -> int:
        return len(self.insertion.added_signals)

    @property
    def row(self) -> Tuple[str, int, int, int]:
        return (
            self.name,
            len(self.stg.inputs),
            len(self.stg.non_inputs),
            self.added_signals,
        )

    def to_json(self) -> Dict:
        """One structured Table-1 row (the ``table1`` section schema)."""
        from repro.pipeline.serialize import pipeline_result_to_json

        return pipeline_result_to_json(self)

    @classmethod
    def from_json(cls, data: Dict) -> "PipelineResult":
        """Rebuild a comparable row from :meth:`to_json` output."""
        from repro.pipeline.serialize import pipeline_result_from_json

        return pipeline_result_from_json(data)


def run_pipeline(
    name: str,
    verify: bool = True,
    style: str = "C",
    max_models: int = 400,
    profile: bool = False,
    context=None,
    store=None,
    backend: Optional[str] = None,
) -> PipelineResult:
    """Full MC-reduction pipeline for one benchmark.

    Drives :class:`repro.pipeline.Pipeline` end to end: STG -> state
    graph -> MC-driven state-signal insertion -> standard implementation
    -> (optionally) circuit-level speed-independence verification.

    With ``profile=True`` a fresh :mod:`repro.perf` recorder is scoped
    to this run (via :func:`repro.perf.recording`) and its per-phase
    wall times and op counters land in ``result.profile``.  Pass a
    ``context`` to choose the analysis backend or share budgets/caches
    across designs; ``profile`` is ignored when a context is supplied
    (the context's own recorder wins).  ``store`` (a directory path or
    :class:`~repro.pipeline.store.ArtifactStore`) backs the default
    context with the persistent artifact cache; it is ignored when an
    explicit ``context`` is supplied (configure the context instead).
    ``backend`` picks the registered analysis backend for the default
    context (``bitengine`` when omitted); like ``store`` it is ignored
    when an explicit ``context`` is supplied.
    """
    from repro.pipeline import AnalysisContext, Pipeline, PipelineSpec

    if context is None:
        context = AnalysisContext(
            backend=backend or "bitengine",
            recorder=perf.PerfRecorder() if profile else None,
            store=store,
        )
    started = time.perf_counter()
    stg = load_benchmark(name)
    spec = PipelineSpec.from_stg(
        stg, name=name, style=style, verify=verify, max_models=max_models
    )
    pipeline = Pipeline(context)
    hazard_report = None
    if verify:
        hazard_report = pipeline.run(spec, until="netlist").hazard_report
        reuse = {k: dict(v) for k, v in context.last_reuse.items()}
        plan = pipeline.run(spec, until="covers")
    else:
        plan = pipeline.run(spec, until="covers")
        reuse = {k: dict(v) for k, v in context.last_reuse.items()}
    reached = pipeline.run(spec, until="reach")
    return PipelineResult(
        name=name,
        stg=stg,
        spec_sg=reached.sg,
        insertion=plan.insertion,
        implementation=plan.implementation,
        hazard_report=hazard_report,
        elapsed_seconds=time.perf_counter() - started,
        profile=(
            context.recorder.as_dict() if context.recorder is not None else None
        ),
        reuse=reuse,
    )


def run_table1(
    verify: bool = True,
    names: Optional[List[str]] = None,
    jobs: Optional[int] = None,
    profile: bool = False,
    store=None,
    backend: Optional[str] = None,
) -> List[PipelineResult]:
    """Run the whole Table-1 suite; returns one result per design.

    ``jobs`` opts into a ``concurrent.futures`` fan-out across designs
    (each design's pipeline is fully independent); results come back in
    the requested design order either way.  ``profile`` implies serial
    execution because the perf recorder is process-global.  ``store``
    (a directory path) warms every design from the persistent artifact
    cache; each design opens its own handle, so the fan-out stays safe.
    """
    names = list(names or BENCHMARKS)
    if jobs is not None and jobs > 1 and not profile and len(names) > 1:
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=jobs) as pool:
            return list(
                pool.map(
                    lambda name: run_pipeline(
                        name, verify=verify, store=store, backend=backend
                    ),
                    names,
                )
            )
    return [
        run_pipeline(
            name, verify=verify, profile=profile, store=store, backend=backend
        )
        for name in names
    ]


#: current schema tag of BENCH_pipeline.json; bump on breaking changes
PIPELINE_JSON_SCHEMA = "repro-bench-pipeline/1"


def update_pipeline_json(
    section: str, payload, path: str = "BENCH_pipeline.json"
) -> str:
    """Merge one section into the machine-readable benchmark trajectory.

    ``BENCH_pipeline.json`` is the cross-PR perf record: each harness
    owns one top-level section (``hotpath`` from
    ``benchmarks/bench_hotpath.py``, ``table1`` from this suite,
    ``scaling`` from ``benchmarks/bench_scaling.py``) and updates it in
    place, leaving the others untouched so trajectories accumulate.
    Returns the path written.
    """
    document = {"schema": PIPELINE_JSON_SCHEMA}
    if os.path.exists(path):
        try:
            with open(path) as handle:
                existing = json.load(handle)
            if isinstance(existing, dict):
                document.update(existing)
        except (OSError, ValueError):
            pass  # unreadable trajectory: start a fresh one
    document["schema"] = PIPELINE_JSON_SCHEMA
    document[section] = payload
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def table1_payload(results: List[PipelineResult]) -> List[Dict]:
    """The ``table1`` section of BENCH_pipeline.json."""
    return [result.to_json() for result in results]


def write_pipeline_json(
    results: List[PipelineResult], path: str = "BENCH_pipeline.json"
) -> str:
    """Write the Table-1 rows into BENCH_pipeline.json (section ``table1``)."""
    return update_pipeline_json("table1", table1_payload(results), path)


def format_table1(results: List[PipelineResult]) -> str:
    """Render the paper's Table 1 with measured columns alongside.

    ``area`` is the static-CMOS transistor estimate of the standard
    C-implementation (an extension column; the paper reports none).
    """
    from repro.netlist.area import area_estimate

    header = (
        f"{'Example':<16}{'in':>4}{'out':>5}{'added':>7}{'paper':>7}"
        f"{'states':>8}{'SI':>6}{'area':>6}{'time[s]':>9}"
    )
    lines = [header, "-" * len(header)]
    for result in results:
        paper_added = paper_row(result.name)[2]
        hazard_free = (
            "yes"
            if result.hazard_report and result.hazard_report.hazard_free
            else ("-" if result.hazard_report is None else "NO")
        )
        if result.hazard_report is not None:
            netlist = result.hazard_report.netlist
        else:
            netlist = netlist_from_implementation(result.implementation, "C")
        lines.append(
            f"{result.name:<16}{len(result.stg.inputs):>4}"
            f"{len(result.stg.non_inputs):>5}{result.added_signals:>7}"
            f"{paper_added:>7}{len(result.insertion.sg):>8}"
            f"{hazard_free:>6}{area_estimate(netlist):>6}"
            f"{result.elapsed_seconds:>9.2f}"
        )
    return "\n".join(lines)
