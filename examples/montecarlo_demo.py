#!/usr/bin/env python
"""Watching the Figure-4 hazard dynamically with random gate delays.

The static verifier proves the Figure-4 baseline hazardous by exhausting
the circuit-level state graph.  This script confirms it the engineer's
way: Monte-Carlo simulation of the closed loop under the pure delay
model.  With slow gates and a fast environment, a fraction of runs shows
the ``t = c'd`` AND gate's pending rise being withdrawn -- the exact
race the paper narrates.  The MC-repaired circuit stays clean under the
same delay regime (and any other: Theorem 3).
"""

from repro.bench.figures import figure4_sg
from repro.core.baseline import baseline_synthesize
from repro.core.insertion import insert_state_signals
from repro.core.synthesis import synthesize
from repro.netlist.netlist import netlist_from_implementation
from repro.netlist.simulate import simulate

SLOW_GATES = dict(gate_delay=(1.0, 30.0), input_delay=(1.0, 5.0))


def run_batch(netlist, spec, runs=100):
    hazardous = 0
    witnesses = []
    for seed in range(runs):
        report = simulate(netlist, spec, max_events=400, seed=seed, **SLOW_GATES)
        if not report.hazard_free:
            hazardous += 1
            witnesses += report.disablings[:1]
    return hazardous, witnesses


def main() -> None:
    fig4 = figure4_sg()

    baseline_net = netlist_from_implementation(baseline_synthesize(fig4), "C")
    hazardous, witnesses = run_batch(baseline_net, fig4)
    print(f"baseline (t = c'd; b = a + t): {hazardous}/100 runs glitch")
    for witness in witnesses[:3]:
        print(f"  {witness}")

    result = insert_state_signals(fig4, max_models=400)
    repaired_net = netlist_from_implementation(synthesize(result.sg), "C")
    hazardous, _ = run_batch(repaired_net, result.sg)
    print(f"MC-repaired (+{len(result.added_signals)} signal): "
          f"{hazardous}/100 runs glitch")
    assert hazardous == 0


if __name__ == "__main__":
    main()
