#!/usr/bin/env python
"""Synthesising the standard handshake-component zoo.

Runs every component in :mod:`repro.bench.components` through the full
pipeline and prints a summary table: specification size, inserted state
signals, gate inventory and the verification verdict.  The C-element
specification famously synthesises into exactly one C-element.
"""

from repro import synthesize_from_stg
from repro.bench.components import COMPONENTS
from repro.stg.reachability import stg_to_state_graph


def main() -> None:
    header = f"{'component':<18}{'states':>7}{'added':>7}{'gates':>7}{'SI':>5}"
    print(header)
    print("-" * len(header))
    for name, make in COMPONENTS.items():
        stg = make()
        states = len(stg_to_state_graph(stg))
        result = synthesize_from_stg(stg, share_gates=True)
        gates = sum(result.netlist.gate_count().values())
        print(
            f"{name:<18}{states:>7}{len(result.added_signals):>7}"
            f"{gates:>7}{'yes' if result.hazard_free else 'NO':>5}"
        )

    print("\nthe C-element specification, synthesised:")
    result = synthesize_from_stg(COMPONENTS["celement"]())
    print(result.implementation.equations())
    print(result.netlist.describe())


if __name__ == "__main__":
    main()
