#!/usr/bin/env python
"""Quickstart: synthesise a speed-independent controller from an STG.

We specify a toggle-style controller as a Signal Transition Graph in the
classic ``.g`` text format, elaborate it into a state graph, run the
paper's full synthesis procedure (MC analysis -> state-signal insertion
if needed -> standard C-implementation) and verify the result gate by
gate under the unbounded-delay model.
"""

from repro import parse_g, synthesize_from_stg

SPEC = """
.model handshake2phase
.inputs r a2
.outputs a r2
.graph
r+ r2+
r2+ a2+
a2+ r2-
r2- a2-
a2- a+
a+ r-
r- a-
a- r+
.marking { <a-,r+> }
.end
"""


def main() -> None:
    stg = parse_g(SPEC)
    print(f"specification: {stg}")

    result = synthesize_from_stg(stg, style="C", share_gates=True)

    print(f"\nMC repair inserted signals: {result.added_signals or 'none'}")
    print(f"state graph: {len(result.spec)} -> {len(result.insertion.sg)} states")

    print("\nimplementation equations:")
    print(result.implementation.equations())

    print("\nnetlist:")
    print(result.netlist.describe())

    print("\nspeed-independence verification:")
    print(result.hazard_report.describe())
    assert result.hazard_free


if __name__ == "__main__":
    main()
