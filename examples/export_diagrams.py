#!/usr/bin/env python
"""Export the paper's figures and implementations as Graphviz/Verilog.

Writes, into ``./out`` (created if missing):

* ``fig1.dot``, ``fig3.dot``, ``fig4.dot`` -- the state graphs with the
  paper's asterisk labels;
* ``fig3_impl.dot`` -- the synthesised netlist of Figure 3;
* ``fig3_impl.v`` -- the same circuit as structural Verilog;
* ``fig3_impl.json`` -- the netlist in the library's JSON format.

Render the ``.dot`` files with ``dot -Tpdf fig1.dot -o fig1.pdf``.
"""

import os

from repro.bench.figures import figure1_sg, figure3_sg, figure4_sg
from repro.core.synthesis import synthesize
from repro.netlist.io import save_netlist
from repro.netlist.netlist import netlist_from_implementation
from repro.netlist.render import netlist_to_dot, netlist_to_verilog, sg_to_dot


def main() -> None:
    os.makedirs("out", exist_ok=True)

    for sg in (figure1_sg(), figure3_sg(), figure4_sg()):
        path = os.path.join("out", f"{sg.name}.dot")
        with open(path, "w") as handle:
            handle.write(sg_to_dot(sg))
        print(f"wrote {path} ({len(sg)} states)")

    fig3 = figure3_sg()
    netlist = netlist_from_implementation(
        synthesize(fig3, share_gates=True), "C"
    )
    with open(os.path.join("out", "fig3_impl.dot"), "w") as handle:
        handle.write(netlist_to_dot(netlist))
    with open(os.path.join("out", "fig3_impl.v"), "w") as handle:
        handle.write(netlist_to_verilog(netlist))
    save_netlist(netlist, os.path.join("out", "fig3_impl.json"))
    print(f"wrote out/fig3_impl.dot, out/fig3_impl.v, out/fig3_impl.json "
          f"({sum(netlist.gate_count().values())} gates)")


if __name__ == "__main__":
    main()
