#!/usr/bin/env python
"""The paper's Example 2 (Figure 4): watching a hazard happen.

Figure 4 is *persistent* and every local condition of the correct-cover
baseline holds -- yet the implementation ``t = c'd; b = a + t`` is
hazardous: entering ER(+b,2) at state 0*0*01 starts the AND gate ``t``
switching, and if ``a+`` overtakes it, ``t``'s excitation is withdrawn
unacknowledged.  This script builds the circuit-level state graph of the
closed loop and shows the conflict, then repairs the specification with
one inserted signal and verifies the fix.
"""

from repro.bench.figures import figure4_sg
from repro.core.baseline import baseline_synthesize
from repro.core.insertion import insert_state_signals
from repro.core.mc import analyze_mc
from repro.core.synthesis import synthesize
from repro.netlist.hazards import verify_speed_independence
from repro.netlist.netlist import netlist_from_implementation
from repro.sg.properties import is_persistent


def main() -> None:
    fig4 = figure4_sg()
    print(f"Figure 4: {fig4} (persistent: {is_persistent(fig4)})")

    print("\n--- baseline implementation ---")
    baseline = baseline_synthesize(fig4)
    print(baseline.equations())

    print("\n--- circuit-level verification of the baseline ---")
    netlist = netlist_from_implementation(baseline, "C")
    print(netlist.describe())
    report = verify_speed_independence(netlist, fig4)
    print()
    print(report.describe())
    assert not report.hazard_free

    print("\n--- what MC sees ---")
    mc = analyze_mc(fig4)
    print(mc.describe())

    print("\n--- repair with one inserted signal ---")
    result = insert_state_signals(fig4, max_models=400)
    print(f"inserted: {result.added_signals}")
    repaired = synthesize(result.sg)
    print(repaired.equations())

    fixed = verify_speed_independence(
        netlist_from_implementation(repaired, "C"), result.sg
    )
    print()
    print(fixed.describe())
    assert fixed.hazard_free


if __name__ == "__main__":
    main()
