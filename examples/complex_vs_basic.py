#!/usr/bin/env python
"""Complex gates vs basic gates -- the trade the paper is about.

Chu's complex-gate theory needs only Complete State Coding: Figure 1
satisfies CSC, so each output is implementable as ONE atomic gate with
internal feedback -- if your library happens to stock gates computing
``c = a + bd' + b'c``.  The paper's basic-gate architecture uses only
AND/OR/latches from any standard library, at the price of the stronger
Monotonous Cover requirement and, here, one inserted state signal.

This script runs both routes on Figure 1 and verifies each at its own
level of atomicity, then shows what happens if the complex gate is
naively decomposed into basic gates *without* the MC discipline.
"""

from repro.bench.figures import figure1_sg
from repro.core.complexgate import complex_gate_netlist, complex_gate_synthesize
from repro.core.insertion import insert_state_signals
from repro.core.mc import analyze_mc
from repro.core.synthesis import synthesize
from repro.netlist.hazards import verify_speed_independence
from repro.netlist.netlist import netlist_from_implementation
from repro.netlist.render import netlist_to_verilog
from repro.sg.csc import has_csc


def main() -> None:
    fig1 = figure1_sg()
    print(f"Figure 1 satisfies CSC: {has_csc(fig1)}")
    print(f"Figure 1 satisfies MC : {analyze_mc(fig1).satisfied}")

    print("\n=== route 1: complex gates (CSC is enough) ===")
    complex_impl = complex_gate_synthesize(fig1)
    print(complex_impl.equations())
    complex_net = complex_gate_netlist(complex_impl)
    report = verify_speed_independence(complex_net, fig1)
    print(f"verified (each gate atomic): "
          f"{'HAZARD-FREE' if report.hazard_free else 'HAZARDOUS'}")

    print("\n=== route 2: basic gates (MC required) ===")
    result = insert_state_signals(fig1, max_models=400)
    print(f"inserted state signals: {result.added_signals}")
    basic_impl = synthesize(result.sg, share_gates=True)
    print(basic_impl.equations())
    basic_net = netlist_from_implementation(basic_impl, "C")
    report = verify_speed_independence(basic_net, result.sg)
    print(f"verified (every AND/OR/C gate delayed independently): "
          f"{'HAZARD-FREE' if report.hazard_free else 'HAZARDOUS'}")

    print("\n=== the basic-gate netlist as structural Verilog ===")
    print(netlist_to_verilog(basic_net))


if __name__ == "__main__":
    main()
