#!/usr/bin/env python
"""Regenerate the paper's Table 1 (MC-reduction results).

Runs the full pipeline -- STG elaboration, MC analysis, state-signal
insertion, synthesis, gate-level verification -- on all nine benchmark
designs and prints the table with the paper's added-signal column for
comparison.  Pass benchmark names as arguments to run a subset.
"""

import sys

from repro.bench.suite import BENCHMARKS, format_table1, run_pipeline


def main() -> None:
    names = sys.argv[1:] or list(BENCHMARKS)
    results = []
    for name in names:
        print(f"running {name} ...", flush=True)
        results.append(run_pipeline(name, verify=True))
    print()
    print(format_table1(results))
    print()
    for result in results:
        print(f"=== {result.name} ===")
        print(result.implementation.equations())
        print()


if __name__ == "__main__":
    main()
