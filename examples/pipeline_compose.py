#!/usr/bin/env python
"""Building a system from components with parallel composition.

Two stage controllers are specified independently and composed on their
shared signal: stage 1 turns the environment request `r` into an
internal request `m`; stage 2 answers `m` with the final acknowledge
`a`.  The composite state graph is then pushed through the standard
pipeline -- MC analysis, synthesis, verification -- exactly as if it
had been written monolithically.
"""

from repro import synthesize_from_state_graph
from repro.sg.builder import sg_from_arcs
from repro.sg.compose import compose


def stage1():
    """r+ -> m+ -> r- -> m- (m driven here)."""
    return sg_from_arcs(
        ("r", "m"),
        ("r",),
        (0, 0),
        [
            ("s0", "r+", "s1"),
            ("s1", "m+", "s2"),
            ("s2", "r-", "s3"),
            ("s3", "m-", "s0"),
        ],
        initial="s0",
        name="stage1",
    )


def stage2():
    """m+ -> a+ -> m- -> a- (m read here, a driven)."""
    return sg_from_arcs(
        ("m", "a"),
        ("m",),
        (0, 0),
        [
            ("t0", "m+", "t1"),
            ("t1", "a+", "t2"),
            ("t2", "m-", "t3"),
            ("t3", "a-", "t0"),
        ],
        initial="t0",
        name="stage2",
    )


def main() -> None:
    system = compose(stage1(), stage2(), name="two_stage")
    print(f"composite: {system}")
    print(f"inputs:  {sorted(system.inputs)}")
    print(f"outputs: {sorted(system.non_inputs)}")

    result = synthesize_from_state_graph(system, share_gates=True)
    print(f"\ninserted signals: {result.added_signals or 'none'}")
    print(result.implementation.equations())
    print()
    print(result.hazard_report.describe())
    assert result.hazard_free


if __name__ == "__main__":
    main()
