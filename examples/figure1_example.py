#!/usr/bin/env python
"""The paper's Example 1, end to end (Figures 1 and 3).

Walks through everything Section V-B says about the running example:

1. Figure 1's properties: output semi-modular, output distributive, but
   *not persistent* -- trigger ``+a`` of ER(+d_1) falls inside the region.
2. No single cube covers ER(+d_1) correctly; the Beerel-style baseline
   needs two cubes and produces equations (1).
3. The Monotonous Cover requirement fails exactly on the up-regions of
   ``d``; one inserted signal ``x`` repairs it (the paper's Figure 3),
   and synthesis with gate sharing reproduces equations (2).
4. The repaired implementation is verified hazard-free at the gate
   level, for both the C-element and the RS-flip-flop structures.
"""

from repro.bench.figures import figure1_sg, figure3_sg
from repro.core.baseline import baseline_synthesize
from repro.core.insertion import insert_state_signals, project_away
from repro.core.mc import analyze_mc
from repro.core.synthesis import synthesize
from repro.netlist.hazards import verify_speed_independence
from repro.netlist.netlist import netlist_from_implementation
from repro.sg.properties import (
    is_output_distributive,
    is_output_semi_modular,
    is_persistent,
    non_persistent_pairs,
)


def main() -> None:
    fig1 = figure1_sg()
    print(f"Figure 1: {fig1}")
    print(f"  output semi-modular : {is_output_semi_modular(fig1)}")
    print(f"  output distributive : {is_output_distributive(fig1)}")
    print(f"  persistent          : {is_persistent(fig1)}")
    for violation in non_persistent_pairs(fig1):
        print(f"    {violation}")

    print("\n--- baseline (equations (1)) ---")
    print(baseline_synthesize(fig1).equations())

    print("\n--- MC analysis ---")
    print(analyze_mc(fig1).describe())

    print("\n--- state-signal insertion ---")
    result = insert_state_signals(fig1, max_models=400)
    print(f"inserted: {result.added_signals} "
          f"({len(fig1)} -> {len(result.sg)} states; paper's Figure 3: 17)")

    projected = project_away(result.sg, result.added_signals[0])
    same = {
        (projected.code(s), str(e), projected.code(t))
        for s, e, t in projected.arcs()
    } == {(fig1.code(s), str(e), fig1.code(t)) for s, e, t in fig1.arcs()}
    print(f"hiding {result.added_signals[0]} restores Figure 1 exactly: {same}")

    print("\n--- the paper's own Figure 3, equations (2) ---")
    fig3 = figure3_sg()
    impl = synthesize(fig3, share_gates=True)
    print(impl.equations())

    for style in ("C", "RS"):
        netlist = netlist_from_implementation(impl, style)
        report = verify_speed_independence(netlist, fig3)
        print(f"\n{style}-implementation: "
              f"{'HAZARD-FREE' if report.hazard_free else 'HAZARDOUS'} "
              f"({len(report.circuit_sg)} circuit states)")
        assert report.hazard_free


if __name__ == "__main__":
    main()
