"""Legacy setup shim.

Kept so environments without the `wheel` package (offline boxes) can
still do editable installs via `pip install -e .` (setuptools falls back
to the develop command) -- all real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
