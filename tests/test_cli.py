"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import main

pytestmark = pytest.mark.smoke

DATA = os.path.join(
    os.path.dirname(__file__), "..", "src", "repro", "bench", "data"
)


def spec(name):
    return os.path.join(DATA, name)


class TestInfo:
    def test_info_reports_properties(self, capsys):
        assert main(["info", spec("delement.g")]) == 0
        out = capsys.readouterr().out
        assert "output semi-modular : True" in out
        assert "MC analysis" in out
        assert "VIOLATED" in out

    def test_info_dot_export(self, tmp_path, capsys):
        dot = tmp_path / "sg.dot"
        assert main(["info", spec("delement.g"), "--dot", str(dot)]) == 0
        assert dot.read_text().startswith("digraph")


class TestSynth:
    def test_synth_clean_design(self, capsys):
        assert main(["synth", spec("mp-forward-pkt.g")]) == 0
        out = capsys.readouterr().out
        assert "HAZARD-FREE" in out
        assert "= C(" in out

    def test_synth_with_insertion(self, capsys):
        assert main(["synth", spec("delement.g"), "--share"]) == 0
        out = capsys.readouterr().out
        assert "state signal(s) inserted: x" in out

    def test_synth_exports(self, tmp_path, capsys):
        verilog = tmp_path / "out.v"
        dot = tmp_path / "net.dot"
        code = main(
            [
                "synth",
                spec("delement.g"),
                "--verilog",
                str(verilog),
                "--dot",
                str(dot),
            ]
        )
        assert code == 0
        assert "module" in verilog.read_text()
        assert dot.read_text().startswith("digraph")

    def test_synth_no_verify(self, capsys):
        assert main(["synth", spec("luciano.g"), "--no-verify"]) == 0
        out = capsys.readouterr().out
        assert "speed-independence check" not in out


class TestVerifyAndSimulate:
    def test_verify_exit_code_zero(self, capsys):
        assert main(["verify", spec("berkel2.g")]) == 0

    def test_simulate(self, capsys):
        code = main(
            ["simulate", spec("delement.g"), "--runs", "3", "--events", "100"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "0 hazardous run(s)" in out


class TestTable1:
    def test_subset(self, capsys):
        assert main(["table1", "delement", "luciano", "--no-verify"]) == 0
        out = capsys.readouterr().out
        assert "delement" in out
        assert "luciano" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["bogus"])


class TestSaveStg:
    def test_repaired_spec_roundtrips(self, tmp_path, capsys):
        saved = tmp_path / "repaired.g"
        code = main(
            ["synth", spec("delement.g"), "--no-verify", "--save-stg", str(saved)]
        )
        assert code == 0
        from repro.core.mc import analyze_mc
        from repro.stg.parser import load_g
        from repro.stg.reachability import stg_to_state_graph

        back = stg_to_state_graph(load_g(str(saved)))
        assert analyze_mc(back).satisfied


def test_synth_area_flag(capsys):
    assert main(["synth", spec("delement.g"), "--no-verify", "--area"]) == 0
    out = capsys.readouterr().out
    assert "area estimate" in out and "TOTAL" in out


def test_synth_regions_flag(capsys):
    assert main(["synth", spec("berkel2.g"), "--no-verify", "--regions"]) == 0
    out = capsys.readouterr().out
    assert "region mapping" in out


class TestErrorPaths:
    """Load failures must exit 2 with a message, never a traceback."""

    def test_missing_spec_file(self, capsys):
        assert main(["verify", spec("no-such-design.g")]) == 2
        err = capsys.readouterr().err
        assert "cannot read specification" in err

    def test_malformed_g_file(self, tmp_path, capsys):
        bad = tmp_path / "broken.g"
        bad.write_text(".inputs a\nthis is not a transition line\n")
        assert main(["verify", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "malformed" in err or "invalid" in err

    def test_empty_g_file(self, tmp_path, capsys):
        empty = tmp_path / "empty.g"
        empty.write_text("")
        assert main(["info", str(empty)]) == 2

    def test_missing_spec_for_every_loading_command(self, capsys):
        for argv in (
            ["info", spec("ghost.g")],
            ["synth", spec("ghost.g")],
            ["simulate", spec("ghost.g")],
        ):
            assert main(argv) == 2, argv
        capsys.readouterr()

    def test_check_with_missing_netlist(self, tmp_path, capsys):
        assert main(["check", spec("delement.g"), str(tmp_path / "no.json")]) == 2
        assert "netlist" in capsys.readouterr().err


class TestExitCodes:
    """0 = hazard-free, 1 = hazard, 2 = usage, 3 = inconclusive."""

    def test_budget_exceeded_is_inconclusive_not_hazard(self, capsys):
        code = main(["verify", spec("delement.g"), "--budget-states", "5"])
        assert code == 3
        err = capsys.readouterr().err
        assert "budget" in err.lower() or "marking" in err.lower()

    def test_time_budget_flag_accepted(self, capsys):
        code = main(["verify", spec("delement.g"), "--budget-seconds", "120"])
        assert code == 0

    def test_unsynthesizable_arbitration_exits_1(self, tmp_path, capsys):
        """Genuine arbitration is outside the theory: the insertion
        engine gives up and the CLI must report failure, not usage."""
        from repro.bench.components import mutex_request
        from repro.stg.writer import dumps_g

        bad = tmp_path / "mutex.g"
        bad.write_text(dumps_g(mutex_request()))
        assert main(["synth", str(bad), "--max-models", "5"]) == 1
        assert "synthesis failed" in capsys.readouterr().err

    def test_fault_models_on_mc_circuit_stay_clean(self, capsys):
        code = main(
            [
                "verify",
                spec("delement.g"),
                "--fault-model",
                "delay",
                "--fault-model",
                "stuck",
                "--fault-runs",
                "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fault injection" in out
        assert "all clean" in out


class TestDiffCommand:
    def test_diff_single_benchmark_agrees(self, capsys):
        code = main(["diff", "--count", "2", "--seed", "3", "--no-repair"])
        assert code == 0
        out = capsys.readouterr().out
        assert "0 DIVERGENT" in out

    def test_diff_impossible_budget_is_inconclusive(self, capsys):
        code = main(
            ["diff", "--count", "2", "--seed", "0", "--max-states", "2"]
        )
        assert code == 3
        out = capsys.readouterr().out
        assert "skipped" in out


class TestSeedValidation:
    """--seed must be a non-negative integer everywhere it appears."""

    @pytest.mark.parametrize("argv", [
        ["verify", "x.g", "--seed", "-1"],
        ["verify", "x.g", "--seed", "banana"],
        ["verify", "x.g", "--seed", "2.5"],
        ["simulate", "x.g", "--seed", "-3"],
        ["simulate", "x.g", "--seed", "many"],
        ["diff", "--count", "1", "--seed", "-1"],
        ["diff", "--count", "1", "--seed", "x"],
        ["batch", "--corpus", "c.json", "--seed", "-2"],
        ["batch", "--corpus", "c.json", "--seed", "abc"],
    ])
    def test_garbage_seeds_exit_2(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "non-negative integer" in err or "invalid" in err

    def test_zero_seed_accepted(self, capsys):
        # seed 0 is legal (CI pins it); smallest diff run as a carrier
        assert main(["diff", "--count", "1", "--seed", "0"]) == 0


class TestVerifyOracle:
    def test_demorgan_only_clean(self, capsys):
        assert main(["verify", spec("luciano.g"), "--oracle", "demorgan"]) == 0
        out = capsys.readouterr().out
        assert "HAZARD-FREE (DeMorgan)" in out

    def test_both_oracles_agree(self, capsys):
        assert main(["verify", spec("nowick.g"), "--oracle", "both"]) == 0
        out = capsys.readouterr().out
        assert "demorgan oracle" in out
        assert "hazard-free" in out.lower()

    def test_unknown_oracle_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["verify", spec("nowick.g"), "--oracle", "psychic"])
        assert excinfo.value.code == 2
