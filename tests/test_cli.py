"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import main

DATA = os.path.join(
    os.path.dirname(__file__), "..", "src", "repro", "bench", "data"
)


def spec(name):
    return os.path.join(DATA, name)


class TestInfo:
    def test_info_reports_properties(self, capsys):
        assert main(["info", spec("delement.g")]) == 0
        out = capsys.readouterr().out
        assert "output semi-modular : True" in out
        assert "MC analysis" in out
        assert "VIOLATED" in out

    def test_info_dot_export(self, tmp_path, capsys):
        dot = tmp_path / "sg.dot"
        assert main(["info", spec("delement.g"), "--dot", str(dot)]) == 0
        assert dot.read_text().startswith("digraph")


class TestSynth:
    def test_synth_clean_design(self, capsys):
        assert main(["synth", spec("mp-forward-pkt.g")]) == 0
        out = capsys.readouterr().out
        assert "HAZARD-FREE" in out
        assert "= C(" in out

    def test_synth_with_insertion(self, capsys):
        assert main(["synth", spec("delement.g"), "--share"]) == 0
        out = capsys.readouterr().out
        assert "state signal(s) inserted: x" in out

    def test_synth_exports(self, tmp_path, capsys):
        verilog = tmp_path / "out.v"
        dot = tmp_path / "net.dot"
        code = main(
            [
                "synth",
                spec("delement.g"),
                "--verilog",
                str(verilog),
                "--dot",
                str(dot),
            ]
        )
        assert code == 0
        assert "module" in verilog.read_text()
        assert dot.read_text().startswith("digraph")

    def test_synth_no_verify(self, capsys):
        assert main(["synth", spec("luciano.g"), "--no-verify"]) == 0
        out = capsys.readouterr().out
        assert "speed-independence check" not in out


class TestVerifyAndSimulate:
    def test_verify_exit_code_zero(self, capsys):
        assert main(["verify", spec("berkel2.g")]) == 0

    def test_simulate(self, capsys):
        code = main(
            ["simulate", spec("delement.g"), "--runs", "3", "--events", "100"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "0 hazardous run(s)" in out


class TestTable1:
    def test_subset(self, capsys):
        assert main(["table1", "delement", "luciano", "--no-verify"]) == 0
        out = capsys.readouterr().out
        assert "delement" in out
        assert "luciano" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["bogus"])


class TestSaveStg:
    def test_repaired_spec_roundtrips(self, tmp_path, capsys):
        saved = tmp_path / "repaired.g"
        code = main(
            ["synth", spec("delement.g"), "--no-verify", "--save-stg", str(saved)]
        )
        assert code == 0
        from repro.core.mc import analyze_mc
        from repro.stg.parser import load_g
        from repro.stg.reachability import stg_to_state_graph

        back = stg_to_state_graph(load_g(str(saved)))
        assert analyze_mc(back).satisfied


def test_synth_area_flag(capsys):
    assert main(["synth", spec("delement.g"), "--no-verify", "--area"]) == 0
    out = capsys.readouterr().out
    assert "area estimate" in out and "TOTAL" in out


def test_synth_regions_flag(capsys):
    assert main(["synth", spec("berkel2.g"), "--no-verify", "--regions"]) == 0
    out = capsys.readouterr().out
    assert "region mapping" in out
