"""Delta-aware incremental re-synthesis: byte-identity is the oracle.

Every incremental artifact must equal — fingerprint for fingerprint —
what a cold from-scratch pipeline produces for the edited spec.  The
randomized edit-sequence test drives that invariant through chains of
random :class:`SpecDelta` s; the unit tests below pin the individual
reuse mechanisms (snapshot replay, incremental SAT, MC verdict
adoption, the reuse ledger, and the ``/3`` store payload fields).
"""

import json
import os
import random

import pytest

from repro.corpus import concurrent_fork, token_ring
from repro.bench.suite import _DATA_DIR, load_benchmark
from repro.pipeline import AnalysisContext, Pipeline, PipelineSpec
from repro.pipeline.delta import (
    AddEdge,
    RemoveEdge,
    RetypeSignal,
    SetMarking,
    SpecDelta,
)
from repro.stg.reachability import ExplorationSnapshot, explore, stg_to_state_graph

pytestmark = pytest.mark.smoke


# ----------------------------------------------------------------------
# Randomized edit-sequence oracle
# ----------------------------------------------------------------------
def _random_delta(rng: random.Random, stg) -> SpecDelta:
    """One random edit, biased toward ones that keep the STG synthesisable."""
    transitions = sorted(stg.net.transitions)
    roll = rng.random()
    if roll < 0.35:
        signal = rng.choice(sorted(stg.outputs | stg.internal))
        role = "internal" if signal in stg.outputs else "output"
        return SpecDelta((RetypeSignal(signal, role),))
    if roll < 0.60:
        source, target = rng.choice(transitions), rng.choice(transitions)
        return SpecDelta((AddEdge(source, target, marked=rng.random() < 0.5),))
    if roll < 0.85:
        net = stg.net
        droppable = sorted(
            (next(iter(net.place_preset[p])), next(iter(net.place_postset[p])))
            for p in net.places
            if len(net.place_preset[p]) == 1 and len(net.place_postset[p]) == 1
        )
        if droppable:
            return SpecDelta((RemoveEdge(*droppable[rng.randrange(len(droppable))]),))
        source, target = rng.choice(transitions), rng.choice(transitions)
        return SpecDelta((RemoveEdge(source, target),))
    places = sorted(stg.net.places)
    count = max(1, len(stg.initial_marking))
    return SpecDelta((SetMarking(tuple(rng.sample(places, count))),))


def _edit_sequence_oracle(stg, seed: int, steps: int) -> int:
    """Random edits; every successful step must be byte-identical to cold.

    Failed edits (delta does not apply, edited spec unreachable or
    otherwise unsynthesisable) must fail *identically* on both paths.
    Returns the number of successful steps.
    """
    rng = random.Random(seed)
    context = AnalysisContext()
    pipeline = Pipeline(context)
    spec = PipelineSpec.from_stg(stg, verify=False)
    pipeline.run(spec)  # warm base artifacts + exploration snapshot
    successes = 0
    for _ in range(steps):
        delta = _random_delta(rng, spec.stg)
        try:
            incremental = pipeline.run(spec, delta=delta)
            warm_error = None
        except Exception as exc:  # noqa: BLE001 - compared against cold
            incremental, warm_error = None, exc
        try:
            edited = spec.apply_delta(delta)
            cold = Pipeline(AnalysisContext()).run(edited)
            cold_error = None
        except Exception as exc:  # noqa: BLE001
            cold, cold_error = None, exc
        if warm_error is not None or cold_error is not None:
            assert type(warm_error) is type(cold_error), (
                f"edit {delta.describe()!r}: warm raised {warm_error!r}, "
                f"cold raised {cold_error!r}"
            )
            assert str(warm_error) == str(cold_error)
            continue
        assert incremental.fingerprint == cold.fingerprint, (
            f"edit {delta.describe()!r} broke byte-identity"
        )
        spec = edited  # advance: the next edit applies on top
        successes += 1
    return successes


class TestEditSequenceOracle:
    def test_token_ring(self):
        assert _edit_sequence_oracle(token_ring(2), seed=11, steps=8) >= 2

    def test_nowick(self):
        assert _edit_sequence_oracle(load_benchmark("nowick"), seed=7, steps=8) >= 2

    def test_concurrent_fork(self):
        assert _edit_sequence_oracle(concurrent_fork(2), seed=3, steps=6) >= 2


# ----------------------------------------------------------------------
# Exploration snapshot replay
# ----------------------------------------------------------------------
class TestSnapshotReplay:
    def _snapshot(self, stg):
        order, parities, arcs = explore(stg)
        return ExplorationSnapshot.capture(stg, order, arcs), (order, parities, arcs)

    def test_identical_net_replays_everything(self):
        stg = load_benchmark("nowick")
        snapshot, fresh = self._snapshot(stg)
        stats = {}
        replayed = explore(stg, snapshot=snapshot, stats=stats)
        assert replayed == fresh
        assert stats["expanded"] == 0
        assert stats["replayed"] == len(fresh[0])

    def test_edited_net_matches_fresh_exploration(self):
        stg = token_ring(2)
        snapshot, _ = self._snapshot(stg)
        ts = sorted(stg.net.transitions)
        edited = SpecDelta((AddEdge(ts[1], ts[0], marked=True),)).apply_to_stg(stg)
        stats = {}
        replayed = explore(edited, snapshot=snapshot, stats=stats)
        assert replayed == explore(edited)

    def test_retype_replays_with_fresh_parities(self):
        stg = load_benchmark("nowick")
        snapshot, _ = self._snapshot(stg)
        retyped = SpecDelta((RetypeSignal("y", "internal"),)).apply_to_stg(stg)
        stats = {}
        replayed = explore(retyped, snapshot=snapshot, stats=stats)
        assert replayed == explore(retyped)
        assert stats["expanded"] == 0  # net untouched: pure replay

    def test_dirty_transitions_against_edited_net(self):
        stg = token_ring(2)
        snapshot, _ = self._snapshot(stg)
        ts = sorted(stg.net.transitions)
        edited = SpecDelta((AddEdge(ts[0], ts[1]),)).apply_to_stg(stg)
        assert snapshot.dirty_transitions(edited.net) == frozenset({ts[0], ts[1]})
        assert snapshot.dirty_transitions(stg.net) == frozenset()

    def test_state_graph_identical_under_replay(self):
        stg = concurrent_fork(2)
        snapshot, _ = self._snapshot(stg)
        ts = sorted(stg.net.transitions)
        edited = SpecDelta((AddEdge(ts[0], ts[2]),)).apply_to_stg(stg)
        fresh = stg_to_state_graph(edited)
        warm = stg_to_state_graph(edited, snapshot=snapshot)
        assert warm.state_list == fresh.state_list
        assert list(warm.arcs()) == list(fresh.arcs())
        assert all(warm.code(s) == fresh.code(s) for s in warm.state_list)


# ----------------------------------------------------------------------
# Incremental SAT
# ----------------------------------------------------------------------
class TestIncrementalSat:
    CLAUSES = [
        (1, 2, 3),
        (-1, -2),
        (-2, -3),
        (1, -3, 4),
        (2, 3, -4),
    ]

    def _enumerate_fresh(self, num_vars, clauses):
        from repro.sat.solver import Solver

        models, acc = [], list(clauses)
        while True:
            model = Solver(num_vars, acc).solve()
            if model is None:
                return models
            lits = tuple(v if model[v] else -v for v in range(1, num_vars + 1))
            models.append(lits)
            acc.append(tuple(-l for l in lits))

    def test_add_clause_matches_fresh_model_sequence(self):
        from repro.sat.solver import Solver

        solver = Solver(4, self.CLAUSES)
        models = []
        while True:
            model = solver.solve()
            if model is None:
                break
            lits = tuple(v if model[v] else -v for v in range(1, 5))
            models.append(lits)
            solver.add_clause([-l for l in lits])
        assert models == self._enumerate_fresh(4, self.CLAUSES)
        assert len(models) > 1  # the instance genuinely enumerates

    def test_resolve_same_instance_is_stable(self):
        from repro.sat.solver import Solver

        solver = Solver(4, self.CLAUSES)
        first = solver.solve()
        second = solver.solve()
        assert first == second == Solver(4, self.CLAUSES).solve()

    def test_ensure_vars_grows_the_range(self):
        from repro.sat.solver import Solver

        solver = Solver(2, [(1, 2)])
        solver.ensure_vars(3)
        solver.add_clause((3,))
        model = solver.solve()
        assert model is not None and model[3] is True


# ----------------------------------------------------------------------
# MC verdict adoption
# ----------------------------------------------------------------------
class TestAnalyzeMcReuse:
    def test_full_and_partial_reuse_reproduce_the_report(self):
        from repro.core.mc import analyze_mc

        sg = stg_to_state_graph(load_benchmark("nowick"))
        full = analyze_mc(sg)
        reuse = {}
        for verdict in full.verdicts:
            reuse.setdefault(
                (verdict.er.signal, verdict.er.direction), []
            ).append(verdict)
        assert len(reuse) > 1
        adopted = analyze_mc(sg, reuse=reuse)
        assert adopted.verdicts == full.verdicts
        partial = dict(list(sorted(reuse.items()))[::2])
        mixed = analyze_mc(sg, reuse=partial)
        assert mixed.verdicts == full.verdicts


# ----------------------------------------------------------------------
# Reuse ledger
# ----------------------------------------------------------------------
class TestReuseLedger:
    def test_miss_hit_partial_progression(self):
        context = AnalysisContext()
        pipeline = Pipeline(context)
        spec = PipelineSpec.from_stg(load_benchmark("nowick"), verify=False)

        pipeline.run(spec)
        first = {stage: entry["mode"] for stage, entry in context.last_reuse.items()}
        assert first and all(mode == "miss" for mode in first.values())

        pipeline.run(spec)
        again = {stage: entry["mode"] for stage, entry in context.last_reuse.items()}
        assert again and all(mode == "hit" for mode in again.values())

        pipeline.run(spec, delta="retype y internal")
        ledger = context.last_reuse
        assert ledger["reach"]["mode"] == "partial"
        assert ledger["reach"]["expanded_markings"] == 0
        assert ledger["reach"]["replayed_markings"] > 0
        assert ledger["regions"]["mode"] == "partial"
        assert ledger["regions"]["reused_signals"] >= 1
        assert ledger["mc"]["mode"] == "partial"
        assert ledger["mc"]["reused_functions"] >= 1

    def test_ledger_resets_per_run(self):
        context = AnalysisContext()
        pipeline = Pipeline(context)
        spec = PipelineSpec.from_stg(token_ring(2), verify=False)
        pipeline.run(spec)
        pipeline.run(spec, until="reach")
        assert set(context.last_reuse) == {"reach"}


# ----------------------------------------------------------------------
# Store payload round-trip of the /3 fingerprint fields
# ----------------------------------------------------------------------
class TestFingerprintRoundTrip:
    def test_regions_and_mc_payloads_preserve_per_part_digests(self):
        from repro.pipeline.serialize import (
            mc_verdict_from_json,
            mc_verdict_to_json,
            region_map_from_json,
            region_map_to_json,
        )

        pipeline = Pipeline(AnalysisContext())
        spec = PipelineSpec.from_stg(load_benchmark("nowick"), verify=False)
        regions = pipeline.run(spec, until="regions")
        verdict = pipeline.run(spec, until="mc")

        assert regions.signal_fingerprints and verdict.function_fingerprints

        wire = json.loads(json.dumps(region_map_to_json(regions)))
        loaded = region_map_from_json(wire)
        assert loaded.fingerprint == regions.fingerprint
        assert loaded.signal_fingerprints == regions.signal_fingerprints

        wire = json.loads(json.dumps(mc_verdict_to_json(verdict)))
        loaded = mc_verdict_from_json(wire)
        assert loaded.fingerprint == verdict.fingerprint
        assert loaded.function_fingerprints == verdict.function_fingerprints


# ----------------------------------------------------------------------
# CLI --edit
# ----------------------------------------------------------------------
class TestCliEdit:
    NOWICK = os.path.join(_DATA_DIR, "nowick.g")

    def test_edit_reports_reuse_and_exits_clean(self, capsys):
        from repro.cli import main

        rc = main(["synth", self.NOWICK, "--edit", "retype y internal"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "edit: retype y internal" in captured.err
        assert "reach: partial" in captured.err

    def test_edit_matches_editing_the_file(self, capsys, tmp_path):
        from repro.cli import main

        assert main(["synth", self.NOWICK, "--edit", "retype y internal"]) == 0
        edited_out = capsys.readouterr().out

        text = open(self.NOWICK).read()
        cold = tmp_path / "edited.g"
        cold.write_text(
            text.replace(".inputs a b c", ".inputs a b c")
            .replace(".outputs y z", ".outputs z")
            .replace(".model nowick", ".model nowick\n.internal y")
        )
        assert main(["synth", str(cold)]) == 0
        cold_out = capsys.readouterr().out
        assert edited_out == cold_out

    def test_bad_edit_is_a_usage_error(self, capsys):
        from repro.cli import main

        rc = main(["synth", self.NOWICK, "--edit", "frobnicate y"])
        assert rc == 2
        assert "bad --edit" in capsys.readouterr().err

    def test_inapplicable_edit_is_a_usage_error(self, capsys):
        from repro.cli import main

        rc = main(["synth", self.NOWICK, "--edit", "retype ghost internal"])
        assert rc == 2
        assert "does not apply" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Service protocol: base_job + delta
# ----------------------------------------------------------------------
class TestServiceDeltaProtocol:
    def _submit(self, document):
        from repro.service.protocol import parse_submit

        return parse_submit(json.dumps(document).encode())

    def test_delta_job_normalizes(self):
        kind, tenant, params = self._submit(
            {"kind": "synth", "base_job": "j-1", "delta": "retype y internal"}
        )
        assert kind == "synth"
        assert params["base_job"] == "j-1"
        assert params["delta"]["ops"] == [
            {"op": "retype", "signal": "y", "role": "internal"}
        ]

    def test_delta_accepts_json_form(self):
        _, _, params = self._submit(
            {
                "kind": "synth",
                "base_job": "j-1",
                "delta": {"ops": [{"op": "add", "source": "a+", "target": "y+"}]},
            }
        )
        assert params["delta"]["ops"][0]["op"] == "add"

    @pytest.mark.parametrize(
        "document,fragment",
        [
            ({"kind": "synth", "base_job": "j-1"}, "both"),
            ({"kind": "synth", "delta": "retype y internal"}, "both"),
            (
                {
                    "kind": "synth",
                    "spec": ".model x",
                    "base_job": "j-1",
                    "delta": "retype y internal",
                },
                "mutually exclusive",
            ),
            (
                {"kind": "synth", "base_job": "j-1", "delta": "frobnicate"},
                "bad delta",
            ),
            (
                {"kind": "table1", "base_job": "j-1", "delta": "retype y internal"},
                "only to synth/verify",
            ),
        ],
    )
    def test_rejects_malformed_delta_submissions(self, document, fragment):
        from repro.service.protocol import ProtocolError

        with pytest.raises(ProtocolError, match=fragment):
            self._submit(document)
