"""The perf instrumentation module and the CLI ``--profile`` flag."""

import os
import time

import pytest

from repro import perf
from repro.cli import main


@pytest.fixture(autouse=True)
def _clean_recorder():
    yield
    perf.disable()


def test_disabled_by_default_and_noop():
    assert perf.active() is None
    with perf.phase("anything"):
        pass
    perf.count("anything", 5)  # must not raise with no recorder


def test_phase_and_counters_accumulate():
    recorder = perf.enable()
    with perf.phase("work"):
        time.sleep(0.01)
    with perf.phase("work"):
        pass
    perf.count("ops", 3)
    perf.count("ops")
    assert recorder.phase_calls["work"] == 2
    assert recorder.phases["work"] >= 0.01
    assert recorder.counters["ops"] == 4


def test_timed_decorator():
    recorder = perf.enable()

    @perf.timed("step")
    def step(x):
        return x + 1

    assert step(1) == 2
    assert step(2) == 3
    assert recorder.phase_calls["step"] == 2


def test_as_dict_schema_and_report():
    recorder = perf.enable()
    with perf.phase("alpha"):
        pass
    perf.count("cube.evaluations", 7)
    snapshot = recorder.as_dict()
    assert snapshot["phases"]["alpha"]["calls"] == 1
    assert snapshot["phases"]["alpha"]["seconds"] >= 0
    assert snapshot["counters"]["cube.evaluations"] == 7
    text = recorder.report()
    assert "alpha" in text and "cube.evaluations" in text


def test_enable_returns_fresh_recorder():
    first = perf.enable()
    first.increment("x")
    second = perf.enable()
    assert second.counters == {}
    assert perf.active() is second


SPEC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "src",
    "repro",
    "bench",
    "data",
    "delement.g",
)


def test_cli_synth_profile_prints_phases_and_counts(capsys):
    assert main(["synth", SPEC, "--profile"]) == 0
    out = capsys.readouterr().out
    assert "profile:" in out
    assert "insertion" in out and "synthesis" in out
    assert "ms" in out
    assert "cube.evaluations" in out
    assert perf.active() is None  # the flag must not leak a recorder


def test_cli_verify_profile_prints_phases_and_counts(capsys):
    assert main(["verify", SPEC, "--profile"]) == 0
    out = capsys.readouterr().out
    assert "profile:" in out
    assert "hazard-check" in out
    assert "cube.evaluations" in out
