"""Opt-in stress suite: ``REPRO_STRESS=1 pytest tests/test_stress_opt_in.py``.

Long-running soundness sweeps that are too slow for the default suite
but worth running after changes to the MC checker or the insertion
engine (see docs/DEVELOPMENT.md).
"""

import os
import random

import pytest

if not os.environ.get("REPRO_STRESS"):
    pytest.skip(
        "stress suite is opt-in (set REPRO_STRESS=1)", allow_module_level=True
    )

from repro import synthesize_from_state_graph
from repro.corpus import alternator, concurrent_fork, random_series_parallel
from repro.core.insertion import InsertionError
from repro.core.mc import analyze_mc
from repro.stg.reachability import stg_to_state_graph


@pytest.mark.parametrize("seed", range(10))
def test_series_parallel_pipeline(seed):
    sg = stg_to_state_graph(random_series_parallel(seed, leaves=2))
    try:
        result = synthesize_from_state_graph(sg, max_models=400)
    except InsertionError:
        pytest.skip("insertion budget exhausted")
    assert result.hazard_free


def test_alternator_four_ways():
    sg = stg_to_state_graph(alternator(4))
    result = synthesize_from_state_graph(sg, max_models=600)
    assert len(result.added_signals) == 2
    assert result.hazard_free


def test_concurrent_fork_eight():
    sg = stg_to_state_graph(concurrent_fork(8))
    assert analyze_mc(sg).satisfied


@pytest.mark.parametrize("seed", range(40))
def test_wide_random_cycle_fuzz(seed):
    from tests.test_end_to_end_fuzz import build_sg, random_cycle
    from repro.sg.graph import InconsistentStateGraph
    from repro.sg.properties import is_output_semi_modular

    rng = random.Random(5000 + seed)
    signals = ("p", "q", "s", "t")
    toggles = [rng.choice([1, 2]) for _ in signals]
    events = random_cycle(rng, signals, toggles)
    try:
        sg = build_sg(events, signals, inputs=("p", "t"))
    except InconsistentStateGraph:
        pytest.skip("inconsistent interleaving")
    if not is_output_semi_modular(sg):
        pytest.skip("spec has internal conflicts")
    report = analyze_mc(sg)
    if report.satisfied:
        result = synthesize_from_state_graph(sg, max_models=100)
        assert result.hazard_free
