"""Tests for the unified corpus subsystem: families, specs, factory."""

import json
import subprocess
import sys

import pytest

from repro.core.mc import analyze_mc
from repro.corpus import (
    AdmissionSpec,
    CorpusError,
    CorpusSpec,
    CorpusSpecError,
    FamilySpec,
    admission_failure,
    arbiter,
    corpus_stream,
    default_families,
    dumps_corpus_spec,
    generate_corpus,
    linear_pipeline,
    load_corpus_spec,
    modulo_counter,
    random_free_choice,
)
from repro.sg.properties import is_output_semi_modular
from repro.stg.parser import parse_g
from repro.stg.reachability import stg_to_state_graph
from repro.stg.structural import is_free_choice, is_live_and_safe, is_marked_graph


class TestLinearPipeline:
    @pytest.mark.parametrize("n", [1, 2, 4])
    def test_shape(self, n):
        stg = linear_pipeline(n)
        assert len(stg.inputs) == 2
        assert len(stg.outputs) == n + 2
        sg = stg_to_state_graph(stg)
        assert len(sg) == 2 * n + 8
        assert is_output_semi_modular(sg)

    def test_structural(self):
        stg = linear_pipeline(3)
        assert is_marked_graph(stg.net)
        assert is_live_and_safe(stg)
        assert analyze_mc(stg_to_state_graph(stg)).satisfied

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            linear_pipeline(0)


class TestArbiter:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_shape(self, n):
        stg = arbiter(n)
        assert len(stg.inputs) == n
        assert len(stg.outputs) == n
        sg = stg_to_state_graph(stg)
        assert is_output_semi_modular(sg)
        assert analyze_mc(sg).satisfied

    def test_free_choice_but_not_marked_graph(self):
        stg = arbiter(3)
        assert is_free_choice(stg.net)
        assert not is_marked_graph(stg.net)
        assert is_live_and_safe(stg)

    def test_rejects_single_client(self):
        with pytest.raises(ValueError):
            arbiter(1)


class TestModuloCounter:
    def test_needs_state_signals(self):
        sg = stg_to_state_graph(modulo_counter(2))
        assert is_output_semi_modular(sg)
        assert not analyze_mc(sg).satisfied  # repeated idle codes

    def test_period_one_shape(self):
        sg = stg_to_state_graph(modulo_counter(1))
        assert len(sg) == 6  # c+ y+ c- c+ y- c-

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            modulo_counter(0)


class TestRandomFreeChoice:
    @pytest.mark.parametrize("seed", range(6))
    def test_wellformed(self, seed):
        stg = random_free_choice(seed, leaves=3)
        assert is_free_choice(stg.net)
        assert is_live_and_safe(stg)
        sg = stg_to_state_graph(stg)
        sg.check()
        assert is_output_semi_modular(sg)

    def test_deterministic_per_seed(self):
        from repro.stg.writer import dumps_g

        assert dumps_g(random_free_choice(7)) == dumps_g(random_free_choice(7))

    def test_rejects_zero_leaves(self):
        with pytest.raises(ValueError):
            random_free_choice(0, leaves=0)


class TestCorpusSpec:
    def test_json_round_trip(self):
        spec = CorpusSpec(
            count=7,
            seed=3,
            families=(
                FamilySpec("token_ring", weight=2, params={"channels": (2, 4)}),
                FamilySpec("arbiter", params={"clients": 3}),
            ),
            admission=AdmissionSpec(max_states=500),
            name_prefix="trip",
            max_attempts=100,
        )
        assert CorpusSpec.from_json(spec.to_json()) == spec

    def test_dumps_and_load_round_trip(self, tmp_path):
        spec = CorpusSpec(count=2, seed=9)
        path = tmp_path / "spec.json"
        path.write_text(dumps_corpus_spec(spec), encoding="utf-8")
        assert load_corpus_spec(path) == spec

    def test_default_families_exclude_modulo_counter(self):
        names = {entry.family for entry in default_families()}
        assert "modulo_counter" not in names
        assert {"token_ring", "series_parallel", "free_choice"} <= names

    def test_with_seed(self):
        spec = CorpusSpec(count=3, seed=1)
        reseeded = spec.with_seed(42)
        assert reseeded.seed == 42
        assert reseeded.count == spec.count
        assert reseeded.families == spec.families

    @pytest.mark.parametrize(
        "document,fragment",
        [
            ([], "JSON object"),
            ({"schema": "nope/9", "count": 1}, "unsupported corpus spec schema"),
            ({"schema": "repro-corpus-spec/1"}, "needs a count"),
            (
                {"schema": "repro-corpus-spec/1", "count": 1, "bogus": 2},
                "unknown corpus spec field",
            ),
            (
                {"schema": "repro-corpus-spec/1", "count": -1},
                "non-negative int",
            ),
            (
                {"schema": "repro-corpus-spec/1", "count": 1, "families": []},
                "non-empty JSON array",
            ),
            (
                {
                    "schema": "repro-corpus-spec/1",
                    "count": 1,
                    "families": [{"family": "no_such_family"}],
                },
                "unknown family",
            ),
            (
                {
                    "schema": "repro-corpus-spec/1",
                    "count": 1,
                    "families": [{"family": "token_ring", "weight": 0}],
                },
                "positive int",
            ),
            (
                {
                    "schema": "repro-corpus-spec/1",
                    "count": 1,
                    "families": [
                        {"family": "token_ring", "params": {"channels": [5, 2]}}
                    ],
                },
                "empty range",
            ),
            (
                {
                    "schema": "repro-corpus-spec/1",
                    "count": 1,
                    "families": [
                        {"family": "token_ring", "params": {"bogus": 1}}
                    ],
                },
                "unknown parameter",
            ),
            (
                {
                    "schema": "repro-corpus-spec/1",
                    "count": 1,
                    "admission": {"bogus": True},
                },
                "unknown admission field",
            ),
            (
                {"schema": "repro-corpus-spec/1", "count": 1, "name_prefix": "a b"},
                "name_prefix",
            ),
        ],
    )
    def test_rejects_malformed_documents(self, document, fragment):
        with pytest.raises(CorpusSpecError, match=fragment):
            CorpusSpec.from_json(document)

    def test_load_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{nope", encoding="utf-8")
        with pytest.raises(CorpusSpecError, match="not valid JSON"):
            load_corpus_spec(path)


FAST_FAMILIES = (
    FamilySpec("token_ring", params={"channels": (2, 4)}),
    FamilySpec("linear_pipeline", params={"stages": (2, 4)}),
    FamilySpec("arbiter", params={"clients": (2, 3)}),
)


class TestFactory:
    def test_stream_is_deterministic(self):
        spec = CorpusSpec(count=8, seed=11, families=FAST_FAMILIES)
        first, _ = generate_corpus(spec)
        second, _ = generate_corpus(spec)
        assert [d.g_text for d in first] == [d.g_text for d in second]
        assert [d.fingerprint for d in first] == [d.fingerprint for d in second]
        assert [d.name for d in first] == [d.name for d in second]

    def test_different_seeds_differ(self):
        base = CorpusSpec(count=8, seed=1, families=FAST_FAMILIES)
        first, _ = generate_corpus(base)
        second, _ = generate_corpus(base.with_seed(2))
        assert [d.g_text for d in first] != [d.g_text for d in second]

    def test_zero_count_is_empty(self):
        designs, stats = generate_corpus(
            CorpusSpec(count=0, seed=0, families=FAST_FAMILIES)
        )
        assert designs == []
        assert stats.candidates == 0
        assert stats.admitted == 0

    def test_stats_account_for_everything(self):
        spec = CorpusSpec(count=6, seed=5, families=FAST_FAMILIES)
        designs, stats = generate_corpus(spec)
        assert len(designs) == 6
        assert stats.admitted == 6
        assert stats.candidates == stats.admitted + stats.rejected
        assert sum(stats.by_family.values()) == 6
        payload = stats.to_json()
        assert payload["admitted"] == 6
        assert set(payload) == {
            "candidates",
            "admitted",
            "rejected",
            "rejections",
            "by_family",
        }

    def test_names_and_fingerprints(self):
        import hashlib

        spec = CorpusSpec(
            count=3, seed=2, families=FAST_FAMILIES, name_prefix="check"
        )
        designs, _ = generate_corpus(spec)
        for i, design in enumerate(designs):
            assert design.index == i
            assert design.name.startswith(f"check-{i:05d}-")
            assert design.stg.name == design.name
            expected = hashlib.sha256(design.g_text.encode("utf-8")).hexdigest()
            assert design.fingerprint == expected

    def test_pipeline_spec_bridge(self):
        designs, _ = generate_corpus(
            CorpusSpec(count=1, seed=4, families=FAST_FAMILIES)
        )
        spec = designs[0].pipeline_spec(verify=False)
        assert spec.name == designs[0].name
        assert spec.stg is designs[0].stg

    def test_state_cap_rejections_starve_the_stream(self):
        spec = CorpusSpec(
            count=1,
            seed=0,
            families=(FamilySpec("token_ring", params={"channels": (4, 6)}),),
            admission=AdmissionSpec(max_states=3),
            max_attempts=5,
        )
        with pytest.raises(CorpusError, match="corpus starved"):
            list(corpus_stream(spec))

    def test_builder_errors_are_counted(self):
        from repro.corpus import CorpusStats

        spec = CorpusSpec(
            count=1,
            seed=0,
            # channels=0 passes spec validation but the builder rejects it
            families=(FamilySpec("token_ring", params={"channels": 0}),),
            max_attempts=4,
        )
        stats = CorpusStats()
        with pytest.raises(CorpusError):
            list(corpus_stream(spec, stats=stats))
        assert stats.rejections == {"builder-error": 4}

    def test_admission_passes_single_signal_stg(self):
        stg = parse_g(
            "\n".join(
                [
                    ".model wire",
                    ".outputs y",
                    ".graph",
                    "y+ y-",
                    "y- y+",
                    ".marking { <y-,y+> }",
                    ".end",
                ]
            )
        )
        spec = CorpusSpec(count=1, families=FAST_FAMILIES)
        assert admission_failure(stg, spec) is None

    def test_admission_rejects_non_free_choice(self):
        stg = parse_g(
            "\n".join(
                [
                    ".inputs a b",
                    ".outputs q",
                    ".graph",
                    "p0 a+ b+",
                    "p1 a+",
                    "a+ q+",
                    "b+ q+/2",
                    "q+ p0 p1",
                    "q+/2 p0 p1",
                    ".marking { p0 p1 }",
                    ".end",
                ]
            )
        )
        # the fixture is also inconsistent (q rises twice), so the cheap
        # consistency check fires first; turning it off exposes the
        # free-choice gate, and relaxing that too falls through to the
        # exploration-based checks
        spec = CorpusSpec(count=1, families=FAST_FAMILIES)
        assert admission_failure(stg, spec) == "inconsistent"
        no_consistency = CorpusSpec(
            count=1,
            families=FAST_FAMILIES,
            admission=AdmissionSpec(require_consistent=False),
        )
        assert admission_failure(stg, no_consistency) == "non-free-choice"
        relaxed = CorpusSpec(
            count=1,
            families=FAST_FAMILIES,
            admission=AdmissionSpec(
                require_consistent=False, require_free_choice=False
            ),
        )
        assert admission_failure(stg, relaxed) not in (
            "inconsistent",
            "non-free-choice",
        )

    def test_admission_rejects_state_cap(self):
        from repro.corpus import token_ring

        spec = CorpusSpec(
            count=1,
            families=FAST_FAMILIES,
            admission=AdmissionSpec(max_states=3),
        )
        assert admission_failure(token_ring(4), spec) == "state-cap"

    def test_admission_rejects_not_live(self):
        stg = parse_g(
            "\n".join(
                [
                    ".inputs a",
                    ".outputs q y",
                    ".graph",
                    "p0 a+",
                    "a+ q+",
                    "q+ a-",
                    "a- q-",
                    "q- p0",
                    "p1 y+",
                    "y+ y-",
                    "y- p1",
                    ".marking { p0 }",
                    ".end",
                ]
            )
        )
        spec = CorpusSpec(count=1, families=FAST_FAMILIES)
        assert admission_failure(stg, spec) in ("not-live", "inconsistent")


class TestCrossProcessDeterminism:
    def test_fingerprints_match_across_processes(self):
        spec = CorpusSpec(count=6, seed=17, families=FAST_FAMILIES)
        local, _ = generate_corpus(spec)
        program = (
            "import json, sys\n"
            "from repro.corpus import CorpusSpec, generate_corpus\n"
            "spec = CorpusSpec.from_json(json.loads(sys.stdin.read()))\n"
            "designs, _ = generate_corpus(spec)\n"
            "print(json.dumps([[d.name, d.fingerprint] for d in designs]))\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", program],
            input=json.dumps(spec.to_json()),
            capture_output=True,
            text=True,
            check=True,
        )
        remote = json.loads(proc.stdout)
        assert remote == [[d.name, d.fingerprint] for d in local]
